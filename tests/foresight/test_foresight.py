"""Foresight-style sweeps, quality criteria and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.foresight.quality import QualityCriteria, evaluate_quality
from repro.foresight.report import records_to_csv, records_to_table
from repro.foresight.sweep import run_sweep


class TestQualityCriteria:
    def test_defaults(self):
        c = QualityCriteria()
        assert c.spectrum_tolerance == 0.01
        assert not c.check_halos

    def test_halo_requires_threshold(self):
        with pytest.raises(ValueError, match="t_boundary"):
            QualityCriteria(check_halos=True)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            QualityCriteria(spectrum_tolerance=-1.0)


class TestEvaluateQuality:
    def test_identical_passes(self, snapshot):
        data = snapshot["temperature"].astype(np.float64)
        report = evaluate_quality(data, data.copy(), QualityCriteria())
        assert report.passed
        assert report.spectrum_worst_deviation == 0.0
        assert report.psnr_db == float("inf")

    def test_heavy_distortion_fails(self, snapshot):
        rng = np.random.default_rng(0)
        data = snapshot["temperature"].astype(np.float64)
        bad = data + rng.normal(0, data.std(), data.shape)
        report = evaluate_quality(data, bad, QualityCriteria())
        assert not report.passed

    def test_halo_checks_run(self, snapshot):
        data = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(data, 99.0))
        crit = QualityCriteria(check_halos=True, t_boundary=tb)
        report = evaluate_quality(data, data.copy(), crit)
        assert report.halo_ok is True
        assert report.halo_mass_rmse == pytest.approx(0.0)
        assert report.halo_count_change == 0


class TestSweep:
    def test_record_grid(self, snapshot, decomposition):
        fields = {"temperature": snapshot["temperature"]}
        records = run_sweep(
            fields,
            ebs=[10.0, 100.0],
            criteria={"temperature": QualityCriteria(spectrum_tolerance=0.05)},
            decomposition=decomposition,
        )
        assert len(records) == 2
        assert records[0].ratio < records[1].ratio  # larger eb -> larger ratio

    def test_whole_field_mode(self, snapshot):
        records = run_sweep(
            {"temperature": snapshot["temperature"]},
            ebs=[50.0],
            criteria={},
        )
        assert len(records) == 1
        assert records[0].bit_rate > 0

    def test_rejects_empty(self, snapshot):
        with pytest.raises(ValueError, match="field"):
            run_sweep({}, [1.0], {})
        with pytest.raises(ValueError, match="error bound"):
            run_sweep({"t": snapshot["temperature"]}, [], {})

    def test_rejects_unknown_probe_mode(self, snapshot):
        with pytest.raises(ValueError, match="probe_mode"):
            run_sweep({"t": snapshot["temperature"]}, [1.0], {}, probe_mode="quick")


class TestRateOnlySweep:
    def test_rate_only_skips_quality(self, snapshot, decomposition):
        records = run_sweep(
            {"temperature": snapshot["temperature"]},
            ebs=[10.0, 100.0],
            criteria={},
            decomposition=decomposition,
            rate_only=True,
        )
        assert all(r.quality is None and r.passed is None for r in records)
        # Rates are the real, codec-exact ones.
        exact = run_sweep(
            {"temperature": snapshot["temperature"]},
            ebs=[10.0, 100.0],
            criteria={},
            decomposition=decomposition,
        )
        for fast, ref in zip(records, exact):
            assert fast.bit_rate == ref.bit_rate
            assert fast.ratio == ref.ratio

    def test_estimate_mode_is_rate_only_and_close(self, snapshot, decomposition):
        fields = {"temperature": snapshot["temperature"]}
        est = run_sweep(
            fields, ebs=[200.0, 2000.0], criteria={}, decomposition=decomposition,
            probe_mode="estimate",
        )
        exact = run_sweep(
            fields, ebs=[200.0, 2000.0], criteria={}, decomposition=decomposition,
            rate_only=True,
        )
        for e, x in zip(est, exact):
            assert e.quality is None
            rel = abs(e.bit_rate - x.bit_rate) / x.bit_rate
            assert rel <= 0.10 or abs(e.bit_rate - x.bit_rate) <= 0.1

    def test_estimate_mode_whole_field(self, snapshot):
        records = run_sweep(
            {"temperature": snapshot["temperature"]}, ebs=[25.0], criteria={},
            probe_mode="estimate",
        )
        assert len(records) == 1
        assert records[0].bit_rate > 0 and records[0].quality is None

    def test_rate_only_records_render_in_reports(self, snapshot):
        from repro.foresight.report import records_to_csv, records_to_table

        records = run_sweep(
            {"temperature": snapshot["temperature"]}, ebs=[25.0], criteria={},
            probe_mode="estimate",
        )
        table = records_to_table(records, title="rate only")
        csv = records_to_csv(records)
        assert "temperature" in table
        assert "-" in csv.splitlines()[1].split(",")


class TestReports:
    @pytest.fixture()
    def records(self, snapshot, decomposition):
        return run_sweep(
            {"temperature": snapshot["temperature"]},
            ebs=[10.0, 50.0],
            criteria={},
            decomposition=decomposition,
        )

    def test_table_renders(self, records):
        table = records_to_table(records, title="sweep")
        assert "temperature" in table
        assert "ratio" in table
        assert len(table.splitlines()) == 5  # title + header + sep + 2 rows

    def test_csv_renders(self, records):
        csv = records_to_csv(records)
        lines = csv.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("field,eb,")
        assert lines[1].split(",")[0] == "temperature"
