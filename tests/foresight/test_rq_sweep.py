"""Model-mode sweeps: predicted records, confirmation, lazy references."""

import numpy as np
import pytest

import repro.foresight.sweep as sweep_mod
from repro.foresight.evaluator import FieldReference
from repro.foresight.quality import QualityCriteria
from repro.foresight.sweep import run_sweep
from repro.parallel.decomposition import BlockDecomposition


@pytest.fixture
def field():
    rng = np.random.default_rng(11)
    return rng.normal(1.0, 0.3, (32, 32, 32)) + 2.0


@pytest.fixture
def crit():
    return {"d": QualityCriteria(spectrum_tolerance=0.01, spectrum_k_max=8)}


EBS = [2e-4, 1e-3, 5e-3, 2e-2]


class TestModelMode:
    def test_model_records_carry_predicted_quality(self, field, crit):
        records = run_sweep({"d": field}, EBS, crit, probe_mode="model")
        assert len(records) == len(EBS)
        for rec in records:
            assert rec.quality is not None
            assert rec.passed is not None
            assert np.isfinite(rec.quality.psnr_db)
            assert rec.quality.spectrum_worst_deviation >= 0

    def test_model_matches_exact_verdicts(self, field, crit):
        dec = BlockDecomposition(field.shape, (2, 2, 2))
        exact = run_sweep({"d": field}, EBS, crit, decomposition=dec)
        model = run_sweep(
            {"d": field}, EBS, crit, decomposition=dec, probe_mode="model"
        )
        assert [r.passed for r in exact] == [r.passed for r in model]
        for re_, rm in zip(exact, model):
            assert rm.quality.psnr_db == pytest.approx(re_.quality.psnr_db, abs=1.0)
            assert rm.ratio == pytest.approx(re_.ratio, rel=0.15)

    def test_model_never_compresses_without_confirm(self, field, crit, monkeypatch):
        from repro.compression.sz import SZCompressor

        def boom(self, *a, **k):  # pragma: no cover - must not run
            raise AssertionError("model-mode sweep ran the codec")

        monkeypatch.setattr(SZCompressor, "compress", boom)
        monkeypatch.setattr(SZCompressor, "decompress", boom)
        records = run_sweep({"d": field}, EBS, crit, probe_mode="model")
        assert all(r.quality is not None for r in records)

    def test_confirm_always_measures(self, field, crit):
        dec = BlockDecomposition(field.shape, (2, 2, 2))
        exact = run_sweep({"d": field}, EBS, crit, decomposition=dec)
        confirmed = run_sweep(
            {"d": field}, EBS, crit, decomposition=dec,
            probe_mode="model", confirm="always",
        )
        # Confirmed cells are real measurements: identical to exact mode.
        for re_, rc in zip(exact, confirmed):
            assert rc.quality.psnr_db == re_.quality.psnr_db
            assert rc.ratio == re_.ratio

    def test_confirm_boundary_only_reruns_borderline(self, field, crit):
        dec = BlockDecomposition(field.shape, (2, 2, 2))
        exact = run_sweep({"d": field}, EBS, crit, decomposition=dec)
        boundary = run_sweep(
            {"d": field}, EBS, crit, decomposition=dec,
            probe_mode="model", confirm="boundary",
        )
        assert [r.passed for r in exact] == [r.passed for r in boundary]


class TestLazyReferences:
    def _forbid_references(self, monkeypatch):
        def boom(*a, **k):  # pragma: no cover - must not run
            raise AssertionError("rate-only sweep built a FieldReference")

        monkeypatch.setattr(sweep_mod, "FieldReference", boom)
        monkeypatch.setattr(FieldReference, "spectrum", boom)
        monkeypatch.setattr(FieldReference, "halos", boom)

    def test_rate_only_builds_no_reference(self, field, crit, monkeypatch):
        self._forbid_references(monkeypatch)
        records = run_sweep({"d": field}, EBS, crit, rate_only=True)
        assert all(r.quality is None for r in records)

    def test_estimate_builds_no_reference(self, field, crit, monkeypatch):
        self._forbid_references(monkeypatch)
        records = run_sweep({"d": field}, EBS, crit, probe_mode="estimate")
        assert all(r.quality is None for r in records)

    def test_quality_sweep_shares_one_reference_across_compressors(
        self, field, crit, monkeypatch
    ):
        built = []
        real = sweep_mod.FieldReference

        def counting(data):
            built.append(1)
            return real(data)

        monkeypatch.setattr(sweep_mod, "FieldReference", counting)
        run_sweep(
            {"d": field}, EBS[:2], crit,
            compressors=["sz", "sz:codec=huffman"],
        )
        assert len(built) == 1
