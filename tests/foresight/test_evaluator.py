"""Reference-cached quality engine: parity, caching and parallel sweeps.

The evaluator must produce :class:`QualityReport`s matching the seed
``evaluate_quality`` implementation exactly for spectra/halos and to
floating-point tolerance for the fused PSNR/NRMSE, across compressor
engines and decompositions; quality sweeps must analyze the original
field exactly once per field; and every execution backend must return
identical sweep records.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.foresight.evaluator as evaluator_mod
from repro.analysis.catalog import compare_catalogs
from repro.analysis.halos import find_halos
from repro.analysis.metrics import nrmse, psnr
from repro.analysis.spectrum import power_spectrum
from repro.compression.sz import SZCompressor, decompress
from repro.foresight.evaluator import FieldReference, QualityEvaluator
from repro.foresight.quality import QualityCriteria, QualityReport, evaluate_quality
from repro.foresight.sweep import run_sweep
from repro.parallel.backends import ProcessBackend


def seed_evaluate_quality(original, reconstructed, criteria) -> QualityReport:
    """The seed implementation, frozen: every original-side analysis is
    recomputed per call, spectra are binned to Nyquist, and PSNR/NRMSE
    each run their own error pass."""
    orig = np.asarray(original, dtype=np.float64)
    rec = np.asarray(reconstructed, dtype=np.float64)
    ps_o = power_spectrum(orig)
    ps_r = power_spectrum(rec)
    if (ps_o.power <= 0).any():
        raise ValueError("original spectrum has empty bins; reduce nbins")
    ratio = ps_r.power / ps_o.power
    mask = ps_o.k < criteria.spectrum_k_max
    if not mask.any():
        raise ValueError(f"no spectrum bins below k_max={criteria.spectrum_k_max}")
    worst = float(np.max(np.abs(ratio[mask] - 1.0)))
    halo_ok = halo_rmse = halo_dcount = None
    if criteria.check_halos:
        cat_o = find_halos(orig, criteria.t_boundary, criteria.t_halo)
        cat_r = find_halos(rec, criteria.t_boundary, criteria.t_halo)
        cmp = compare_catalogs(cat_o, cat_r, max_distance=criteria.halo_match_distance)
        halo_rmse = cmp.mass_rmse
        halo_dcount = cmp.count_change
        halo_ok = bool(np.isfinite(halo_rmse) and halo_rmse <= criteria.halo_mass_rmse)
    return QualityReport(
        spectrum_ok=worst <= criteria.spectrum_tolerance,
        spectrum_worst_deviation=worst,
        halo_ok=halo_ok,
        halo_mass_rmse=halo_rmse,
        halo_count_change=halo_dcount,
        psnr_db=psnr(orig, rec),
        nrmse_value=nrmse(orig, rec),
    )


def assert_reports_match(new: QualityReport, seed: QualityReport) -> None:
    """Exact for spectrum/halo results, fp-tolerant for fused metrics."""
    assert new.spectrum_ok == seed.spectrum_ok
    assert new.spectrum_worst_deviation == seed.spectrum_worst_deviation
    assert new.halo_ok == seed.halo_ok
    assert new.halo_count_change == seed.halo_count_change
    if seed.halo_mass_rmse is None:
        assert new.halo_mass_rmse is None
    else:
        assert new.halo_mass_rmse == seed.halo_mass_rmse
    if seed.psnr_db == float("inf"):
        assert new.psnr_db == float("inf")
    else:
        assert new.psnr_db == pytest.approx(seed.psnr_db, rel=1e-12)
    assert new.nrmse_value == pytest.approx(seed.nrmse_value, rel=1e-12, abs=1e-300)


class TestSeedParity:
    @pytest.mark.parametrize("engine", ["dual", "classic"])
    @pytest.mark.parametrize("use_decomposition", [False, True])
    def test_matches_seed_across_engines_and_decompositions(
        self, snapshot, decomposition, engine, use_decomposition
    ):
        data = snapshot["baryon_density"]
        tb = float(np.percentile(data.astype(np.float64), 99.0))
        crit = QualityCriteria(
            spectrum_tolerance=0.05, check_halos=True, t_boundary=tb
        )
        comp = SZCompressor(engine=engine)
        ev = QualityEvaluator(data, crit)
        for eb in (0.01, 0.2):
            if use_decomposition:
                blocks = [
                    comp.compress(v, eb) for v in decomposition.partition_views(data)
                ]
                recon = decomposition.assemble([decompress(b) for b in blocks])
            else:
                recon = decompress(comp.compress(data, eb))
            assert_reports_match(
                ev.evaluate(recon), seed_evaluate_quality(data, recon, crit)
            )

    def test_identical_reconstruction(self, snapshot):
        data = snapshot["temperature"].astype(np.float64)
        report = QualityEvaluator(data, QualityCriteria()).evaluate(data.copy())
        assert report.passed
        assert report.spectrum_worst_deviation == 0.0
        assert report.psnr_db == float("inf")
        assert report.nrmse_value == 0.0

    def test_evaluate_quality_front_matches_evaluator(self, snapshot):
        data = snapshot["temperature"]
        recon = decompress(SZCompressor().compress(data, 50.0))
        crit = QualityCriteria(spectrum_tolerance=0.05)
        assert evaluate_quality(data, recon, crit) == QualityEvaluator(
            data, crit
        ).evaluate(recon)

    def test_constant_original_raises_like_seed(self):
        flat = np.full((8, 8, 8), 3.0)
        bumpy = flat + np.random.default_rng(0).normal(0, 1e-3, flat.shape)
        with pytest.raises(ValueError, match="empty bins"):
            QualityEvaluator(flat, QualityCriteria()).evaluate(bumpy)


class TestFieldReference:
    def test_analyses_cached(self, snapshot):
        ref = FieldReference(snapshot["baryon_density"])
        assert ref.spectrum(8) is ref.spectrum(8)
        assert ref.halos(1.5) is ref.halos(1.5)
        assert ref.moments is ref.moments
        assert ref.f64 is ref.f64

    def test_requires_field_or_reference(self):
        with pytest.raises(ValueError, match="original field or a reference"):
            QualityEvaluator()

    def test_shared_reference_across_evaluators(self, snapshot, monkeypatch):
        data = snapshot["temperature"]
        ref = FieldReference(data)
        QualityEvaluator(criteria=QualityCriteria(), reference=ref)
        calls = {"n": 0}
        real = evaluator_mod.power_spectrum

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(evaluator_mod, "power_spectrum", counting)
        # Same criteria -> same nbins key -> second evaluator reuses the
        # first one's cached original spectrum.
        QualityEvaluator(criteria=QualityCriteria(), reference=ref)
        assert calls["n"] == 0


class TestOriginalAnalyzedOnce:
    @pytest.mark.parametrize("n_ebs", [3, 6])
    def test_sweep_runs_one_reference_analysis_per_field(
        self, snapshot, decomposition, monkeypatch, n_ebs
    ):
        counts = {"spectrum": 0, "halos": 0}
        real_ps = evaluator_mod.power_spectrum
        real_fh = evaluator_mod.find_halos

        def counting_ps(*args, **kwargs):
            counts["spectrum"] += 1
            return real_ps(*args, **kwargs)

        def counting_fh(*args, **kwargs):
            counts["halos"] += 1
            return real_fh(*args, **kwargs)

        monkeypatch.setattr(evaluator_mod, "power_spectrum", counting_ps)
        monkeypatch.setattr(evaluator_mod, "find_halos", counting_fh)

        density = snapshot["baryon_density"]
        tb = float(np.percentile(density.astype(np.float64), 99.0))
        run_sweep(
            {"baryon_density": density},
            ebs=np.geomspace(0.01, 0.5, n_ebs),
            criteria={
                "baryon_density": QualityCriteria(
                    spectrum_tolerance=0.5, check_halos=True, t_boundary=tb
                )
            },
            decomposition=decomposition,
        )
        # One reference analysis plus one per reconstruction — never one
        # per (reconstruction, original) pair like the seed path.
        assert counts["spectrum"] == n_ebs + 1
        assert counts["halos"] == n_ebs + 1

    def test_pickled_evaluator_keeps_caches(self, snapshot, monkeypatch):
        data = snapshot["baryon_density"]
        tb = float(np.percentile(data.astype(np.float64), 99.0))
        crit = QualityCriteria(spectrum_tolerance=0.5, check_halos=True, t_boundary=tb)
        ev = pickle.loads(pickle.dumps(QualityEvaluator(data, crit)))
        recon = decompress(SZCompressor().compress(data, 0.1))

        counts = {"spectrum": 0, "halos": 0}
        real_ps = evaluator_mod.power_spectrum
        real_fh = evaluator_mod.find_halos
        monkeypatch.setattr(
            evaluator_mod,
            "power_spectrum",
            lambda *a, **k: counts.__setitem__("spectrum", counts["spectrum"] + 1)
            or real_ps(*a, **k),
        )
        monkeypatch.setattr(
            evaluator_mod,
            "find_halos",
            lambda *a, **k: counts.__setitem__("halos", counts["halos"] + 1)
            or real_fh(*a, **k),
        )
        ev.evaluate(recon)
        # Only the reconstruction is analyzed; the original's spectrum
        # and catalog crossed the pickle boundary with the evaluator.
        assert counts == {"spectrum": 1, "halos": 1}


class TestBackendEquivalence:
    def _sweep(self, snapshot, decomposition, backend):
        density = snapshot["baryon_density"]
        tb = float(np.percentile(density.astype(np.float64), 99.0))
        return run_sweep(
            {
                "baryon_density": density,
                "temperature": snapshot["temperature"],
            },
            ebs=[0.05, 0.2, 0.8],
            criteria={
                "baryon_density": QualityCriteria(
                    spectrum_tolerance=0.5, check_halos=True, t_boundary=tb
                ),
                "temperature": QualityCriteria(spectrum_tolerance=0.5),
            },
            decomposition=decomposition,
            backend=backend,
        )

    def test_serial_thread_process_identical(self, snapshot, decomposition):
        reference = self._sweep(snapshot, decomposition, None)
        with ProcessBackend(max_workers=2) as process:
            for backend in ("serial", "thread", process):
                records = self._sweep(snapshot, decomposition, backend)
                assert len(records) == len(reference)
                for got, want in zip(records, reference):
                    assert got.field == want.field
                    assert got.eb == want.eb
                    assert got.bit_rate == want.bit_rate
                    assert got.ratio == want.ratio
                    assert got.quality == want.quality


class TestTrialAndErrorCriteria:
    def test_criteria_path_matches_callable_path(self, snapshot, decomposition):
        from repro.analysis.spectrum import check_spectrum_quality
        from repro.core.baselines import TrialAndErrorSearch

        data = snapshot["temperature"]
        candidates = [1.0, 10.0, 100.0, 10000.0]
        by_callable = TrialAndErrorSearch(
            lambda o, r: check_spectrum_quality(o, r, tolerance=0.02)
        )
        by_criteria = TrialAndErrorSearch(
            criteria=QualityCriteria(spectrum_tolerance=0.02)
        )
        res_callable = by_callable.search(data, decomposition, candidates)
        res_criteria = by_criteria.search(data, decomposition, candidates)
        assert res_criteria.eb == res_callable.eb
        assert by_criteria.n_trials == by_callable.n_trials
        for a, b in zip(by_criteria.trials, by_callable.trials):
            assert (a.eb, a.passed) == (b.eb, b.passed)
            assert a.quality_metric == b.quality_metric
            assert a.ratio == b.ratio

    def test_requires_exactly_one_quality_source(self):
        from repro.analysis.spectrum import check_spectrum_quality
        from repro.core.baselines import TrialAndErrorSearch

        with pytest.raises(ValueError, match="exactly one"):
            TrialAndErrorSearch()
        with pytest.raises(ValueError, match="exactly one"):
            TrialAndErrorSearch(
                check_spectrum_quality, criteria=QualityCriteria()
            )
