"""Foresight sweeps with the halo criterion active (density fields)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.foresight.quality import QualityCriteria, evaluate_quality
from repro.foresight.sweep import run_sweep


@pytest.fixture(scope="module")
def density(request):
    snapshot = request.getfixturevalue("snapshot")
    return snapshot["baryon_density"]


class TestHaloCriteriaSweep:
    def test_halo_metrics_populated(self, density, decomposition):
        tb = float(np.percentile(density.astype(np.float64), 99.0))
        crit = QualityCriteria(
            spectrum_tolerance=0.05, check_halos=True, t_boundary=tb
        )
        records = run_sweep(
            {"baryon_density": density},
            ebs=[0.05, 0.5],
            criteria={"baryon_density": crit},
            decomposition=decomposition,
        )
        for r in records:
            assert r.quality.halo_ok is not None
            assert r.quality.halo_mass_rmse is not None
            assert r.quality.halo_count_change is not None

    def test_small_bound_passes_halo_check(self, density, decomposition):
        tb = float(np.percentile(density.astype(np.float64), 99.0))
        crit = QualityCriteria(
            spectrum_tolerance=0.5,
            check_halos=True,
            t_boundary=tb,
            halo_mass_rmse=0.05,
        )
        records = run_sweep(
            {"baryon_density": density},
            ebs=[1e-3],
            criteria={"baryon_density": crit},
            decomposition=decomposition,
        )
        assert records[0].quality.halo_ok

    def test_quality_degrades_with_bound(self, density):
        tb = float(np.percentile(density.astype(np.float64), 99.0))
        crit = QualityCriteria(spectrum_tolerance=1.0, check_halos=True, t_boundary=tb)
        f64 = density.astype(np.float64)
        from repro.compression.sz import SZCompressor, decompress

        comp = SZCompressor()
        devs = []
        for eb in (0.01, 0.1, 1.0):
            recon = decompress(comp.compress(density, eb))
            report = evaluate_quality(f64, recon, crit)
            devs.append(report.spectrum_worst_deviation)
        assert devs[0] < devs[-1]

    def test_report_passed_combines_both_checks(self, density):
        tb = float(np.percentile(density.astype(np.float64), 99.0))
        f64 = density.astype(np.float64)
        # Identical reconstruction: everything passes.
        crit = QualityCriteria(check_halos=True, t_boundary=tb)
        report = evaluate_quality(f64, f64.copy(), crit)
        assert report.passed and report.spectrum_ok and report.halo_ok
