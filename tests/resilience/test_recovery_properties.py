"""Crash-safety properties of the run ledger.

The central property (hypothesis-driven): *cut a valid ledger file at
any byte offset* — the on-disk state any interruption can leave behind
— and ``RunLedger(path, recover=True)`` yields a replayable prefix of
the original run, bitwise identical up to the cut.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.resilience import FaultPlan, TornWrite
from repro.stream import InSituController, RunLedger, replay_ledger
from repro.stream.ledger import LedgerError


@pytest.fixture(scope="module")
def baseline(chaos_stream, chaos_dec, tmp_path_factory):
    """One clean governed run: (raw ledger bytes, events, replay)."""
    path = tmp_path_factory.mktemp("baseline") / "run.jsonl"
    ctl = InSituController(
        chaos_dec, ledger=path, byte_budget=600_000, retain_results=False
    )
    ctl.run(chaos_stream(4))
    raw = path.read_bytes()
    events = RunLedger.load(path).events
    return raw, events, replay_ledger(path)


@settings(
    max_examples=50,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_byte_truncation_recovers_to_replayable_prefix(
    baseline, tmp_path_factory, data
):
    raw, events, full_replay = baseline
    cut = data.draw(st.integers(min_value=0, max_value=len(raw)), label="cut")
    path = tmp_path_factory.mktemp("trunc") / "cut.jsonl"
    path.write_bytes(raw[:cut])

    ledger = RunLedger(path, recover=True)
    ledger.close()

    # Line spans in the original file: [start, end) with end past the
    # "\n".  A line survives the cut iff its *content* is intact (a cut
    # that only loses the trailing newline keeps a parseable event);
    # a cut strictly inside the content is a torn tail.
    spans = []
    pos = 0
    for line in raw.splitlines(keepends=True):
        spans.append((pos, pos + len(line)))
        pos += len(line)
    expected_kept = sum(1 for s, e in spans if cut >= e - 1)
    torn = any(s < cut < e - 1 for s, e in spans)

    kept = [e for e in ledger.events if e.kind != "recovery"]
    # 1. The recovered events are exactly the surviving prefix of the
    #    original run: nothing fully on disk is dropped, nothing partial
    #    is kept.
    assert kept == events[:expected_kept]
    assert len(kept) == expected_kept
    # 2. A mid-content cut is truncated and reported; a cut at a line
    #    boundary (with or without its newline) is not.
    if torn:
        assert ledger.recovered_tail is not None
        assert ledger.recovered_tail["truncated_bytes"] > 0
        assert ledger.select("recovery"), "recovery must be recorded in the ledger"
    else:
        assert ledger.recovered_tail is None
    # 3. The prefix replays (verified) to a prefix of the full replay.
    replayed = replay_ledger(path, verify=True)
    assert replayed == full_replay[: len(replayed)]


def test_recovery_is_idempotent(baseline, tmp_path):
    raw, _, _ = baseline
    path = tmp_path / "cut.jsonl"
    path.write_bytes(raw[: len(raw) - 7])  # tear the final line
    first = RunLedger(path, recover=True)
    first.close()
    assert first.recovered_tail is not None
    again = RunLedger(path, recover=True)
    again.close()
    # Second open finds an undamaged file (plus the recovery event).
    assert again.recovered_tail is None
    assert again.events[: len(first.events)] == first.events


def test_load_readonly_reports_tail_without_touching_file(baseline, tmp_path):
    raw, events, _ = baseline
    path = tmp_path / "cut.jsonl"
    damaged = raw[: len(raw) - 5]
    path.write_bytes(damaged)
    ledger = RunLedger.load(path, recover=True)
    assert ledger.recovered_tail is not None
    assert ledger.recovered_tail["valid_bytes"] + ledger.recovered_tail[
        "truncated_bytes"
    ] == len(damaged)
    assert path.read_bytes() == damaged, "load() must never modify the file"
    with pytest.raises(LedgerError, match="closed"):
        ledger.append("run_end")


def test_mid_file_damage_is_corruption_not_crash(baseline, tmp_path):
    raw, _, _ = baseline
    lines = raw.splitlines(keepends=True)
    assert len(lines) > 3
    mangled = lines[0] + b'{"broken\n' + b"".join(lines[1:])
    path = tmp_path / "corrupt.jsonl"
    path.write_bytes(mangled)
    with pytest.raises(LedgerError):
        RunLedger(path, recover=True)


def test_torn_write_fault_leaves_recoverable_file(tmp_path):
    """An injected TornWrite produces exactly the partial-line state
    recovery is specified against."""
    path = tmp_path / "torn.jsonl"
    ledger = RunLedger(path)
    ledger.append("run_start", schema=3)
    plan = FaultPlan().arm("ledger.append", kind="torn", at=1, fraction=0.5)
    with plan.activate():
        ledger.append("decision", field="temperature", ebs=[0.5])
        with pytest.raises(TornWrite):
            ledger.append("outcome", compressed_bytes=123)
    ledger.close()

    recovered = RunLedger(path, recover=True)
    recovered.close()
    assert [e.kind for e in recovered.events] == [
        "run_start",
        "decision",
        "recovery",
    ]
    tail = recovered.recovered_tail
    assert tail is not None and 0 < tail["truncated_bytes"] < 60
    # The file itself now ends with the recovery event — fully valid.
    assert RunLedger.load(path).events == recovered.events


def test_retried_append_reuses_sequence_id(tmp_path):
    """The fault point fires before commit, so a retried append cannot
    burn a sequence id (which would break monotonicity on replay)."""
    from repro.resilience import RetryPolicy

    path = tmp_path / "retry.jsonl"
    ledger = RunLedger(path)
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
    plan = FaultPlan().arm("ledger.append", kind="crash", at=0)
    with plan.activate():
        event = policy.execute(
            lambda: ledger.append("run_start", schema=3),
            site="ledger.append",
            sleep=lambda _: None,
        )
    ledger.close()
    assert event.seq == 0
    assert plan.fired("ledger.append") == 1
    assert [e.seq for e in RunLedger.load(path).events] == [0]


def test_fsync_ledger_appends_and_recovers(tmp_path):
    path = tmp_path / "sync.jsonl"
    with RunLedger(path, fsync=True) as ledger:
        ledger.append("run_start", schema=3)
        ledger.append("run_end", n_snapshots=0)
    assert [e.kind for e in RunLedger.load(path).events] == ["run_start", "run_end"]
