"""Shared fixtures for the chaos / recovery suite.

A tiny simulator keeps full stream runs cheap enough that every chaos
scenario can afford a clean reference run to compare against.
"""

from __future__ import annotations

import pytest

from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator
from repro.stream import SimulatorStream

FIELDS = ("baryon_density", "temperature")
REDSHIFTS = [5.0, 4.0, 3.0, 2.4, 1.8, 1.2, 0.8, 0.5]


@pytest.fixture(scope="module")
def chaos_sim() -> NyxSimulator:
    return NyxSimulator(shape=(16, 16, 16), box_size=16.0, seed=11, sigma_delta0=2.5)


@pytest.fixture(scope="module")
def chaos_dec() -> BlockDecomposition:
    return BlockDecomposition((16, 16, 16), blocks=2)


@pytest.fixture(scope="module")
def chaos_stream(chaos_sim):
    """Factory for an n-snapshot two-field stream over the tiny box."""

    def factory(n: int = 8) -> SimulatorStream:
        return SimulatorStream(chaos_sim, REDSHIFTS[:n], fields=FIELDS)

    return factory
