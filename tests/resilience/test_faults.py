"""Unit coverage for the seeded fault-injection machinery."""

from __future__ import annotations

import pytest

from repro.resilience import (
    CorruptedPayloadError,
    FaultPlan,
    InjectedCrash,
    InjectedTimeout,
    TornWrite,
    TransientError,
    active_plan,
    fault_point,
)
from repro.resilience.faults import FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="s", kind="meltdown", at=frozenset({0}))

    def test_empty_invocations_rejected(self):
        with pytest.raises(ValueError, match="no invocations"):
            FaultSpec(site="s", kind="crash", at=frozenset())

    def test_negative_invocation_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(site="s", kind="crash", at=frozenset({-1}))

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec(site="s", kind="torn", at=frozenset({0}), fraction=1.0)


class TestFaultPlan:
    def test_fires_only_on_armed_invocations(self):
        plan = FaultPlan().arm("site", kind="crash", at=(1, 3))
        with plan.activate():
            fault_point("site")  # invocation 0: pass
            with pytest.raises(InjectedCrash):
                fault_point("site")  # 1: armed
            fault_point("site")  # 2: pass
            with pytest.raises(InjectedCrash):
                fault_point("site")  # 3: armed
        assert plan.invocations("site") == 4
        assert plan.fired("site") == 2

    def test_kinds_raise_typed_exceptions(self):
        cases = [
            ("crash", InjectedCrash),
            ("timeout", InjectedTimeout),
            ("corrupt", CorruptedPayloadError),
            ("torn", TornWrite),
        ]
        for kind, exc_type in cases:
            plan = FaultPlan().arm("s", kind=kind, at=0)
            with plan.activate(), pytest.raises(exc_type):
                fault_point("s")

    def test_classification_matches_retry_contract(self):
        # crash/corrupt are transient (retried); timeout is a
        # TimeoutError; torn is deliberately NOT transient.
        assert issubclass(InjectedCrash, TransientError)
        assert issubclass(CorruptedPayloadError, TransientError)
        assert issubclass(InjectedTimeout, TimeoutError)
        assert not issubclass(TornWrite, TransientError)

    def test_torn_carries_fraction(self):
        plan = FaultPlan().arm("s", kind="torn", at=0, fraction=0.25)
        with plan.activate(), pytest.raises(TornWrite) as err:
            fault_point("s")
        assert err.value.fraction == 0.25

    def test_disarm_keeps_counts(self):
        plan = FaultPlan().arm("s", kind="crash", at=0)
        with plan.activate():
            with pytest.raises(InjectedCrash):
                fault_point("s")
            plan.disarm("s")
            fault_point("s")  # would have been armed without disarm
        assert plan.invocations("s") == 2
        assert plan.fired("s") == 1
        assert plan.armed_at("s") == frozenset()

    def test_disarmed_point_is_noop(self):
        plan = FaultPlan().arm("other")
        with plan.activate():
            fault_point("unarmed")  # counted, never raises
        assert plan.invocations("unarmed") == 1
        assert plan.fired("unarmed") == 0

    def test_no_plan_installed_is_noop(self):
        assert active_plan() is None
        fault_point("anything")  # must not raise, must not need a plan

    def test_activate_restores_previous_state(self):
        plan = FaultPlan()
        with plan.activate():
            assert active_plan() is plan
        assert active_plan() is None

    def test_arm_random_is_seed_deterministic(self):
        a = FaultPlan(seed=9).arm_random("s", rate=0.3, horizon=50)
        b = FaultPlan(seed=9).arm_random("s", rate=0.3, horizon=50)
        c = FaultPlan(seed=10).arm_random("s", rate=0.3, horizon=50)
        assert a.armed_at("s") == b.armed_at("s")
        assert a.armed_at("s") != c.armed_at("s")

    def test_arm_random_differs_by_site(self):
        plan = FaultPlan(seed=9)
        plan.arm_random("one", rate=0.3, horizon=50)
        plan.arm_random("two", rate=0.3, horizon=50)
        assert plan.armed_at("one") != plan.armed_at("two")

    def test_arm_random_never_arms_nothing(self):
        # Tiny rate over a tiny horizon: the deterministic fallback
        # still arms exactly one invocation.
        plan = FaultPlan(seed=0).arm_random("s", rate=1e-9, horizon=3)
        assert len(plan.armed_at("s")) == 1

    def test_arm_random_validates_inputs(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan().arm_random("s", rate=0.0, horizon=10)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan().arm_random("s", rate=0.5, horizon=0)
