"""End-to-end chaos: injected faults, retries, crashes, and resume.

Every scenario checks the same invariant from a different angle: fault
tolerance must be *invisible in the output*.  A retried transient
fault, a rebuilt worker pool, or an interrupted-then-resumed run has to
produce payloads and ledger decisions bitwise identical to a run where
nothing went wrong.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.rate_model import RateModel
from repro.parallel.backends import ProcessBackend
from repro.resilience import (
    FaultPlan,
    InjectedCrash,
    RetryPolicy,
    TornWrite,
)
from repro.sim.io import save_snapshot
from repro.stream import (
    DirectoryStream,
    InSituController,
    RunLedger,
    replay_ledger,
)

#: Zero-wait policy: chaos tests never sleep on wall-clock time.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _payload_table(report):
    """Every compressed byte of a run, keyed for exact comparison."""
    table = []
    for o in report.outcomes:
        assert o.result is not None, "retain_results=True required"
        table.append(
            (
                o.snapshot_index,
                o.field,
                tuple(float(eb) for eb in o.result.ebs),
                [b.payloads for b in o.result.blocks],
            )
        )
    return table


class TestTransientFaultsAreInvisible:
    def test_retried_compress_faults_leave_payloads_bitwise_identical(
        self, chaos_stream, chaos_dec
    ):
        clean = InSituController(chaos_dec).run(chaos_stream(3))

        plan = FaultPlan(seed=3).arm("backend.compress", kind="crash", at=(1, 4))
        ctl = InSituController(chaos_dec, retry=FAST_RETRY)
        with plan.activate():
            chaotic = ctl.run(chaos_stream(3))

        assert plan.fired("backend.compress") == 2
        assert chaotic.n_retries == 2
        assert chaotic.n_degradations == 0
        assert _payload_table(chaotic) == _payload_table(clean)

    def test_retried_ledger_appends_keep_the_ledger_identical(
        self, chaos_stream, chaos_dec, tmp_path
    ):
        clean_path = tmp_path / "clean.jsonl"
        InSituController(
            chaos_dec, ledger=clean_path, retain_results=False
        ).run(chaos_stream(2))

        chaos_path = tmp_path / "chaos.jsonl"
        plan = FaultPlan(seed=6).arm("ledger.append", kind="crash", at=(2, 7))
        ctl = InSituController(
            chaos_dec, ledger=chaos_path, retry=FAST_RETRY, retain_results=False
        )
        with plan.activate():
            report = ctl.run(chaos_stream(2))
        ctl.ledger.close()

        assert plan.fired("ledger.append") == 2
        assert report.n_retries == 2
        # Retried appends reuse their sequence ids: byte-identical files.
        assert chaos_path.read_bytes() == clean_path.read_bytes()

    def test_directory_stream_survives_transient_load_faults(
        self, tmp_path, chaos_sim
    ):
        for i, z in enumerate([5.0, 4.0, 3.0]):
            save_snapshot(chaos_sim.snapshot(z=z), tmp_path / f"snap_{i:04d}.npz")

        clean = list(DirectoryStream(tmp_path, pattern="snap_*.npz"))
        plan = FaultPlan(seed=4).arm("source.load", kind="crash", at=(0, 2))
        stream = DirectoryStream(tmp_path, pattern="snap_*.npz", retry=FAST_RETRY)
        with plan.activate():
            loaded = list(stream)

        assert plan.fired("source.load") == 2
        assert len(loaded) == len(clean) == 3
        for got, want in zip(loaded, clean):
            assert got.redshift == want.redshift
            for name in want.fields:
                assert np.array_equal(got[name], want[name])


class TestWorkerCrash:
    def test_killed_worker_rebuilds_pool_and_matches_serial(
        self, chaos_stream, chaos_dec
    ):
        serial = InSituController(chaos_dec).run(chaos_stream(2))

        plan = FaultPlan(seed=5).arm("backend.compress", kind="exit", at=0)
        backend = ProcessBackend(
            max_workers=2,
            start_method="fork",
            retry_policy=FAST_RETRY,
            # One-shot kill: disarm after the first death so the
            # re-forked replacement workers inherit a harmless plan.
            on_retry=lambda site, attempt, exc, delay: plan.disarm(
                "backend.compress"
            ),
        )
        try:
            with plan.activate():
                # The pool forks inside the activated plan, so workers
                # inherit the armed fault and one genuinely _exit()s.
                ctl = InSituController(chaos_dec, backend=backend)
                chaotic = ctl.run(chaos_stream(2))
        finally:
            backend.close()

        assert backend.n_pool_rebuilds >= 1
        assert backend.n_retries >= 1
        assert _payload_table(chaotic) == _payload_table(serial)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
    def test_failed_snapshot_releases_shared_memory(self, chaos_sim, chaos_dec):
        data = chaos_sim.snapshot(z=1.0)["temperature"]
        pipe = AdaptiveCompressionPipeline(
            RateModel(exponent=-0.8, coef_alpha=0.0, coef_beta=0.3)
        )
        before = set(os.listdir("/dev/shm"))
        backend = ProcessBackend(max_workers=2, start_method="fork")
        plan = FaultPlan(seed=8).arm("backend.compress", kind="crash", at=0)
        try:
            with plan.activate(), pytest.raises(InjectedCrash):
                pipe.run_insitu_spmd(data, chaos_dec, eb_avg=0.2, backend=backend)
        finally:
            backend.close()
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"shared-memory segments leaked: {sorted(leaked)}"


class TestInterruptedRunResumes:
    def test_governed_8_snapshot_crash_resumes_byte_identical(
        self, chaos_stream, chaos_dec, tmp_path
    ):
        """The headline scenario: a governed 8-snapshot stream dies
        mid-run with a torn final ledger line; the resumed run must be
        indistinguishable from one that never crashed."""
        base_path = tmp_path / "base.jsonl"
        InSituController(
            chaos_dec, ledger=base_path, byte_budget=800_000, retain_results=False
        ).run(chaos_stream(8))
        baseline = replay_ledger(base_path)

        crash_path = tmp_path / "crash.jsonl"
        ctl = InSituController(
            chaos_dec, ledger=crash_path, byte_budget=800_000, retain_results=False
        )
        # Tear a mid-run append: the write lands partially on disk and
        # the "process" dies with the snapshot incomplete.
        plan = FaultPlan(seed=1).arm("ledger.append", kind="torn", at=26, fraction=0.6)
        with plan.activate(), pytest.raises(TornWrite):
            ctl.run(chaos_stream(8))
        ctl.ledger.close()
        assert plan.fired("ledger.append") == 1

        resumed = InSituController.resume(crash_path, retain_results=False)
        assert 0 < resumed.report.n_snapshots < 8, "must resume mid-stream"
        assert resumed.report.n_recoveries == 1

        report = resumed.run(chaos_stream(8))
        assert report.n_snapshots == 8

        ledger = RunLedger.load(crash_path)
        assert len(ledger.select("recovery")) == 1
        assert len(ledger.select("resume")) == 1
        assert ledger.select("resume")[0].data["truncated_bytes"] > 0

        assert replay_ledger(crash_path) == baseline

    def test_worker_crash_plus_torn_tail_resumes_byte_identical(
        self, chaos_stream, chaos_dec, tmp_path
    ):
        """The acceptance scenario verbatim: a worker crash kills the
        run mid-snapshot (some fields already recorded) *and* the final
        ledger line is torn mid-append; resume absorbs both."""
        base_path = tmp_path / "base.jsonl"
        InSituController(
            chaos_dec, ledger=base_path, byte_budget=800_000, retain_results=False
        ).run(chaos_stream(8))
        baseline = replay_ledger(base_path)

        crash_path = tmp_path / "crash.jsonl"
        ctl = InSituController(
            chaos_dec, ledger=crash_path, byte_budget=800_000, retain_results=False
        )
        # No retry policy: the crashed worker takes the whole run down
        # after the snapshot's first field was already ledgered.
        plan = FaultPlan(seed=9).arm("backend.compress", kind="crash", at=9)
        with plan.activate(), pytest.raises(InjectedCrash):
            ctl.run(chaos_stream(8))
        ctl.ledger.close()
        # The dying process was also mid-append: tear the final line.
        raw = crash_path.read_bytes()
        crash_path.write_bytes(raw[:-9])

        resumed = InSituController.resume(crash_path, retain_results=False)
        assert resumed.report.n_recoveries == 1
        assert 0 < resumed.report.n_snapshots < 8
        report = resumed.run(chaos_stream(8))
        assert report.n_snapshots == 8
        assert replay_ledger(crash_path) == baseline

    def test_ungoverned_crash_reruns_last_snapshot_and_stays_identical(
        self, chaos_stream, chaos_dec, tmp_path
    ):
        base_path = tmp_path / "base.jsonl"
        InSituController(chaos_dec, ledger=base_path, retain_results=False).run(
            chaos_stream(4)
        )
        baseline = replay_ledger(base_path)

        crash_path = tmp_path / "crash.jsonl"
        ctl = InSituController(chaos_dec, ledger=crash_path, retain_results=False)
        plan = FaultPlan(seed=7).arm("ledger.append", kind="torn", at=9, fraction=0.4)
        with plan.activate(), pytest.raises(TornWrite):
            ctl.run(chaos_stream(4))
        ctl.ledger.close()

        resumed = InSituController.resume(crash_path, retain_results=False)
        report = resumed.run(chaos_stream(4))
        assert report.n_snapshots == 4
        # Without a governor, the last referenced snapshot cannot be
        # proven complete, so it is conservatively re-executed; the
        # resume event supersedes the duplicates on replay.
        assert replay_ledger(crash_path) == baseline

    def test_resuming_a_sealed_run_is_a_noop(self, chaos_stream, chaos_dec, tmp_path):
        path = tmp_path / "done.jsonl"
        InSituController(chaos_dec, ledger=path, retain_results=False).run(
            chaos_stream(2)
        )
        n_events = len(RunLedger.load(path).events)
        baseline = replay_ledger(path)

        resumed = InSituController.resume(path, retain_results=False)
        report = resumed.run(chaos_stream(2))
        resumed.ledger.close()
        assert report.n_snapshots == 2
        # A completed run gains no events — not even a resume marker.
        assert len(RunLedger.load(path).events) == n_events
        assert replay_ledger(path) == baseline


class TestDegradation:
    def test_exhausted_retries_fall_back_quarantine_and_replay(
        self, chaos_stream, chaos_dec, tmp_path
    ):
        path = tmp_path / "degraded.jsonl"
        # Both attempts of the first field run fail; the budget is
        # exhausted and the field must degrade to the fallback spec.
        plan = FaultPlan(seed=2).arm("backend.compress", kind="crash", at=(0, 1))
        ctl = InSituController(
            chaos_dec,
            ledger=path,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            fallback_compressor="sz:codec=zlib",
            retain_results=False,
        )
        with plan.activate():
            report = ctl.run(chaos_stream(3))
        ctl.ledger.close()

        assert report.n_retries >= 1
        assert report.n_degradations == 1
        assert len(report.degraded_fields) == 1
        degraded = report.degraded_fields[0]

        events = RunLedger.load(path).select("degradation")
        assert len(events) == 1
        assert events[0].data["field"] == degraded
        assert events[0].data["fallback"]["params"]["codec"] == "zlib"

        decisions = replay_ledger(path)
        assert len(decisions) == 6  # 3 snapshots x 2 fields, none lost
        for dec in decisions:
            if dec.field == degraded:
                assert dec.compressor is not None
                assert dict(dec.compressor.params)["codec"] == "zlib"

    def test_no_fallback_configured_propagates_the_failure(
        self, chaos_stream, chaos_dec
    ):
        from repro.resilience import RetryExhaustedError

        plan = FaultPlan(seed=2).arm("backend.compress", kind="crash", at=(0, 1))
        ctl = InSituController(
            chaos_dec, retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        )
        with plan.activate(), pytest.raises(RetryExhaustedError):
            ctl.run(chaos_stream(2))
