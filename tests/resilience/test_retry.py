"""Unit coverage for RetryPolicy: seeded backoff, budgets, classification."""

from __future__ import annotations

import pytest

from repro.resilience import (
    InjectedCrash,
    RetryExhaustedError,
    RetryPolicy,
    TransientError,
)


def failing_times(n: int, exc_factory=lambda k: TransientError(f"boom {k}")):
    """An operation that fails its first ``n`` calls, then returns 'ok'."""
    calls = []

    def op():
        calls.append(None)
        if len(calls) <= n:
            raise exc_factory(len(calls))
        return "ok"

    op.calls = calls
    return op


class TestDelays:
    def test_schedule_length_is_budget_minus_one(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(policy.delays("site")) == 3

    def test_deterministic_per_seed_and_site(self):
        a = RetryPolicy(max_attempts=5, seed=3).delays("stream.field:temperature")
        b = RetryPolicy(max_attempts=5, seed=3).delays("stream.field:temperature")
        assert a == b

    def test_distinct_sites_get_distinct_jitter(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.5, seed=3)
        assert policy.delays("source.load") != policy.delays("ledger.append")

    def test_exponential_shape_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, backoff=2.0, jitter=0.0, max_delay=60.0
        )
        assert policy.delays("s") == pytest.approx([0.1, 0.2, 0.4])

    def test_max_delay_caps_the_tail(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, backoff=10.0, jitter=0.0, max_delay=5.0
        )
        assert policy.delays("s") == pytest.approx([1.0, 5.0, 5.0, 5.0, 5.0])

    def test_jitter_only_stretches(self):
        # Jitter multiplies by (1 + jitter * u), u in [0, 1): never shrinks
        # a delay below its deterministic base value.
        base = RetryPolicy(max_attempts=6, jitter=0.0, seed=7)
        jittered = RetryPolicy(max_attempts=6, jitter=0.5, seed=7)
        for lo, hi in zip(base.delays("s"), jittered.delays("s")):
            assert lo <= hi <= lo * 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)


class TestExecute:
    def test_success_after_transient_failures(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.25, seed=1)
        op = failing_times(2)
        assert policy.execute(op, site="s", sleep=sleeps.append) == "ok"
        assert len(op.calls) == 3
        # The injected sleep saw exactly the precomputed schedule prefix.
        assert sleeps == policy.delays("s")[:2]

    def test_on_retry_hook_sees_site_attempt_exc_delay(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.02, jitter=0.0)

        def on_retry(site, attempt, exc, delay):
            seen.append((site, attempt, type(exc).__name__, delay))

        policy.execute(
            failing_times(1), site="s", sleep=lambda _: None, on_retry=on_retry
        )
        assert seen == [("s", 1, "TransientError", pytest.approx(0.02))]

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        op = failing_times(5, exc_factory=lambda k: KeyError(k))
        with pytest.raises(KeyError):
            policy.execute(op, site="s", sleep=lambda _: None)
        assert len(op.calls) == 1

    def test_exhaustion_raises_typed_error_with_cause(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        op = failing_times(99)
        with pytest.raises(RetryExhaustedError) as err:
            policy.execute(op, site="stream.field:vx", sleep=lambda _: None)
        exc = err.value
        assert exc.site == "stream.field:vx"
        assert exc.attempts == 2
        assert isinstance(exc.last, TransientError)
        assert exc.__cause__ is exc.last
        assert len(op.calls) == 2

    def test_default_classification_covers_the_stream_failure_modes(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        for exc_factory in (
            lambda k: InjectedCrash("w"),  # TransientError subclass
            lambda k: TimeoutError("t"),
            lambda k: OSError("disk"),
        ):
            op = failing_times(1, exc_factory=exc_factory)
            assert policy.execute(op, site="s", sleep=lambda _: None) == "ok"

    def test_custom_retryable_narrows_classification(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.0, jitter=0.0, retryable=(ValueError,)
        )
        assert policy.execute(
            failing_times(1, lambda k: ValueError(k)), site="s", sleep=lambda _: None
        ) == "ok"
        with pytest.raises(OSError):
            policy.execute(
                failing_times(1, lambda k: OSError(k)), site="s", sleep=lambda _: None
            )

    def test_single_attempt_budget_never_sleeps(self):
        policy = RetryPolicy(max_attempts=1)
        sleeps = []
        with pytest.raises(RetryExhaustedError):
            policy.execute(failing_times(9), site="s", sleep=sleeps.append)
        assert sleeps == []
