"""Fitting the §3.5 revised error model from data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.error_distribution import (
    RevisedUniformErrorModel,
    UniformErrorModel,
    fit_revised_model,
)


class TestFitRevisedModel:
    def test_uniform_data_gives_zero_weight(self):
        rng = np.random.default_rng(0)
        orig = rng.normal(0, 100, 200_000)
        recon = orig + rng.uniform(-1, 1, orig.shape)
        model = fit_revised_model(orig, recon, 1.0)
        assert model.normal_weight < 0.15

    def test_mixture_data_recovers_weight(self):
        rng = np.random.default_rng(1)
        true = RevisedUniformErrorModel(normal_weight=0.6, normal_sigma_factor=0.2)
        orig = rng.normal(0, 100, 200_000)
        recon = orig + true.sample(1.0, orig.size, rng)
        fitted = fit_revised_model(orig, recon, 1.0)
        assert fitted.normal_weight == pytest.approx(0.6, abs=0.2)
        assert fitted.normal_sigma_factor == pytest.approx(0.2, abs=0.15)

    def test_fitted_model_matches_measured_std(self):
        rng = np.random.default_rng(2)
        true = RevisedUniformErrorModel(normal_weight=0.4, normal_sigma_factor=0.3)
        orig = rng.normal(0, 50, 100_000)
        err = true.sample(2.0, orig.size, rng)
        fitted = fit_revised_model(orig, orig + err, 2.0)
        assert fitted.std(2.0) == pytest.approx(err.std(), rel=0.08)

    def test_on_real_compressor_high_bound(self, snapshot):
        """At large bounds the compressor's error narrows below uniform
        (the §3.5 phenomenon); the fit must detect a nonzero weight or at
        minimum a reduced std."""
        from repro.compression.sz import SZCompressor, decompress

        data = snapshot["baryon_density"].astype(np.float64)
        eb = 5.0  # large vs typical values -> many exact-zero predictions
        recon = decompress(SZCompressor().compress(data, eb))
        fitted = fit_revised_model(data, recon, eb)
        assert fitted.std_factor <= UniformErrorModel().std_factor + 1e-9

    def test_rejects_bad_eb(self):
        with pytest.raises(ValueError, match="eb"):
            fit_revised_model(np.zeros(4), np.zeros(4), 0.0)
