"""Cross-model consistency checks.

The three models share assumptions (uniform error, locally flat
histograms, power-law rates); these tests verify the *interactions* the
paper's §3.6 strategy relies on, rather than each model in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.sz import SZCompressor, decompress
from repro.models.error_distribution import UniformErrorModel
from repro.models.fft_error import dft_error_sigma
from repro.models.halo_error import FAULT_PROBABILITY, boundary_cell_count
from repro.models.rate_model import RateModel, optimal_error_bounds


class TestErrorModelConsistency:
    def test_fault_probability_consistent_with_uniform_model(self):
        """Eq. 12's 1/4 is exactly the uniform model's fault probability."""
        assert UniformErrorModel().fault_probability() == FAULT_PROBABILITY

    def test_fft_sigma_uses_uniform_std(self):
        """Eq. 8's sqrt(N/6) = sqrt(N/2) * (uniform std factor)."""
        n, eb = 4096, 0.7
        via_factor = dft_error_sigma(n, eb, std_factor=UniformErrorModel().std_factor)
        direct = dft_error_sigma(n, eb)
        assert via_factor == pytest.approx(direct)

    def test_injected_model_error_matches_compressor_statistics(self, snapshot):
        """Sampling the error model reproduces the compressor's moments."""
        data = snapshot["temperature"].astype(np.float64)
        eb = 10.0
        comp = SZCompressor()
        real_err = decompress(comp.compress(data, eb)) - data
        rng = np.random.default_rng(0)
        model_err = UniformErrorModel().sample(eb, data.size, rng)
        assert real_err.std() == pytest.approx(model_err.std(), rel=0.05)
        assert abs(real_err.mean()) < 0.05 * eb


class TestOptimizerModelInteraction:
    def test_combined_budget_is_additive_over_partitions(self, snapshot, decomposition):
        """Eq. 11's sum over partitions equals the whole-field count."""
        rho = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(rho, 98.0))
        eb = 0.5
        whole = boundary_cell_count(rho, tb, eb)
        parts = sum(
            boundary_cell_count(v, tb, eb)
            for v in decomposition.partition_views(rho)
        )
        assert parts == whole

    def test_spectrum_solution_invariant_to_coefficient_scale(self):
        """Scaling every C_m by a constant must not move the optimum
        (only relative compressibility matters)."""
        rng = np.random.default_rng(1)
        coeffs = np.exp(rng.normal(0, 0.5, 32))
        a = optimal_error_bounds(coeffs, 0.5, -0.7)
        b = optimal_error_bounds(coeffs * 37.0, 0.5, -0.7)
        assert np.allclose(a, b)

    def test_rate_model_predicts_zero_gain_for_homogeneous_fields(self):
        """If every partition shares one C, adaptive == static exactly."""
        model = RateModel(exponent=-0.8, coef_alpha=1.0, coef_beta=0.0)
        c = model.predict_coefficient(np.array([0.1, 1.0, 10.0]))
        assert np.allclose(c, c[0])
        ebs = optimal_error_bounds(np.asarray(c), 0.3, model.exponent)
        assert np.allclose(ebs, 0.3)

    def test_clamp_feasibility_always_contains_static(self):
        """eb_avg itself is always inside the clamp box, so the
        constraint is always feasible."""
        rng = np.random.default_rng(2)
        for _ in range(20):
            coeffs = np.exp(rng.normal(0, 2.0, 16))
            eb_avg = float(rng.uniform(0.01, 10))
            ebs = optimal_error_bounds(coeffs, eb_avg, -0.6, clamp_factor=4.0)
            assert ebs.mean() == pytest.approx(eb_avg, rel=1e-6)


class TestScalingLaws:
    def test_fft_tolerance_shrinks_with_resolution(self, snapshot):
        """The paper's observation: higher resolution is less error-
        tolerant in absolute sigma terms (Eq. 9's sqrt(N) growth)."""
        eb = 1.0
        sigma_small = dft_error_sigma(64**3, eb)
        sigma_big = dft_error_sigma(512**3, eb)
        assert sigma_big / sigma_small == pytest.approx(np.sqrt(512**3 / 64**3))

    def test_halo_budget_scales_linearly_with_volume(self, snapshot):
        """Doubling the candidate population doubles Eq. 11's estimate."""
        from repro.models.halo_error import halo_mass_error_budget

        rates = np.array([10.0, 20.0])
        ebs = np.array([0.5, 0.5])
        single = halo_mass_error_budget(88.0, rates, ebs)
        double = halo_mass_error_budget(88.0, np.tile(rates, 2), np.tile(ebs, 2))
        assert double == pytest.approx(2 * single)
