"""Rate-model calibration on real compressor output (§3.5, Fig. 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.calibration import calibrate_rate_model, partition_feature


class TestPartitionFeature:
    def test_positive_field_equals_mean(self):
        arr = np.abs(np.random.default_rng(0).normal(2, 1, (4, 4, 4)))
        assert partition_feature(arr) == pytest.approx(arr.mean())

    def test_signed_field_uses_magnitude(self):
        arr = np.array([[[-3.0, 3.0]]])
        assert partition_feature(arr) == 3.0


class TestCalibration:
    def test_exponent_negative_and_shared(self, snapshot, decomposition):
        views = decomposition.partition_views(snapshot["baryon_density"])
        cal = calibrate_rate_model(views, eb_scale=0.2, seed=0)
        assert cal.shared_exponent < 0
        # Informative per-partition exponents cluster around the median.
        good = cal.fit_r2 > 0.5
        assert good.sum() >= len(views) // 2

    def test_coefficient_predictable_from_mean(self, snapshot, decomposition):
        """Fig. 10(a): C_m vs mean regression explains most variance."""
        views = decomposition.partition_views(snapshot["baryon_density"])
        cal = calibrate_rate_model(views, eb_scale=0.2, seed=0)
        assert cal.coef_r2 > 0.5

    def test_rate_predictions_in_ballpark(self, snapshot, decomposition):
        from repro.compression.sz import SZCompressor

        views = decomposition.partition_views(snapshot["baryon_density"])
        cal = calibrate_rate_model(views, eb_scale=0.2, seed=0)
        comp = SZCompressor()
        eb = 0.2
        measured = np.array([comp.compress(v, eb).bit_rate for v in views])
        predicted = np.array(
            [cal.rate_model.predict_bitrate(partition_feature(v), eb) for v in views]
        )
        # Geometric-mean agreement within a factor ~1.6.
        log_err = np.abs(np.log(predicted / measured))
        assert np.median(log_err) < 0.5

    def test_max_partitions_subsampling(self, snapshot, decomposition):
        views = decomposition.partition_views(snapshot["baryon_density"])
        cal = calibrate_rate_model(views, eb_scale=0.2, max_partitions=3, seed=0)
        assert len(cal.exponents) == 3

    def test_deterministic_given_seed(self, snapshot, decomposition):
        views = decomposition.partition_views(snapshot["baryon_density"])
        a = calibrate_rate_model(views, eb_scale=0.2, max_partitions=4, seed=1)
        b = calibrate_rate_model(views, eb_scale=0.2, max_partitions=4, seed=1)
        assert a.rate_model.exponent == b.rate_model.exponent
        assert a.rate_model.coef_alpha == b.rate_model.coef_alpha

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one partition"):
            calibrate_rate_model([])

    def test_rejects_single_probe(self, snapshot, decomposition):
        views = decomposition.partition_views(snapshot["baryon_density"])
        with pytest.raises(ValueError, match="two probe"):
            calibrate_rate_model(views, probe_ebs=[0.1])

    def test_rejects_nonpositive_probe(self, snapshot, decomposition):
        views = decomposition.partition_views(snapshot["baryon_density"])
        with pytest.raises(ValueError, match="positive"):
            calibrate_rate_model(views, probe_ebs=[0.1, -0.2])


class TestProbeModes:
    def test_rejects_unknown_probe_mode(self, snapshot, decomposition):
        views = decomposition.partition_views(snapshot["baryon_density"])
        with pytest.raises(ValueError, match="probe_mode"):
            calibrate_rate_model(views, eb_scale=0.2, probe_mode="fast")

    def test_estimate_mode_fits_close_to_exact(self, snapshot, decomposition):
        """The codec-free fit must predict the same rates as the exact
        fit to within 10% across the probe range (the acceptance bar for
        swapping it into calibration)."""
        views = decomposition.partition_views(snapshot["baryon_density"])
        exact = calibrate_rate_model(views, eb_scale=0.2, seed=0, probe_mode="exact")
        est = calibrate_rate_model(views, eb_scale=0.2, seed=0, probe_mode="estimate")
        means = np.array([np.mean(np.abs(v)) for v in views])
        for eb in (0.1, 0.2, 0.4):
            b_exact = exact.rate_model.predict_bitrate(means, eb)
            b_est = est.rate_model.predict_bitrate(means, eb)
            assert np.max(np.abs(b_est / b_exact - 1.0)) < 0.10

    def test_estimate_mode_never_runs_codec(self, snapshot, decomposition, monkeypatch):
        from repro.compression.sz import SZCompressor

        views = decomposition.partition_views(snapshot["baryon_density"])
        comp = SZCompressor()

        def boom(*a, **k):  # pragma: no cover - called means failure
            raise AssertionError("exact compress ran in estimate mode")

        monkeypatch.setattr(comp, "compress", boom)
        cal = calibrate_rate_model(
            views, compressor=comp, eb_scale=0.2, seed=0, probe_mode="estimate"
        )
        assert cal.shared_exponent < 0
