"""The RMS-constraint optimizer variant (exact Eq. 10 combination)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import optimize as sopt

from repro.core.config import OptimizerSettings
from repro.core.features import PartitionFeatures
from repro.core.optimizer import optimize_for_spectrum
from repro.models.rate_model import RateModel, optimal_error_bounds


class TestRmsConstraint:
    def test_rms_held_exactly(self):
        rng = np.random.default_rng(0)
        coeffs = np.exp(rng.normal(0, 0.6, 64))
        ebs = optimal_error_bounds(coeffs, 0.5, -0.7, constraint="rms")
        assert float(np.sqrt(np.mean(ebs**2))) == pytest.approx(0.5, rel=1e-9)

    def test_uniform_coefficients_degenerate(self):
        ebs = optimal_error_bounds(np.full(8, 2.0), 0.3, -0.5, constraint="rms")
        assert np.allclose(ebs, 0.3)

    def test_redistribution_gentler_than_mean(self):
        """Quadratic spreading cost narrows the optimal bound spread."""
        coeffs = np.array([0.5, 1.0, 2.0, 4.0])
        mean_sol = optimal_error_bounds(coeffs, 1.0, -0.7, constraint="mean")
        rms_sol = optimal_error_bounds(coeffs, 1.0, -0.7, constraint="rms")
        assert rms_sol.max() / rms_sol.min() < mean_sol.max() / mean_sol.min()

    def test_clamp_respected(self):
        coeffs = np.array([1e-4, 1.0, 1e4])
        ebs = optimal_error_bounds(coeffs, 1.0, -0.7, constraint="rms", clamp_factor=4.0)
        assert ebs.min() >= 0.25 - 1e-12
        assert ebs.max() <= 4.0 + 1e-12

    def test_matches_numerical_optimizer(self):
        rng = np.random.default_rng(1)
        coeffs = np.exp(rng.normal(0, 0.5, 10))
        c = -0.8
        target = 0.4
        ours = optimal_error_bounds(coeffs, target, c, constraint="rms", clamp_factor=100.0)

        def objective(ebs):
            return float(np.sum(coeffs * np.maximum(ebs, 1e-9) ** c))

        cons = {"type": "eq", "fun": lambda ebs: np.mean(ebs**2) - target**2}
        res = sopt.minimize(
            objective,
            np.full(10, target),
            constraints=[cons],
            bounds=[(1e-6, 100)] * 10,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-14},
        )
        assert objective(ours) <= objective(res.x) * (1 + 1e-6)

    def test_rejects_weights(self):
        with pytest.raises(ValueError, match="weights"):
            optimal_error_bounds(
                np.ones(3), 1.0, -0.5, weights=np.ones(3), constraint="rms"
            )

    def test_rejects_unknown_constraint(self):
        with pytest.raises(ValueError, match="constraint"):
            optimal_error_bounds(np.ones(3), 1.0, -0.5, constraint="l1")


class TestSettingsIntegration:
    def test_constraint_mode_flows_through_optimizer(self):
        feats = [
            PartitionFeatures(rank=i, n_cells=4096, mean_abs=m)
            for i, m in enumerate([0.1, 1.0, 10.0, 100.0])
        ]
        model = RateModel(exponent=-0.7, coef_alpha=0.0, coef_beta=0.5)
        paper = optimize_for_spectrum(
            feats, model, 0.5, OptimizerSettings(constraint_mode="paper")
        )
        rms = optimize_for_spectrum(
            feats, model, 0.5, OptimizerSettings(constraint_mode="rms")
        )
        assert paper.eb_mean == pytest.approx(0.5, rel=1e-9)
        assert float(np.sqrt(np.mean(rms.ebs**2))) == pytest.approx(0.5, rel=1e-9)
        # RMS mode keeps the mean *below* the target (Cauchy-Schwarz), so
        # its realized FFT damage is never above the paper mode's.
        assert rms.ebs.mean() <= 0.5 + 1e-12