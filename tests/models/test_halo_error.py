"""Halo-finder error model (Eqs. 11-14) against direct simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.sz import SZCompressor
from repro.models.halo_error import (
    FAULT_PROBABILITY,
    boundary_cell_count,
    effective_cell_rate,
    expected_fault_cells,
    fault_cell_sigma,
    halo_mass_error_budget,
)


class TestBoundaryCells:
    def test_exact_count(self):
        rho = np.zeros((4, 4, 4))
        rho[0, 0, 0] = 10.0  # inside (t-eb, t+eb) for t=10.5, eb=1
        rho[0, 0, 1] = 11.0
        rho[0, 0, 2] = 12.0  # outside
        assert boundary_cell_count(rho, 10.5, 1.0) == 2

    def test_open_interval(self):
        rho = np.full((2, 2, 2), 9.0)
        # Exactly at the edge of (t-eb, t+eb) is excluded.
        assert boundary_cell_count(rho, 10.0, 1.0) == 0

    def test_rate_linearity(self, snapshot):
        """§4.2: n_bc(eb) ~ rate * eb (locally flat histogram)."""
        rho = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(rho, 99.0))
        n1 = boundary_cell_count(rho, tb, 0.5)
        n2 = boundary_cell_count(rho, tb, 1.0)
        assert n2 == pytest.approx(2 * n1, rel=0.4)

    def test_effective_rate_definition(self, snapshot):
        rho = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(rho, 99.0))
        rate = effective_cell_rate(rho, tb, reference_eb=1.0)
        assert rate == boundary_cell_count(rho, tb, 1.0)


class TestFaultModel:
    def test_eq13(self):
        assert expected_fault_cells(100.0) == 25.0

    def test_eq14(self):
        assert fault_cell_sigma(300.0) == pytest.approx(10.0)

    def test_eq11_budget(self):
        rates = np.array([10.0, 20.0])
        ebs = np.array([0.5, 0.25])
        budget = halo_mass_error_budget(88.0, rates, ebs)
        expected = 88.0 * 0.25 * (10 * 0.5 + 20 * 0.25)
        assert budget == pytest.approx(expected)

    def test_budget_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            halo_mass_error_budget(1.0, np.ones(2), np.ones(3))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="fault_probability"):
            expected_fault_cells(10.0, fault_probability=1.5)

    def test_fault_probability_empirical(self):
        """Eq. 12: a cell within eb of the threshold flips w.p. 1/4.

        Monte Carlo: value u ~ U(t, t+eb) (above threshold), error
        e ~ U(-eb, eb); flip iff u + e < t.  By symmetry the same holds
        below the threshold.
        """
        rng = np.random.default_rng(0)
        t, eb, n = 100.0, 1.0, 400_000
        u = rng.uniform(t, t + eb, n)
        e = rng.uniform(-eb, eb, n)
        p = np.mean(u + e < t)
        assert p == pytest.approx(FAULT_PROBABILITY, abs=0.01)

    def test_candidate_flips_against_real_compressor(self, snapshot):
        """Fig. 8: predicted flipped-cell count tracks the measured count."""
        rho = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(rho, 97.0))
        eb = 1.0
        comp = SZCompressor()
        recon = comp.decompress(comp.compress(rho, eb))
        flipped = np.count_nonzero((rho > tb) != (recon > tb))
        predicted = expected_fault_cells(boundary_cell_count(rho, tb, eb))
        assert predicted > 10  # enough statistics for the comparison
        # Both directions flip; total flips ~ 2 * one-sided expectation.
        # Deterministic quantization on smooth fields flips somewhat fewer
        # cells than the independent-error model; same order is the claim.
        assert 0.3 * 2 * predicted <= flipped <= 2.5 * 2 * predicted
