"""FFT error propagation model (Eqs. 4-10) against Monte Carlo truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectrum import power_spectrum, spectrum_ratio
from repro.models.fft_error import (
    dft_error_sigma,
    mixed_partition_sigma,
    predicted_spectrum_distortion,
    spectrum_ratio_tolerance_to_eb,
    sub_threshold_power_estimate,
)


class TestDftSigma:
    def test_eq8_formula(self):
        assert dft_error_sigma(1000, 0.5) == pytest.approx(np.sqrt(1000 / 6) * 0.5)

    def test_scales_sqrt_n(self):
        """The paper's observation: larger grids are less error-tolerant."""
        assert dft_error_sigma(8_000_000, 1.0) == pytest.approx(
            2.0 * dft_error_sigma(2_000_000, 1.0)
        )

    def test_monte_carlo_1d(self):
        """Inject U[-eb, eb] noise; DFT component std must match Eq. 8."""
        rng = np.random.default_rng(0)
        n, eb, trials = 4096, 1.0, 200
        reals = np.empty(trials)
        k = 17
        phase = np.exp(-2j * np.pi * k * np.arange(n) / n)
        for t in range(trials):
            noise = rng.uniform(-eb, eb, n)
            reals[t] = (noise * phase).sum().real
        assert reals.std() == pytest.approx(dft_error_sigma(n, eb), rel=0.15)

    def test_monte_carlo_3d(self):
        """Eq. 9 in 3-D with a full FFT."""
        rng = np.random.default_rng(1)
        shape = (16, 16, 16)
        eb = 0.7
        samples = []
        for _ in range(50):
            noise = rng.uniform(-eb, eb, shape)
            fk = np.fft.fftn(noise)
            samples.append(fk[3, 2, 1].real)
        expected = dft_error_sigma(int(np.prod(shape)), eb)
        assert np.std(samples) == pytest.approx(expected, rel=0.3)

    def test_custom_std_factor(self):
        """Revised error distributions plug in through std_factor (§3.5)."""
        narrower = dft_error_sigma(1000, 1.0, std_factor=0.3)
        assert narrower < dft_error_sigma(1000, 1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="n_elements"):
            dft_error_sigma(0, 1.0)
        with pytest.raises(ValueError, match="eb"):
            dft_error_sigma(10, -1.0)


class TestMixedPartitions:
    def test_equal_bounds_match_single(self):
        ebs = np.full(8, 0.5)
        assert mixed_partition_sigma(4096, ebs, "paper") == pytest.approx(
            dft_error_sigma(4096, 0.5)
        )
        assert mixed_partition_sigma(4096, ebs, "rms") == pytest.approx(
            dft_error_sigma(4096, 0.5)
        )

    def test_rms_exceeds_paper_for_spread_bounds(self):
        """Eq. 10's linear average slightly underestimates the exact RMS."""
        ebs = np.array([0.25, 0.25, 1.0, 1.0])
        assert mixed_partition_sigma(1000, ebs, "rms") > mixed_partition_sigma(
            1000, ebs, "paper"
        )

    def test_close_under_clamped_spread(self):
        """Within the optimizer's 4x clamp the two modes agree within ~15%."""
        rng = np.random.default_rng(2)
        ebs = np.exp(rng.uniform(np.log(0.25), np.log(4.0), 512))
        paper = mixed_partition_sigma(10**6, ebs, "paper")
        rms = mixed_partition_sigma(10**6, ebs, "rms")
        assert rms / paper < 1.35

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            mixed_partition_sigma(10, np.ones(2), "median")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            mixed_partition_sigma(10, np.array([0.5, -1.0]))


class TestSpectrumDistortion:
    def test_prediction_matches_injected_noise(self, snapshot):
        """End-to-end: predicted P(k) ratio bound covers the measured ratio."""
        data = snapshot["temperature"].astype(np.float64)
        eb = 5.0
        rng = np.random.default_rng(3)
        noisy = data + rng.uniform(-eb, eb, data.shape)
        ps = power_spectrum(data)
        k, ratio = spectrum_ratio(data, noisy)
        pred = predicted_spectrum_distortion(ps, data.size, eb, confidence_z=3.0)
        mask = ps.k < 10
        assert (np.abs(ratio[mask] - 1.0) <= pred[mask]).mean() >= 0.85

    def test_monotone_in_eb(self, snapshot):
        ps = power_spectrum(snapshot["temperature"].astype(np.float64))
        n = snapshot["temperature"].size
        d1 = predicted_spectrum_distortion(ps, n, 1.0).max()
        d2 = predicted_spectrum_distortion(ps, n, 2.0).max()
        assert d2 > d1

    def test_sub_threshold_term_increases_prediction(self, snapshot):
        ps = power_spectrum(snapshot["baryon_density"].astype(np.float64))
        n = snapshot["baryon_density"].size
        base = predicted_spectrum_distortion(ps, n, 0.5).max()
        corrected = predicted_spectrum_distortion(
            ps, n, 0.5, sub_threshold_power=0.1
        ).max()
        assert corrected > base


class TestToleranceInversion:
    def test_round_trips_through_prediction(self, snapshot):
        data = snapshot["temperature"].astype(np.float64)
        ps = power_spectrum(data)
        eb = spectrum_ratio_tolerance_to_eb(ps, data.size, tolerance=0.01, k_max=10)
        mask = ps.k < 10
        sub = type(ps)(k=ps.k[mask], power=ps.power[mask], n_modes=ps.n_modes[mask])
        worst = predicted_spectrum_distortion(sub, data.size, eb).max()
        assert worst == pytest.approx(0.01, rel=0.05)

    def test_tighter_tolerance_smaller_eb(self, snapshot):
        data = snapshot["temperature"].astype(np.float64)
        ps = power_spectrum(data)
        eb_tight = spectrum_ratio_tolerance_to_eb(ps, data.size, tolerance=0.001)
        eb_loose = spectrum_ratio_tolerance_to_eb(ps, data.size, tolerance=0.05)
        assert eb_tight < eb_loose

    def test_sub_power_fn_shrinks_budget(self, snapshot):
        data = snapshot["baryon_density"].astype(np.float64)
        ps = power_spectrum(data)
        plain = spectrum_ratio_tolerance_to_eb(ps, data.size, tolerance=0.02)
        corrected = spectrum_ratio_tolerance_to_eb(
            ps,
            data.size,
            tolerance=0.02,
            sub_power_fn=lambda eb: sub_threshold_power_estimate(data, eb, stride=2),
        )
        assert corrected <= plain

    def test_rejects_bad_tolerance(self, snapshot):
        ps = power_spectrum(snapshot["temperature"].astype(np.float64))
        with pytest.raises(ValueError, match="tolerance"):
            spectrum_ratio_tolerance_to_eb(ps, 100, tolerance=0.0)


class TestSubThresholdEstimate:
    def test_zero_for_tiny_eb(self, snapshot):
        data = snapshot["baryon_density"].astype(np.float64)
        assert sub_threshold_power_estimate(data, 1e-12) == 0.0

    def test_grows_with_eb(self, snapshot):
        data = snapshot["baryon_density"].astype(np.float64)
        vals = [sub_threshold_power_estimate(data, eb) for eb in (0.01, 0.1, 1.0)]
        assert vals[0] <= vals[1] <= vals[2]

    def test_saturates_at_field_power(self, snapshot):
        data = snapshot["baryon_density"].astype(np.float64)
        huge = sub_threshold_power_estimate(data, 1e9, stride=1)
        assert huge == pytest.approx(np.mean(data**2))
