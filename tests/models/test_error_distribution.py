"""SZ error-distribution models vs the real compressor (Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.sz import SZCompressor
from repro.models.error_distribution import (
    RevisedUniformErrorModel,
    UniformErrorModel,
    empirical_error_model,
)


class TestUniformModel:
    def test_std_factor(self):
        assert UniformErrorModel().std_factor == pytest.approx(np.sqrt(1 / 3))

    def test_std_scales_with_eb(self):
        m = UniformErrorModel()
        assert m.std(2.0) == pytest.approx(2 * m.std(1.0))

    def test_fault_probability_quarter(self):
        assert UniformErrorModel().fault_probability() == 0.25

    def test_samples_bounded_and_flat(self):
        rng = np.random.default_rng(0)
        s = UniformErrorModel().sample(0.5, 100_000, rng)
        assert np.abs(s).max() <= 0.5
        assert s.std() == pytest.approx(0.5 / np.sqrt(3), rel=0.02)


class TestRevisedModel:
    def test_std_below_uniform(self):
        """Mixing in the narrower normal component reduces the spread."""
        m = RevisedUniformErrorModel(normal_weight=0.5, normal_sigma_factor=0.3)
        assert m.std_factor < UniformErrorModel().std_factor

    def test_zero_weight_recovers_uniform(self):
        m = RevisedUniformErrorModel(normal_weight=0.0)
        assert m.std_factor == pytest.approx(UniformErrorModel().std_factor)
        assert m.fault_probability() == pytest.approx(0.25, abs=1e-6)

    def test_samples_bounded(self):
        rng = np.random.default_rng(1)
        m = RevisedUniformErrorModel()
        s = m.sample(1.0, 50_000, rng)
        assert np.abs(s).max() <= 1.0
        assert s.std() == pytest.approx(m.std_factor, rel=0.03)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="normal_weight"):
            RevisedUniformErrorModel(normal_weight=1.5)


class TestAgainstRealCompressor:
    def test_error_is_uniform_like(self, snapshot):
        """Fig. 3: SZ error over the temperature field ~ U[-eb, eb]."""
        data = snapshot["temperature"].astype(np.float64)
        eb = 10.0
        comp = SZCompressor()
        recon = comp.decompress(comp.compress(data, eb))
        mean, std = empirical_error_model(data, recon, eb)
        assert abs(mean) < 0.05
        assert std == pytest.approx(np.sqrt(1 / 3), rel=0.10)

    def test_error_histogram_flat(self, snapshot):
        data = snapshot["temperature"].astype(np.float64)
        eb = 10.0
        comp = SZCompressor()
        recon = comp.decompress(comp.compress(data, eb))
        err = (recon - data) / eb
        counts, _ = np.histogram(err, bins=10, range=(-1, 1))
        # Every decile occupied, none dominating (uniform within 2x).
        assert counts.min() > 0
        assert counts.max() / counts.min() < 2.0

    def test_classic_engine_also_uniform(self, snapshot):
        """§3.2: CPU-SZ and GPU-SZ orderings share the uniform error law."""
        data = snapshot["temperature"].astype(np.float64)[:10, :10, :10]
        eb = 10.0
        comp = SZCompressor(engine="classic")
        recon = comp.decompress(comp.compress(data, eb))
        _, std = empirical_error_model(data, recon, eb)
        assert std == pytest.approx(np.sqrt(1 / 3), rel=0.25)
