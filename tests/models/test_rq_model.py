"""The closed-form ratio-quality engine: predictions vs measurements.

Three property families pin the model down:

- predicted PSNR is monotonically non-increasing in the error bound
  (more allowed error can never *improve* predicted fidelity),
- predicted PSNR agrees with the measured PSNR of the real
  compress→decompress pipeline within the model's tolerance band,
  across dtypes and shapes,
- ``probe_mode="model"`` fails loudly (capability error) on compressors
  that cannot supply quantization statistics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import error_summary
from repro.compression.api import UnsupportedCapabilityError
from repro.compression.estimator import (
    RQEstimate,
    predicted_nrmse,
    predicted_psnr_db,
    predicted_quantization_mse,
)
from repro.compression.sz import SZCompressor
from repro.core.baselines import TrialAndErrorSearch
from repro.core.selection import select_compressor
from repro.foresight.quality import QualityCriteria
from repro.foresight.sweep import run_sweep
from repro.models.calibration import calibrate_rate_model
from repro.models.rq_model import RQModel, RQPrediction
from repro.parallel.decomposition import BlockDecomposition


def _smooth_field(seed: int, shape=(16, 16, 16), dtype=np.float64) -> np.ndarray:
    """A compressible positive field: broad correlations + mild noise."""
    rng = np.random.default_rng(seed)
    base = rng.normal(1.0, 0.25, shape)
    k = np.ones((3,) * len(shape)) / 3 ** len(shape)
    try:
        from scipy.ndimage import convolve

        base = convolve(base, k, mode="wrap")
    except ImportError:  # pragma: no cover - scipy is a baked-in dep
        pass
    return (base + 2.0).astype(dtype)


class TestPredictionHelpers:
    def test_mse_formula(self):
        # 10% outliers stored exactly: MSE = 0.9 * eb^2 / 3
        assert predicted_quantization_mse(100, 10, 0.3) == pytest.approx(
            0.9 * 0.09 / 3.0
        )

    def test_mse_validates(self):
        with pytest.raises(ValueError):
            predicted_quantization_mse(0, 0, 0.1)
        with pytest.raises(ValueError):
            predicted_quantization_mse(10, 11, 0.1)

    def test_psnr_nrmse_degenerate(self):
        assert predicted_psnr_db(0.0, 1.0) == np.inf
        assert predicted_nrmse(0.0, 1.0) == 0.0
        with pytest.raises(ValueError):
            predicted_psnr_db(-1.0, 1.0)

    @given(
        eb=st.floats(1e-6, 1.0),
        frac=st.floats(0.0, 1.0),
        rng=st.floats(0.5, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_psnr_consistent_with_nrmse(self, eb, frac, rng):
        mse = predicted_quantization_mse(1000, int(1000 * frac), eb)
        psnr = predicted_psnr_db(mse, rng)
        nr = predicted_nrmse(mse, rng)
        if mse > 0:
            assert psnr == pytest.approx(-20.0 * np.log10(nr))


class TestRQEstimate:
    def test_estimate_returns_rq(self):
        data = _smooth_field(0)
        est = SZCompressor().estimate(data, 1e-3)
        assert isinstance(est, RQEstimate)
        assert est.predicted_psnr_db > 0
        assert 0 <= est.predicted_nrmse < 1
        assert est.eb == 1e-3

    def test_estimate_many_matches_estimate(self):
        comp = SZCompressor()
        views = [_smooth_field(s) for s in range(3)]
        ebs = [1e-3, 5e-3, 2e-2]
        many = comp.estimate_many(views, ebs)
        for v, eb, got in zip(views, ebs, many):
            single = comp.estimate(v, eb)
            assert got.est_nbytes == single.est_nbytes
            assert got.predicted_mse == single.predicted_mse

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_predicted_psnr_monotone_in_eb(self, seed):
        """More allowed error never improves predicted fidelity."""
        data = _smooth_field(seed)
        comp = SZCompressor()
        ebs = [1e-4, 1e-3, 1e-2, 1e-1]
        psnrs = [
            e.predicted_psnr_db
            for e in comp.estimate_many([data] * len(ebs), ebs)
        ]
        assert all(a >= b for a, b in zip(psnrs, psnrs[1:]))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(4096,), (64, 64), (16, 16, 16)])
    def test_predicted_matches_measured_psnr(self, dtype, shape):
        """The uniform-error model lands within ~1 dB of measurement."""
        data = _smooth_field(7, shape=shape, dtype=dtype)
        comp = SZCompressor()
        for eb in (1e-3, 1e-2):
            est = comp.estimate(data, eb)
            block = comp.compress(data, eb)
            measured = error_summary(data, comp.decompress(block))
            assert est.predicted_psnr_db == pytest.approx(
                measured.psnr_db, abs=1.0
            )
            assert est.ratio == pytest.approx(block.ratio, rel=0.15)


class TestRQModel:
    def test_prediction_shape(self):
        data = _smooth_field(1)
        crit = QualityCriteria(spectrum_tolerance=0.01, spectrum_k_max=6)
        model = RQModel(data, crit, field="d")
        pred = model.probe(SZCompressor(), [data], 1e-3)
        assert isinstance(pred, RQPrediction)
        assert pred.field == "d"
        report = pred.to_quality_report()
        assert report.passed == pred.passed
        assert report.psnr_db == pred.predicted_psnr_db
        d = pred.to_dict()
        assert d["eb"] == 1e-3 and d["passed"] == pred.passed

    def test_spectrum_verdict_monotone(self):
        data = _smooth_field(2)
        crit = QualityCriteria(spectrum_tolerance=0.01, spectrum_k_max=6)
        model = RQModel(data, crit)
        devs = [model.predicted_spectrum_deviation(eb) for eb in (1e-4, 1e-2, 1.0)]
        assert devs[0] < devs[1] < devs[2]

    def test_halo_verdict_present_when_checked(self):
        data = _smooth_field(3)
        data[4:9, 4:9, 4:9] += 10.0  # one dense blob: a guaranteed halo
        t = float(np.percentile(data, 90.0))
        crit = QualityCriteria(
            spectrum_tolerance=0.05, spectrum_k_max=6, check_halos=True, t_boundary=t
        )
        model = RQModel(data, crit)
        pred = model.probe(SZCompressor(), [data], 1e-4)
        assert pred.halo_ok is not None
        assert pred.halo_mass_fraction is not None and pred.halo_mass_fraction >= 0

    def test_near_boundary_band(self):
        data = _smooth_field(4)
        crit = QualityCriteria(spectrum_tolerance=0.01, spectrum_k_max=6)
        model = RQModel(data, crit)
        inside = RQPrediction(
            field="d", eb=1.0, predicted_bit_rate=1.0, predicted_ratio=1.0,
            predicted_mse=0.0, predicted_psnr_db=np.inf, predicted_nrmse=0.0,
            spectrum_worst_deviation=0.011, spectrum_ok=False,
        )
        far = RQPrediction(
            field="d", eb=1.0, predicted_bit_rate=1.0, predicted_ratio=1.0,
            predicted_mse=0.0, predicted_psnr_db=np.inf, predicted_nrmse=0.0,
            spectrum_worst_deviation=1e-6, spectrum_ok=True,
        )
        assert inside.near_boundary(model.criteria)
        assert not far.near_boundary(model.criteria)


class TestCapabilityGates:
    """probe_mode="model" must refuse compressors with no statistics."""

    def test_calibration_rejects(self):
        parts = [_smooth_field(s) for s in range(2)]
        with pytest.raises(UnsupportedCapabilityError, match="supports_estimate"):
            calibrate_rate_model(
                parts, "sz_adaptive", eb_scale=1e-2, probe_mode="model"
            )

    def test_sweep_rejects(self):
        data = _smooth_field(5)
        with pytest.raises(UnsupportedCapabilityError, match="supports_estimate"):
            run_sweep(
                {"d": data}, [1e-3], {}, compressor="sz_adaptive", probe_mode="model"
            )

    def test_selection_rejects(self):
        data = _smooth_field(6)
        dec = BlockDecomposition(data.shape, (2, 2, 2))
        with pytest.raises(UnsupportedCapabilityError, match="supports_estimate"):
            select_compressor(
                data, dec, candidates=["sz_adaptive"], probe_mode="model",
                eb_avg=1e-2,
            )

    def test_trial_search_rejects(self):
        crit = QualityCriteria(spectrum_tolerance=0.01, spectrum_k_max=6)
        with pytest.raises(UnsupportedCapabilityError, match="supports_estimate"):
            TrialAndErrorSearch(
                criteria=crit, compressor="sz_adaptive", probe_mode="model"
            )

    def test_trial_search_needs_criteria(self):
        with pytest.raises(ValueError, match="criteria"):
            TrialAndErrorSearch(
                quality_check=lambda a, b: (True, 0.0), probe_mode="model"
            )

    def test_unknown_modes_rejected(self):
        data = _smooth_field(8)
        dec = BlockDecomposition(data.shape, (2, 2, 2))
        with pytest.raises(ValueError, match="probe_mode"):
            select_compressor(data, dec, probe_mode="psychic", eb_avg=1e-2)
        with pytest.raises(ValueError, match="confirm"):
            run_sweep({"d": data}, [1e-3], {}, confirm="sometimes")
        with pytest.raises(ValueError, match="confirm"):
            run_sweep({"d": data}, [1e-3], {}, probe_mode="exact", confirm="always")
