"""Rate model fitting and the closed-form optimizer (Eqs. 15-16)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import optimize as sopt

from repro.models.rate_model import RateModel, fit_power_law, optimal_error_bounds


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        ebs = np.array([0.1, 0.3, 1.0, 3.0])
        c_true, coef_true = -0.8, 2.5
        rates = coef_true * ebs**c_true
        coef, c, r2 = fit_power_law(ebs, rates)
        assert coef == pytest.approx(coef_true)
        assert c == pytest.approx(c_true)
        assert r2 == pytest.approx(1.0)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(0)
        ebs = np.logspace(-1, 1, 10)
        rates = 3.0 * ebs**-0.6 * np.exp(rng.normal(0, 0.05, 10))
        _, c, r2 = fit_power_law(ebs, rates)
        assert c == pytest.approx(-0.6, abs=0.1)
        assert r2 > 0.9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0, -2.0]))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="two samples"):
            fit_power_law(np.array([1.0]), np.array([1.0]))


class TestRateModel:
    def _model(self) -> RateModel:
        return RateModel(exponent=-0.7, coef_alpha=0.5, coef_beta=0.4)

    def test_coefficient_monotone_in_mean(self):
        m = self._model()
        assert m.predict_coefficient(10.0) > m.predict_coefficient(1.0)

    def test_bitrate_decreases_with_eb(self):
        m = self._model()
        assert m.predict_bitrate(1.0, 2.0) < m.predict_bitrate(1.0, 1.0)

    def test_marginal_cost_negative(self):
        m = self._model()
        assert (m.marginal_bit_cost(np.array([1.0, 5.0]), 0.5) < 0).all()

    def test_rejects_positive_exponent(self):
        with pytest.raises(ValueError, match="negative"):
            RateModel(exponent=0.5, coef_alpha=0.0, coef_beta=0.0)

    def test_feature_floor_protects_log(self):
        m = self._model()
        assert np.isfinite(m.predict_coefficient(0.0))


class TestOptimalErrorBounds:
    def test_uniform_coefficients_give_uniform_bounds(self):
        ebs = optimal_error_bounds(np.full(16, 3.0), 0.5, -0.7)
        assert np.allclose(ebs, 0.5)

    def test_mean_constraint_exact(self):
        rng = np.random.default_rng(1)
        coeffs = np.exp(rng.normal(0, 0.5, 64))
        ebs = optimal_error_bounds(coeffs, 0.25, -0.8)
        assert ebs.mean() == pytest.approx(0.25, rel=1e-9)

    def test_harder_partitions_get_larger_bounds(self):
        """§3.1: sacrifice quality on low-compressibility partitions."""
        coeffs = np.array([1.0, 2.0, 4.0])
        ebs = optimal_error_bounds(coeffs, 1.0, -0.5)
        assert ebs[0] < ebs[1] < ebs[2]

    def test_clamp_respected(self):
        coeffs = np.array([1e-3, 1.0, 1e3])
        ebs = optimal_error_bounds(coeffs, 1.0, -0.5, clamp_factor=4.0)
        assert ebs.min() >= 0.25 - 1e-12
        assert ebs.max() <= 4.0 + 1e-12

    def test_matches_numerical_optimizer(self):
        """The closed form must beat/match scipy on the true objective."""
        rng = np.random.default_rng(2)
        coeffs = np.exp(rng.normal(0, 0.6, 12))
        c = -0.7
        eb_avg = 0.5
        ours = optimal_error_bounds(coeffs, eb_avg, c, clamp_factor=100.0)

        def objective(ebs):
            return float(np.sum(coeffs * np.maximum(ebs, 1e-12) ** c))

        cons = {"type": "eq", "fun": lambda ebs: ebs.mean() - eb_avg}
        x0 = np.full(12, eb_avg)
        res = sopt.minimize(
            objective,
            x0,
            constraints=[cons],
            bounds=[(1e-6, 100)] * 12,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-14},
        )
        assert objective(ours) <= objective(res.x) * (1 + 1e-6)

    def test_weighted_constraint(self):
        """Halo weights: heavily-weighted partitions get smaller bounds."""
        coeffs = np.full(3, 2.0)
        weights = np.array([1.0, 4.0, 16.0])
        ebs = optimal_error_bounds(coeffs, 0.5, -0.7, weights=weights, clamp_factor=50)
        assert ebs[0] > ebs[1] > ebs[2]
        # Weighted constraint holds: sum(w*eb) = sum(w)*eb_avg.
        assert np.sum(weights * ebs) == pytest.approx(weights.sum() * 0.5, rel=1e-6)

    def test_bitrate_never_worse_than_static(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            coeffs = np.exp(rng.normal(0, 1.0, 32))
            c = rng.uniform(-1.2, -0.3)
            ebs = optimal_error_bounds(coeffs, 1.0, c)
            adaptive = np.mean(coeffs * ebs**c)
            static = np.mean(coeffs * 1.0**c)
            assert adaptive <= static * (1 + 1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="coefficients"):
            optimal_error_bounds(np.array([]), 1.0, -0.5)
        with pytest.raises(ValueError, match="positive"):
            optimal_error_bounds(np.array([1.0, -1.0]), 1.0, -0.5)
        with pytest.raises(ValueError, match="exponent"):
            optimal_error_bounds(np.ones(2), 1.0, 0.5)
        with pytest.raises(ValueError, match="clamp_factor"):
            optimal_error_bounds(np.ones(2), 1.0, -0.5, clamp_factor=0.5)

    def test_simultaneous_lo_hi_clamping_keeps_constraint(self):
        """Pinned regression: one dominant coefficient pushes the
        proportional seed above the clamp ceiling while every other
        partition lands below the floor.  An iterative clamp-and-rescale
        water-fill sees "everything clamped" and freezes at mean 0.875,
        silently under-using the budget; the bisection water-fill must
        raise the small partitions off the floor instead."""
        coeffs = np.array([1.0, 1.0, 1.0, 1.0, 1.0, 40.0])
        ebs = optimal_error_bounds(coeffs, 1.0, -0.25, clamp_factor=4.0)
        assert ebs.mean() == pytest.approx(1.0, rel=1e-12)
        np.testing.assert_allclose(ebs, [0.4, 0.4, 0.4, 0.4, 0.4, 4.0], rtol=1e-12)

    def test_simultaneous_lo_hi_clamping_rms(self):
        """Same pathological input class under the quadratic constraint."""
        coeffs = np.array([1.0, 1.0, 1.0, 1.0, 1.0, 40.0])
        ebs = optimal_error_bounds(
            coeffs, 1.0, -0.25, clamp_factor=4.0, constraint="rms"
        )
        assert np.sqrt((ebs**2).mean()) == pytest.approx(1.0, rel=1e-12)
        assert (ebs >= 0.25 - 1e-12).all() and (ebs <= 4.0 + 1e-12).all()
        assert ebs[:5].min() > 0.25  # floor entries lifted, not frozen

    @given(
        st.lists(st.floats(0.01, 100.0), min_size=2, max_size=50),
        st.floats(-1.5, -0.1),
        st.floats(0.01, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_constraint_and_clamp_properties(self, coeffs, c, eb_avg):
        coeffs = np.array(coeffs)
        ebs = optimal_error_bounds(coeffs, eb_avg, c, clamp_factor=4.0)
        assert (ebs >= eb_avg / 4.0 - 1e-9).all()
        assert (ebs <= eb_avg * 4.0 + 1e-9).all()
        # Mean constraint holds whenever it is feasible inside the clamp
        # box (it always is, since eb_avg itself is feasible).
        assert ebs.mean() == pytest.approx(eb_avg, rel=1e-6)
