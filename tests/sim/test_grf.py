"""Gaussian random field synthesis: statistics and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectrum import power_spectrum
from repro.sim.grf import gaussian_random_field, wavenumber_grid


class TestWavenumberGrid:
    def test_dc_mode_zero(self):
        k = wavenumber_grid((8, 8, 8), box_size=1.0)
        assert k[0, 0, 0] == 0.0

    def test_fundamental_mode(self):
        k = wavenumber_grid((8, 8, 8), box_size=2.0)
        assert k[1, 0, 0] == pytest.approx(2 * np.pi / 2.0)

    def test_symmetry(self):
        k = wavenumber_grid((8, 8, 8))
        assert k[1, 0, 0] == pytest.approx(k[7, 0, 0])

    def test_rejects_bad_box(self):
        with pytest.raises(ValueError, match="box_size"):
            wavenumber_grid((4, 4, 4), box_size=0.0)


class TestGRF:
    def test_zero_mean(self):
        f = gaussian_random_field((16, 16, 16), lambda k: np.ones_like(k), seed=0)
        assert abs(f.mean()) < 1e-12

    def test_target_sigma(self):
        f = gaussian_random_field(
            (16, 16, 16), lambda k: np.ones_like(k), seed=0, target_sigma=2.5
        )
        assert f.std() == pytest.approx(2.5)

    def test_deterministic(self):
        f1 = gaussian_random_field((8, 8, 8), lambda k: np.ones_like(k), seed=42)
        f2 = gaussian_random_field((8, 8, 8), lambda k: np.ones_like(k), seed=42)
        assert np.array_equal(f1, f2)

    def test_different_seeds_differ(self):
        f1 = gaussian_random_field((8, 8, 8), lambda k: np.ones_like(k), seed=1)
        f2 = gaussian_random_field((8, 8, 8), lambda k: np.ones_like(k), seed=2)
        assert not np.allclose(f1, f2)

    def test_phases_fixed_amplitude_scales(self):
        """Same seed, scaled spectrum: identical field up to amplitude."""
        pk1 = lambda k: np.ones_like(k)  # noqa: E731
        pk4 = lambda k: 4.0 * np.ones_like(k)  # noqa: E731
        f1 = gaussian_random_field((8, 8, 8), pk1, seed=9)
        f2 = gaussian_random_field((8, 8, 8), pk4, seed=9)
        assert np.allclose(f2, 2.0 * f1)

    def test_spectrum_shape_recovered(self):
        """A red spectrum should put most power at small k."""
        steep = lambda k: np.where(k > 0, np.maximum(k, 1e-9) ** -2.0, 0.0)  # noqa: E731
        f = gaussian_random_field((32, 32, 32), steep, seed=3, target_sigma=1.0)
        ps = power_spectrum(f)
        assert ps.power[0] > 10 * ps.power[8]

    def test_white_spectrum_is_flat(self):
        f = gaussian_random_field(
            (32, 32, 32), lambda k: np.ones_like(k), seed=4, target_sigma=1.0
        )
        ps = power_spectrum(f)
        # All bins should agree within mode-count noise.
        assert ps.power.max() / ps.power.min() < 2.0

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError, match="non-negative"):
            gaussian_random_field((8, 8, 8), lambda k: -np.ones_like(k), seed=0)

    def test_rejects_2d_shape(self):
        with pytest.raises(ValueError, match="3-D"):
            gaussian_random_field((8, 8), lambda k: np.ones_like(k), seed=0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="target_sigma"):
            gaussian_random_field(
                (8, 8, 8), lambda k: np.ones_like(k), seed=0, target_sigma=-1.0
            )
