"""Particle sampling from density fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.particles import sample_particles


class TestSampling:
    def test_count_and_bounds(self):
        rho = np.ones((8, 8, 8))
        pos = sample_particles(rho, 5000, box_size=2.0, seed=0)
        assert pos.shape == (5000, 3)
        assert (pos >= 0).all() and (pos < 2.0).all()

    def test_density_proportionality(self):
        rho = np.ones((4, 4, 4))
        rho[0, 0, 0] = 100.0
        pos = sample_particles(rho, 20000, box_size=4.0, seed=1)
        # The hot cell is [0,1)^3 in box units; expect ~100/163 of particles.
        in_cell = ((pos < 1.0).all(axis=1)).mean()
        assert in_cell == pytest.approx(100.0 / 163.0, abs=0.03)

    def test_zero_density_cells_empty(self):
        rho = np.zeros((4, 4, 4))
        rho[3, 3, 3] = 1.0
        pos = sample_particles(rho, 1000, box_size=4.0, seed=2)
        assert (pos >= 3.0).all()

    def test_deterministic(self):
        rho = np.random.default_rng(0).random((6, 6, 6))
        a = sample_particles(rho, 100, seed=9)
        b = sample_particles(rho, 100, seed=9)
        assert np.array_equal(a, b)

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError, match="non-negative"):
            sample_particles(-np.ones((4, 4, 4)), 10)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError, match="zero"):
            sample_particles(np.zeros((4, 4, 4)), 10)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="n_particles"):
            sample_particles(np.ones((4, 4, 4)), 0)
