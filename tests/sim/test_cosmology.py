"""Growth factor and power-spectrum shape sanity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cosmology import (
    Cosmology,
    bbks_transfer,
    growth_factor,
    matter_power_spectrum,
)


class TestCosmology:
    def test_defaults_valid(self):
        c = Cosmology()
        assert 0 < c.omega_m <= 1

    def test_rejects_bad_omega(self):
        with pytest.raises(ValueError, match="omega_m"):
            Cosmology(omega_m=0.0)
        with pytest.raises(ValueError, match="omega_m"):
            Cosmology(omega_m=1.5)

    def test_rejects_bad_h(self):
        with pytest.raises(ValueError, match="h must"):
            Cosmology(h=-1.0)


class TestGrowthFactor:
    def test_normalized_at_z0(self):
        assert growth_factor(0.0) == pytest.approx(1.0)

    def test_monotonically_decreasing_in_z(self):
        z = np.linspace(0, 10, 30)
        d = growth_factor(z)
        assert (np.diff(d) < 0).all()

    def test_matter_domination_limit(self):
        """At high z the universe is matter dominated: D ~ 1/(1+z)."""
        d5 = growth_factor(5.0)
        d10 = growth_factor(10.0)
        assert d5 / d10 == pytest.approx(11.0 / 6.0, rel=0.05)

    def test_rejects_negative_z(self):
        with pytest.raises(ValueError, match="non-negative"):
            growth_factor(-0.5)

    def test_einstein_de_sitter(self):
        """omega_m = 1 gives exactly D = 1/(1+z)."""
        eds = Cosmology(omega_m=1.0, omega_l=0.0)
        assert growth_factor(3.0, eds) == pytest.approx(0.25, rel=1e-6)


class TestTransferFunction:
    def test_unity_at_large_scales(self):
        assert bbks_transfer(np.array([0.0]))[0] == 1.0
        assert bbks_transfer(np.array([1e-6]))[0] == pytest.approx(1.0, rel=1e-3)

    def test_monotonically_decreasing(self):
        k = np.logspace(-3, 2, 50)
        t = bbks_transfer(k)
        assert (np.diff(t) < 0).all()

    def test_small_scale_suppression(self):
        assert bbks_transfer(np.array([100.0]))[0] < 1e-3

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="non-negative"):
            bbks_transfer(np.array([-1.0]))


class TestPowerSpectrum:
    def test_positive(self):
        k = np.logspace(-2, 1, 20)
        assert (matter_power_spectrum(k) > 0).all()

    def test_turnover_exists(self):
        """P(k) rises at large scale, falls at small scale."""
        k = np.logspace(-3, 2, 200)
        p = matter_power_spectrum(k)
        peak = np.argmax(p)
        assert 0 < peak < len(k) - 1

    def test_redshift_scaling_is_growth_squared(self):
        k = np.array([0.1, 1.0])
        p0 = matter_power_spectrum(k, z=0.0)
        p2 = matter_power_spectrum(k, z=2.0)
        d = growth_factor(2.0)
        assert np.allclose(p2 / p0, d**2)

    def test_zero_mode_is_zero(self):
        assert matter_power_spectrum(np.array([0.0]))[0] == 0.0
