"""Snapshot container round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.io import load_snapshot, peek_snapshot_shape, save_snapshot
from repro.sim.nyx import FIELD_NAMES


class TestSnapshotIO:
    def test_round_trip(self, snapshot, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.redshift == snapshot.redshift
        assert loaded.box_size == snapshot.box_size
        for name in FIELD_NAMES:
            assert np.array_equal(loaded[name], snapshot[name])

    def test_meta_preserved(self, snapshot, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.meta["growth_factor"] == pytest.approx(
            snapshot.meta["growth_factor"]
        )

    def test_rejects_non_snapshot_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a snapshot"):
            load_snapshot(path)

    def test_peek_shape_reads_headers_only(self, snapshot, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        assert peek_snapshot_shape(path) == snapshot.shape

    def test_peek_shape_rejects_field_free_container(self, tmp_path):
        path = tmp_path / "meta_only.npz"
        np.savez(path, __redshift=np.array(1.0))
        with pytest.raises(ValueError, match="no field arrays"):
            peek_snapshot_shape(path)

    def test_compressed_on_disk(self, snapshot, tmp_path):
        """The container must actually compress (it stands in for HDF5+filters)."""
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        raw = sum(snapshot[n].nbytes for n in FIELD_NAMES)
        assert path.stat().st_size < raw
