"""Nyx-like snapshot generator: Table 2 properties and redshift evolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.nyx import FIELD_NAMES, FIELD_RANGES, NyxSimulator


class TestSnapshotStructure:
    def test_all_six_fields(self, snapshot):
        assert sorted(snapshot.fields) == sorted(FIELD_NAMES)

    def test_fields_are_float32(self, snapshot):
        for name in FIELD_NAMES:
            assert snapshot[name].dtype == np.float32

    def test_shape_consistent(self, snapshot):
        shapes = {snapshot[name].shape for name in FIELD_NAMES}
        assert shapes == {(32, 32, 32)}

    def test_unknown_field_raises(self, snapshot):
        with pytest.raises(KeyError, match="unknown field"):
            snapshot["entropy"]

    def test_value_ranges_within_table2(self, snapshot):
        for name in FIELD_NAMES:
            lo, hi = FIELD_RANGES[name]
            arr = snapshot[name]
            assert arr.min() >= lo, name
            assert arr.max() <= hi, name

    def test_densities_positive(self, snapshot):
        assert (snapshot["baryon_density"] > 0).all()
        assert (snapshot["dark_matter_density"] > 0).all()


class TestNormalization:
    def test_density_mean_fixed_to_one(self, simulator):
        """§4.3: density means are fixed by the simulation (no allreduce needed)."""
        for z in (0.0, 2.0):
            snap = simulator.snapshot(z=z)
            assert snap["baryon_density"].mean() == pytest.approx(1.0, rel=1e-3)
            assert snap["dark_matter_density"].mean() == pytest.approx(1.0, rel=1e-3)

    def test_temperature_positive_and_plausible(self, snapshot):
        t = snapshot["temperature"]
        assert t.min() >= 1e2
        assert 1e2 < np.median(t) < 1e6


class TestRedshiftEvolution:
    def test_contrast_grows_as_z_drops(self, simulator):
        early = simulator.snapshot(z=4.0)
        late = simulator.snapshot(z=0.0)
        assert late["baryon_density"].max() > early["baryon_density"].max()
        assert late["baryon_density"].std() > early["baryon_density"].std()

    def test_phases_fixed_structures_coherent(self, simulator):
        """Figure 1 behaviour: the same structures evolve through snapshots."""
        a = np.log(simulator.snapshot(z=2.0)["baryon_density"].astype(np.float64))
        b = np.log(simulator.snapshot(z=1.0)["baryon_density"].astype(np.float64))
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.99

    def test_metadata_records_growth(self, simulator):
        snap = simulator.snapshot(z=1.0)
        assert 0 < snap.meta["growth_factor"] < 1
        assert snap.redshift == 1.0


class TestDeterminismAndValidation:
    def test_same_seed_same_snapshot(self):
        s1 = NyxSimulator(shape=(16, 16, 16), seed=5).snapshot(z=1.0)
        s2 = NyxSimulator(shape=(16, 16, 16), seed=5).snapshot(z=1.0)
        for name in FIELD_NAMES:
            assert np.array_equal(s1[name], s2[name])

    def test_different_seed_differs(self):
        s1 = NyxSimulator(shape=(16, 16, 16), seed=5).snapshot(z=1.0)
        s2 = NyxSimulator(shape=(16, 16, 16), seed=6).snapshot(z=1.0)
        assert not np.allclose(s1["baryon_density"], s2["baryon_density"])

    def test_rejects_tiny_shape(self):
        with pytest.raises(ValueError, match="dims >= 4"):
            NyxSimulator(shape=(2, 2, 2))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            NyxSimulator(shape=(8, 8, 8), gamma=1.0)

    def test_rejects_negative_redshift(self, simulator):
        with pytest.raises(ValueError, match="non-negative"):
            simulator.snapshot(z=-1.0)

    def test_velocity_roughly_isotropic(self, snapshot):
        stds = [snapshot[f"velocity_{a}"].std() for a in "xyz"]
        assert max(stds) / min(stds) < 3.0

    def test_partition_heterogeneity_exists(self, snapshot, decomposition):
        """The premise of the paper: partition means span a wide range."""
        views = decomposition.partition_views(snapshot["baryon_density"])
        means = np.array([v.mean() for v in views])
        assert means.max() / means.min() > 2.0

    def test_cached_velocity_grids_match_direct_meshgrid(self):
        """The k-grids precomputed in ``__init__`` reproduce the direct
        per-call meshgrid construction bitwise (anisotropic shape to
        exercise every axis)."""
        from repro.sim.cosmology import growth_factor

        sim = NyxSimulator(shape=(8, 12, 16), box_size=8.0, seed=3)
        k_axes = [
            np.fft.fftfreq(n, d=sim.box_size / n) * 2.0 * np.pi for n in sim.shape
        ]
        grids = np.meshgrid(*k_axes, indexing="ij")
        k2 = sum(g**2 for g in grids)
        k2[0, 0, 0] = 1.0
        for axis in range(3):
            vk = 1j * grids[axis] / k2 * sim._delta_b_fft
            vk[0, 0, 0] = 0.0
            v = np.fft.ifftn(vk).real
            d = growth_factor(0.5, sim.cosmo)
            expected = v * (sim.velocity_scale * d / max(v.std(), 1e-30))
            assert np.array_equal(sim._velocity(0.5, axis), expected)

    def test_velocity_identical_across_snapshots(self):
        sim = NyxSimulator(shape=(8, 8, 8), seed=4)
        a = sim.snapshot(z=1.0)["velocity_y"]
        b = sim.snapshot(z=1.0)["velocity_y"]
        assert np.array_equal(a, b)
