"""Thread-SPMD executor and collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.executor import run_spmd
from repro.parallel.simcomm import CommGroup, ThreadComm


class TestRunSpmd:
    def test_results_in_rank_order(self):
        results = run_spmd(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.size) == [1]

    def test_exception_propagates_with_rank(self):
        def fail_on_two(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 2"):
            run_spmd(4, fail_on_two)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError, match="nranks"):
            run_spmd(0, lambda comm: None)

    def test_extra_args_forwarded(self):
        results = run_spmd(2, lambda comm, a, b=0: a + b + comm.rank, 10, b=5)
        assert results == [15, 16]


class TestCollectives:
    def test_allreduce_sum(self):
        results = run_spmd(5, lambda comm: comm.allreduce(comm.rank + 1, "sum"))
        assert results == [15] * 5

    def test_allreduce_max_min(self):
        assert run_spmd(4, lambda comm: comm.allreduce(comm.rank, "max")) == [3] * 4
        assert run_spmd(4, lambda comm: comm.allreduce(comm.rank, "min")) == [0] * 4

    def test_allgather(self):
        results = run_spmd(3, lambda comm: comm.allgather(comm.rank**2))
        assert results == [[0, 1, 4]] * 3

    def test_bcast_from_root(self):
        def fn(comm):
            value = f"from-{comm.rank}" if comm.rank == 1 else None
            return comm.bcast(value, root=1)

        assert run_spmd(3, fn) == ["from-1"] * 3

    def test_gather_only_root_receives(self):
        results = run_spmd(3, lambda comm: comm.gather(comm.rank, root=0))
        assert results[0] == [0, 1, 2]
        assert results[1] is None and results[2] is None

    def test_successive_collectives_do_not_race(self):
        """Two back-to-back collectives must not cross-contaminate slots."""

        def fn(comm):
            first = comm.allgather(comm.rank)
            second = comm.allgather(comm.rank * 100)
            return first, second

        for first, second in run_spmd(6, fn):
            assert first == list(range(6))
            assert second == [r * 100 for r in range(6)]

    def test_numpy_payloads(self):
        def fn(comm):
            return comm.allreduce(np.ones(4) * comm.rank, "sum")

        results = run_spmd(4, fn)
        assert np.allclose(results[0], np.full(4, 6.0))

    def test_mean_via_allreduce_matches_serial(self):
        """The in situ pattern: global mean from one allreduce."""
        data = np.random.default_rng(0).random(8)

        def fn(comm):
            return comm.allreduce(data[comm.rank], "sum") / comm.size

        assert run_spmd(8, fn)[3] == pytest.approx(data.mean())

    def test_barrier_many_ranks(self):
        def fn(comm):
            for _ in range(5):
                comm.barrier()
            return True

        assert all(run_spmd(8, fn))


class TestThreadCommValidation:
    def test_rank_bounds(self):
        group = CommGroup(2)
        with pytest.raises(ValueError, match="rank"):
            ThreadComm(group, 5)

    def test_group_size_validation(self):
        with pytest.raises(ValueError, match="size"):
            CommGroup(0)

    def test_bcast_root_bounds(self):
        def fn(comm):
            return comm.bcast(1, root=9)

        with pytest.raises(RuntimeError, match="failed"):
            run_spmd(2, fn)
