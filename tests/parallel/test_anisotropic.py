"""Anisotropic decompositions through the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.rate_model import RateModel
from repro.parallel.decomposition import BlockDecomposition


class TestAnisotropicPipeline:
    @pytest.fixture()
    def model(self):
        return RateModel(exponent=-0.7, coef_alpha=0.0, coef_beta=0.3)

    def test_slab_decomposition(self, snapshot, model):
        """1-D slab layout (common for FFT-heavy codes)."""
        dec = BlockDecomposition(snapshot.shape, blocks=(4, 1, 1))
        pipe = AdaptiveCompressionPipeline(model)
        res = pipe.run(snapshot["temperature"], dec, eb_avg=100.0)
        assert len(res.blocks) == 4
        recon = res.reconstruct(dec)
        assert np.max(np.abs(recon - snapshot["temperature"])) <= res.ebs.max() + 1e-6

    def test_pencil_decomposition(self, snapshot, model):
        """2-D pencil layout."""
        dec = BlockDecomposition(snapshot.shape, blocks=(4, 4, 1))
        pipe = AdaptiveCompressionPipeline(model)
        res = pipe.run(snapshot["temperature"], dec, eb_avg=100.0)
        assert len(res.blocks) == 16
        assert res.ebs.mean() == pytest.approx(100.0, rel=1e-6)

    def test_eb_map_matches_block_grid(self, snapshot, model):
        dec = BlockDecomposition(snapshot.shape, blocks=(2, 4, 1))
        pipe = AdaptiveCompressionPipeline(model)
        res = pipe.run(snapshot["temperature"], dec, eb_avg=100.0)
        assert res.eb_map(dec).shape == (2, 4, 1)

    def test_non_cubic_grid(self, model):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 10, (16, 32, 8)).astype(np.float32)
        dec = BlockDecomposition((16, 32, 8), blocks=(2, 4, 2))
        pipe = AdaptiveCompressionPipeline(model)
        res = pipe.run(data, dec, eb_avg=0.1)
        recon = res.reconstruct(dec)
        assert recon.shape == data.shape
        assert np.max(np.abs(recon - data)) <= res.ebs.max() + 1e-9
