"""Block domain decomposition: coverage, views, reassembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.decomposition import BlockDecomposition


class TestLayout:
    def test_counts(self):
        dec = BlockDecomposition((64, 64, 64), blocks=4)
        assert dec.n_partitions == 64
        assert dec.partition_shape == (16, 16, 16)
        assert len(dec) == 64

    def test_anisotropic_blocks(self):
        dec = BlockDecomposition((8, 16, 32), blocks=(2, 4, 8))
        assert dec.n_partitions == 64
        assert dec.partition_shape == (4, 4, 4)

    def test_rank_ordering_row_major(self):
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        assert dec[0].block == (0, 0, 0)
        assert dec[1].block == (0, 0, 1)
        assert dec[7].block == (1, 1, 1)
        for rank, p in enumerate(dec):
            assert p.rank == rank

    def test_rejects_uneven_division(self):
        with pytest.raises(ValueError, match="does not divide"):
            BlockDecomposition((10, 10, 10), blocks=3)

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError, match="blocks"):
            BlockDecomposition((8, 8, 8), blocks=(2, 2))

    def test_rejects_2d_shape(self):
        with pytest.raises(ValueError, match="3-D"):
            BlockDecomposition((8, 8), blocks=2)


class TestViews:
    def test_views_are_views_not_copies(self):
        data = np.zeros((8, 8, 8))
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        views = dec.partition_views(data)
        views[0][0, 0, 0] = 7.0
        assert data[0, 0, 0] == 7.0

    def test_views_cover_disjointly(self):
        data = np.zeros((12, 12, 12))
        dec = BlockDecomposition((12, 12, 12), blocks=3)
        for v in dec.partition_views(data):
            v += 1
        assert (data == 1).all()

    def test_view_shape_matches_partition(self):
        data = np.zeros((8, 16, 24))
        dec = BlockDecomposition((8, 16, 24), blocks=(2, 2, 2))
        for p, v in zip(dec, dec.partition_views(data)):
            assert v.shape == p.shape
            assert p.n_cells == v.size

    def test_shape_mismatch_rejected(self):
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        with pytest.raises(ValueError, match="does not match"):
            dec.partition_views(np.zeros((9, 8, 8)))


class TestAssemble:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        data = rng.random((12, 12, 12))
        dec = BlockDecomposition((12, 12, 12), blocks=(3, 2, 1))
        parts = [v.copy() for v in dec.partition_views(data)]
        assert np.array_equal(dec.assemble(parts), data)

    def test_wrong_count_rejected(self):
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        with pytest.raises(ValueError, match="expected 8"):
            dec.assemble([np.zeros((4, 4, 4))])

    def test_wrong_shape_rejected(self):
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        parts = [np.zeros((4, 4, 4))] * 7 + [np.zeros((2, 2, 2))]
        with pytest.raises(ValueError, match="partition 7"):
            dec.assemble(parts)

    def test_per_partition_map(self):
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        values = np.arange(8.0)
        grid = dec.per_partition_map(values)
        assert grid.shape == (2, 2, 2)
        assert grid[0, 0, 1] == 1.0
        assert grid[1, 1, 1] == 7.0

    def test_map_rejects_wrong_length(self):
        dec = BlockDecomposition((8, 8, 8), blocks=2)
        with pytest.raises(ValueError, match="expected 8"):
            dec.per_partition_map(np.zeros(9))


@given(st.sampled_from([1, 2, 4]), st.sampled_from([4, 8, 16]))
@settings(max_examples=20, deadline=None)
def test_round_trip_property(blocks, size):
    rng = np.random.default_rng(0)
    data = rng.random((size, size, size))
    dec = BlockDecomposition((size, size, size), blocks=blocks)
    parts = [v.copy() for v in dec.partition_views(data)]
    assert np.array_equal(dec.assemble(parts), data)
