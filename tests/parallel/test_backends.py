"""Execution-backend layer: registry, equivalence, timings, batching."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.parallel.backends as backends_mod
from repro.compression.sz import SZCompressor
from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.rate_model import RateModel
from repro.parallel.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SnapshotTask,
    ThreadBackend,
    get_backend,
    register_backend,
)
from repro.parallel.decomposition import BlockDecomposition


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessBackend(max_workers=2)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def rate_model():
    return RateModel(exponent=-0.8, coef_alpha=0.0, coef_beta=0.3)


def _halo_spec(data: np.ndarray) -> HaloQualitySpec:
    tb = float(np.percentile(np.asarray(data, dtype=np.float64), 99.0))
    return HaloQualitySpec(t_boundary=tb, mass_budget=100.0, reference_eb=0.5)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= set(BACKENDS)

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_default_is_thread(self):
        assert isinstance(get_backend(None), ThreadBackend)

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(ValueError, match="kwargs"):
            get_backend(SerialBackend(), max_workers=2)

    def test_kwargs_forwarded(self):
        backend = get_backend("process", max_workers=3, batch_size=2)
        assert backend.max_workers == 3
        assert backend.batch_size == 2

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_bad_type(self):
        with pytest.raises(TypeError, match="backend"):
            get_backend(42)

    def test_register_custom_backend(self):
        class EchoBackend(SerialBackend):
            name = "echo-test"

        try:
            register_backend(EchoBackend)
            assert isinstance(get_backend("echo-test"), EchoBackend)
        finally:
            BACKENDS.pop("echo-test", None)

    def test_register_requires_name(self):
        class Nameless(SerialBackend):
            name = ExecutionBackend.name

        with pytest.raises(ValueError, match="name"):
            register_backend(Nameless)

    def test_register_requires_subclass(self):
        with pytest.raises(TypeError, match="ExecutionBackend"):
            register_backend(dict)


class TestBackendEquivalence:
    """Serial, thread-SPMD and process backends must agree byte for byte."""

    @pytest.mark.parametrize("normalization", ["exact", "local"])
    @pytest.mark.parametrize("use_halo", [False, True])
    def test_byte_identical_blocks_and_ebs(
        self, snapshot, decomposition, rate_model, process_backend,
        normalization, use_halo,
    ):
        data = snapshot["baryon_density"]
        halo = _halo_spec(data) if use_halo else None
        pipe = AdaptiveCompressionPipeline(
            rate_model, settings=OptimizerSettings(normalization=normalization)
        )
        serial = pipe.run(data, decomposition, eb_avg=0.2, halo=halo)
        thread = pipe.run_insitu_spmd(
            data, decomposition, eb_avg=0.2, halo=halo, backend="thread"
        )
        process = pipe.run_insitu_spmd(
            data, decomposition, eb_avg=0.2, halo=halo, backend=process_backend
        )
        for other in (thread, process):
            assert np.array_equal(serial.ebs, other.ebs)
            assert len(serial.blocks) == len(other.blocks)
            for a, b in zip(serial.blocks, other.blocks):
                assert a.shape == b.shape
                assert a.eb == b.eb
                assert a.payloads == b.payloads  # byte-identical payloads
        assert [f.mean_abs for f in serial.features] == [
            f.mean_abs for f in process.features
        ]

    def test_all_backends_report_timings(
        self, snapshot, decomposition, rate_model, process_backend
    ):
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(rate_model)
        for backend in (SerialBackend(), ThreadBackend(), process_backend):
            res = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2, backend=backend)
            assert set(res.timings.totals) >= {"features", "optimize", "compress"}
            assert res.timings.totals["compress"] > 0
            assert res.timings.overhead_ratio("features", "compress") >= 0

    def test_local_protocol_reports_optimization_diagnostics(
        self, snapshot, decomposition, rate_model
    ):
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(
            rate_model, settings=OptimizerSettings(normalization="local")
        )
        res = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2)
        assert res.optimization is not None
        assert res.optimization.constraint == "spectrum"
        assert np.array_equal(res.optimization.ebs, res.ebs)


class TestSingleOptimization:
    """Regression for the SPMD double-optimization bug: every backend
    performs exactly one global optimization per snapshot."""

    @pytest.fixture()
    def counters(self, monkeypatch):
        counts = {"spectrum": 0, "combined": 0}
        real_spectrum = backends_mod.optimize_for_spectrum
        real_combined = backends_mod.optimize_combined

        def counting_spectrum(*args, **kwargs):
            counts["spectrum"] += 1
            return real_spectrum(*args, **kwargs)

        def counting_combined(*args, **kwargs):
            counts["combined"] += 1
            return real_combined(*args, **kwargs)

        monkeypatch.setattr(backends_mod, "optimize_for_spectrum", counting_spectrum)
        monkeypatch.setattr(backends_mod, "optimize_combined", counting_combined)
        return counts

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exact_mode_optimizes_once(
        self, snapshot, decomposition, rate_model, counters, process_backend, backend
    ):
        resolved = process_backend if backend == "process" else backend
        pipe = AdaptiveCompressionPipeline(rate_model, backend=resolved)
        pipe.run_insitu_spmd(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert counters["spectrum"] == 1
        assert counters["combined"] == 0

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_halo_mode_optimizes_once(
        self, snapshot, decomposition, rate_model, counters, process_backend, backend
    ):
        data = snapshot["baryon_density"]
        resolved = process_backend if backend == "process" else backend
        pipe = AdaptiveCompressionPipeline(rate_model, backend=resolved)
        pipe.run_insitu_spmd(
            data, decomposition, eb_avg=0.2, halo=_halo_spec(data)
        )
        assert counters["combined"] == 1
        assert counters["spectrum"] == 0

    def test_local_protocol_needs_no_global_solve(
        self, snapshot, decomposition, rate_model, counters
    ):
        pipe = AdaptiveCompressionPipeline(
            rate_model,
            settings=OptimizerSettings(normalization="local"),
            backend="thread",
        )
        pipe.run_insitu_spmd(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert counters["spectrum"] == 0
        assert counters["combined"] == 0


class TestProcessBackend:
    def test_batch_size_does_not_change_results(
        self, snapshot, decomposition, rate_model
    ):
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(rate_model)
        reference = pipe.run(data, decomposition, eb_avg=0.2)
        for batch_size in (1, 3, 64):
            with ProcessBackend(max_workers=2, batch_size=batch_size) as backend:
                res = pipe.run_insitu_spmd(
                    data, decomposition, eb_avg=0.2, backend=backend
                )
            assert np.array_equal(reference.ebs, res.ebs)
            assert all(
                a.payloads == b.payloads
                for a, b in zip(reference.blocks, res.blocks)
            )

    def test_pool_is_reused_across_snapshots(self, snapshot, decomposition, rate_model):
        pipe = AdaptiveCompressionPipeline(rate_model)
        with ProcessBackend(max_workers=2) as backend:
            pipe.run_insitu_spmd(
                snapshot["baryon_density"], decomposition, eb_avg=0.2, backend=backend
            )
            pool = backend._pool
            pipe.run_insitu_spmd(
                snapshot["temperature"], decomposition, eb_avg=5.0, backend=backend
            )
            assert backend._pool is pool
        assert backend._pool is None  # closed by the context manager

    def test_codec_configuration_reaches_workers(
        self, snapshot, decomposition, rate_model
    ):
        """Regression: workers must reproduce the exact codec state
        (e.g. zlib level), not a name-based default reconstruction."""
        from repro.compression.codecs import ZlibCodec

        data = snapshot["baryon_density"]
        for level in (1, 9):
            comp = SZCompressor(codec=ZlibCodec(level=level))
            pipe = AdaptiveCompressionPipeline(rate_model, compressor=comp)
            serial = pipe.run(data, decomposition, eb_avg=0.2)
            with ProcessBackend(max_workers=2) as backend:
                process = pipe.run_insitu_spmd(
                    data, decomposition, eb_avg=0.2, backend=backend
                )
            assert all(
                a.payloads == b.payloads
                for a, b in zip(serial.blocks, process.blocks)
            )

    def test_unpicklable_compressor_rejected(
        self, snapshot, decomposition, rate_model, process_backend
    ):
        comp = SZCompressor()
        comp.codec.unpicklable = lambda: None  # closure defeats pickling
        pipe = AdaptiveCompressionPipeline(rate_model, compressor=comp)
        with pytest.raises(ValueError, match="picklable"):
            pipe.run_insitu_spmd(
                snapshot["baryon_density"], decomposition, eb_avg=0.2,
                backend=process_backend,
            )

    def test_name_override_closes_one_shot_backend(
        self, snapshot, decomposition, rate_model, monkeypatch
    ):
        """A per-call backend *name* must not leak pooled resources."""
        import repro.core.pipeline as pipeline_mod

        closed = []

        class Recording(SerialBackend):
            def close(self):
                closed.append(True)
                super().close()

        monkeypatch.setattr(
            pipeline_mod, "get_backend", lambda spec=None, **kw: Recording()
        )
        pipe = AdaptiveCompressionPipeline(rate_model)
        pipe.run_insitu_spmd(
            snapshot["baryon_density"], decomposition, eb_avg=0.2, backend="serial"
        )
        assert closed == [True]

    def test_instance_override_stays_open(
        self, snapshot, decomposition, rate_model, process_backend
    ):
        pipe = AdaptiveCompressionPipeline(rate_model)
        pipe.run_insitu_spmd(
            snapshot["baryon_density"], decomposition, eb_avg=0.2,
            backend=process_backend,
        )
        assert process_backend._pool is not None  # caller-owned pool survives

    def test_worker_failure_propagates_and_cleans_up(
        self, snapshot, decomposition, rate_model
    ):
        """A failing worker batch must surface its error after the queued
        batches are drained and the shared segment is unlinked."""
        data = np.asarray(snapshot["baryon_density"], dtype=np.float64).copy()
        data[0, 0, 0] = -1.0  # pw_rel compression rejects non-positive data
        pipe = AdaptiveCompressionPipeline(
            rate_model, compressor=SZCompressor(mode="pw_rel")
        )
        with ProcessBackend(max_workers=1, batch_size=1) as backend:
            with pytest.raises(ValueError, match="positive"):
                pipe.run_insitu_spmd(data, decomposition, eb_avg=0.01, backend=backend)
            # The pool survives the failure and stays usable.
            ok = pipe.run_insitu_spmd(
                np.abs(data) + 1.0, decomposition, eb_avg=0.01, backend=backend
            )
            assert len(ok.blocks) == decomposition.n_partitions
        leftover = [p for p in os.listdir("/dev/shm") if p.startswith("psm_")] if os.path.isdir("/dev/shm") else []
        assert leftover == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessBackend(max_workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            ProcessBackend(batch_size=0)

    def test_batches_cover_all_ranks(self):
        backend = ProcessBackend(max_workers=2, batch_size=3)
        batches = backend._batches(8)
        assert [len(b) for b in batches] == [3, 3, 2]
        assert sorted(r for b in batches for r in b) == list(range(8))


class TestSnapshotTask:
    def test_shape_mismatch_rejected(self, snapshot, rate_model):
        small = BlockDecomposition((16, 16, 16), blocks=2)
        with pytest.raises(ValueError, match="shape"):
            SnapshotTask(
                data=snapshot["baryon_density"],
                decomposition=small,
                eb_avg=0.2,
                rate_model=rate_model,
                compressor=SZCompressor(),
                settings=OptimizerSettings(),
            )

    def test_nonpositive_budget_rejected(self, snapshot, decomposition, rate_model):
        with pytest.raises(ValueError, match="eb_avg"):
            SnapshotTask(
                data=snapshot["baryon_density"],
                decomposition=decomposition,
                eb_avg=0.0,
                rate_model=rate_model,
                compressor=SZCompressor(),
                settings=OptimizerSettings(),
            )


def _square(x: int) -> int:
    """Module-level so ProcessBackend.map_tasks can pickle it."""
    return x * x


class TestMapTasks:
    def test_serial_default_is_ordered_loop(self):
        backend = SerialBackend()
        assert backend.parallelism == 1
        assert backend.map_tasks(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_thread_backend_preserves_order(self):
        backend = ThreadBackend()
        assert backend.parallelism >= 1
        assert backend.map_tasks(_square, range(20)) == [x * x for x in range(20)]

    def test_thread_backend_single_item_runs_inline(self):
        assert ThreadBackend().map_tasks(_square, [7]) == [49]

    def test_process_backend_preserves_order(self, process_backend):
        assert process_backend.parallelism == 2
        assert process_backend.map_tasks(_square, range(9)) == [
            x * x for x in range(9)
        ]

    def test_process_backend_empty_items(self, process_backend):
        assert process_backend.map_tasks(_square, []) == []

    def test_every_registered_backend_agrees(self):
        want = [x * x for x in range(5)]
        for name in sorted(BACKENDS):
            with get_backend(name) as backend:
                assert backend.map_tasks(_square, range(5)) == want
