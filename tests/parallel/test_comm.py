"""Serial communicator and reduce-op registry."""

from __future__ import annotations

import pytest

from repro.parallel.comm import REDUCE_OPS, SerialComm


class TestSerialComm:
    def test_rank_and_size(self):
        c = SerialComm()
        assert c.rank == 0
        assert c.size == 1

    def test_allreduce_identity(self):
        assert SerialComm().allreduce(5.0, "sum") == 5.0
        assert SerialComm().allreduce(5.0, "max") == 5.0

    def test_allreduce_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown reduce op"):
            SerialComm().allreduce(1.0, "prod")

    def test_allgather(self):
        assert SerialComm().allgather("x") == ["x"]

    def test_bcast(self):
        assert SerialComm().bcast(42) == 42

    def test_bcast_rejects_nonzero_root(self):
        with pytest.raises(ValueError, match="root"):
            SerialComm().bcast(1, root=1)

    def test_gather(self):
        assert SerialComm().gather(7) == [7]

    def test_barrier_noop(self):
        SerialComm().barrier()

    def test_reduce_ops_registry(self):
        assert REDUCE_OPS["sum"](2, 3) == 5
        assert REDUCE_OPS["max"](2, 3) == 3
        assert REDUCE_OPS["min"](2, 3) == 2
