"""Entropy-stage codecs: exact round trips and registry behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.codecs import HuffmanCodec, RawCodec, ZlibCodec, get_codec

ALL_CODECS = [RawCodec(), ZlibCodec(), HuffmanCodec()]


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestRoundTrips:
    def test_basic(self, codec):
        codes = np.array([0, 1, 2, 3, 100, 65535, 3, 3, 3], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(codes), len(codes)), codes)

    def test_empty(self, codec):
        blob = codec.encode(np.empty(0, dtype=np.int64))
        assert codec.decode(blob, 0).size == 0

    def test_constant(self, codec):
        codes = np.full(1000, 42, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(codes), len(codes)), codes)

    def test_rejects_negative(self, codec):
        with pytest.raises(ValueError, match="non-negative"):
            codec.encode(np.array([-1]))

    def test_rejects_2d(self, codec):
        with pytest.raises(ValueError, match="1-D"):
            codec.encode(np.zeros((2, 2), dtype=np.int64))


class TestCompressionBehaviour:
    def test_zlib_beats_raw_on_runs(self):
        codes = np.repeat(np.arange(10), 500)
        assert len(ZlibCodec().encode(codes)) < len(RawCodec().encode(codes))

    def test_huffman_beats_raw_on_skew(self):
        rng = np.random.default_rng(0)
        codes = np.where(rng.random(8000) < 0.95, 7, rng.integers(0, 256, 8000))
        assert len(HuffmanCodec().encode(codes)) < len(RawCodec().encode(codes))

    def test_raw_uses_minimal_dtype(self):
        small = np.arange(100, dtype=np.int64)  # fits uint8
        big = np.arange(100, dtype=np.int64) + 100_000  # needs uint32
        assert len(RawCodec().encode(small)) < len(RawCodec().encode(big))

    def test_zlib_level_bounds(self):
        with pytest.raises(ValueError, match="level"):
            ZlibCodec(level=10)

    def test_huffman_code_length_bounds(self):
        with pytest.raises(ValueError, match="max_code_length"):
            HuffmanCodec(max_code_length=0)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_codec("zlib").name == "zlib"
        assert get_codec("huffman").name == "huffman"
        assert get_codec("raw").name == "raw"

    def test_pass_through_instance(self):
        codec = ZlibCodec(level=1)
        assert get_codec(codec) is codec

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("lz4")


@given(
    st.lists(st.integers(0, 70000), min_size=1, max_size=300),
    st.sampled_from(["raw", "zlib", "huffman"]),
)
@settings(max_examples=40, deadline=None)
def test_round_trip_property(codes, name):
    arr = np.array(codes, dtype=np.int64)
    codec = get_codec(name)
    assert np.array_equal(codec.decode(codec.encode(arr), len(arr)), arr)
