"""SZ2-style adaptive predictor (Lorenzo vs block regression)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.regression import (
    AdaptiveSZCompressor,
    regression_coefficients,
)
from repro.compression.sz import SZCompressor


class TestRegressionFit:
    def test_recovers_exact_hyperplane(self):
        b = 8
        i, j, k = np.meshgrid(*([np.arange(b) - 3.5] * 3), indexing="ij")
        plane = 5.0 + 2.0 * i - 1.5 * j + 0.5 * k
        coeffs = regression_coefficients(plane[None])
        assert np.allclose(coeffs[0], [5.0, 2.0, -1.5, 0.5])

    def test_constant_block(self):
        coeffs = regression_coefficients(np.full((1, 4, 4, 4), 7.0))
        assert np.allclose(coeffs[0], [7.0, 0.0, 0.0, 0.0])

    def test_vectorized_over_blocks(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(0, 1, (10, 4, 4, 4))
        all_at_once = regression_coefficients(blocks)
        one_by_one = np.vstack([regression_coefficients(b[None]) for b in blocks])
        assert np.allclose(all_at_once, one_by_one)


class TestAdaptiveCompressor:
    def test_error_bound_holds(self, smooth_field):
        comp = AdaptiveSZCompressor(block=8)
        for eb in (0.05, 0.5):
            stream = comp.compress(smooth_field, eb)
            recon = comp.decompress(stream)
            assert np.max(np.abs(recon - smooth_field)) <= eb + 1e-9

    def test_error_bound_on_noise(self, noisy_field):
        comp = AdaptiveSZCompressor(block=8)
        stream = comp.compress(noisy_field, 0.5)
        recon = comp.decompress(stream)
        assert np.max(np.abs(recon - noisy_field)) <= 0.5 + 1e-9

    def test_regression_wins_on_sloped_noisy_data(self):
        """A steep ramp plus noise defeats Lorenzo (residual carries the
        noise twice) but suits the hyperplane predictor."""
        rng = np.random.default_rng(1)
        b = 8
        x = np.arange(32, dtype=np.float64)
        ramp = 50.0 * x[:, None, None] + 30.0 * x[None, :, None] + 10.0 * x[None, None, :]
        # Noise well above the bound: Lorenzo differences amplify it by
        # sqrt(8) while the hyperplane absorbs the slope without touching
        # the noise.
        data = ramp + rng.normal(0, 2.0, (32, 32, 32))
        eb = 0.25
        adaptive = AdaptiveSZCompressor(block=b).compress(data, eb)
        plain = SZCompressor().compress(data, eb)
        assert adaptive.ratio > plain.ratio

    def test_mode_mask_mixes_predictors(self, snapshot):
        """Real cosmology data should use both predictors somewhere."""
        import zlib

        data = snapshot["temperature"].astype(np.float64)
        comp = AdaptiveSZCompressor(block=8)
        stream = comp.compress(data, 10.0)
        nblocks = data.size // 8**3
        use_reg = np.unpackbits(
            np.frombuffer(zlib.decompress(stream.payloads["modes"]), dtype=np.uint8),
            count=nblocks,
        ).astype(bool)
        # At least the mask is well-formed; on most data both modes appear.
        assert use_reg.shape == (nblocks,)

    def test_rejects_bad_shapes(self):
        comp = AdaptiveSZCompressor(block=8)
        with pytest.raises(ValueError, match="3-D"):
            comp.compress(np.zeros((8, 8)), 0.1)
        with pytest.raises(ValueError, match="divide"):
            comp.compress(np.zeros((10, 8, 8)), 0.1)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError, match="block"):
            AdaptiveSZCompressor(block=1)

    @given(st.integers(0, 2**32 - 1), st.floats(0.05, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_bound_property(self, seed, eb):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10, (8, 8, 8))
        comp = AdaptiveSZCompressor(block=4)
        recon = comp.decompress(comp.compress(data, eb))
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9) + 1e-12
