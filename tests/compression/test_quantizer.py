"""Quantization: the error-bound contract and the outlier channel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.quantizer import (
    decode_residuals,
    dequantize_abs,
    encode_residuals,
    pw_rel_to_log_abs,
    quantize_abs,
)


class TestAbsQuantization:
    def test_bound_holds(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 100, 10_000)
        for eb in (0.01, 0.5, 7.0):
            q = quantize_abs(data, eb)
            recon = dequantize_abs(q, eb)
            assert np.max(np.abs(recon - data)) <= eb + 1e-12

    def test_zero_maps_to_zero(self):
        assert quantize_abs(np.zeros(5), 0.1).sum() == 0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_abs(np.array([1.0, np.nan]), 0.1)

    def test_rejects_nonpositive_eb(self):
        with pytest.raises(ValueError, match="positive"):
            quantize_abs(np.ones(3), 0.0)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="int64"):
            quantize_abs(np.array([1e300]), 1e-10)

    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100),
        st.floats(1e-4, 1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, values, eb):
        data = np.array(values)
        recon = dequantize_abs(quantize_abs(data, eb), eb)
        # Slack scales with eb AND the data magnitude: a rounding tie
        # reconstructs a few ulps-of-|x| past the bound in float64.
        limit = eb * (1 + 1e-9) + 4.0 * np.spacing(np.abs(data).max()) + 1e-15
        assert np.max(np.abs(recon - data)) <= limit


class TestPwRel:
    def test_log_bound_conversion(self):
        a = pw_rel_to_log_abs(0.01)
        assert np.isclose(np.expm1(a), 0.01)

    def test_round_trip_bound(self):
        rng = np.random.default_rng(1)
        data = np.exp(rng.normal(0, 3, 5000))  # positive, wide range
        rel = 0.02
        a = pw_rel_to_log_abs(rel)
        recon = np.exp(dequantize_abs(quantize_abs(np.log(data), a), a))
        assert np.max(np.abs(recon / data - 1.0)) <= rel + 1e-12


class TestResidualCodes:
    def test_round_trip_no_outliers(self):
        res = np.array([-5, 0, 3, 100, -100], dtype=np.int64)
        qr = encode_residuals(res, radius=512)
        assert qr.outlier_positions.size == 0
        assert np.array_equal(decode_residuals(qr), res)

    def test_outliers_routed_and_recovered(self):
        res = np.array([0, 10_000, -10_000, 2], dtype=np.int64)
        qr = encode_residuals(res, radius=16)
        assert set(qr.outlier_positions.tolist()) == {1, 2}
        assert np.array_equal(decode_residuals(qr), res)

    def test_code_zero_reserved_for_outliers(self):
        # Residual exactly -radius would map to code 0; must be an outlier.
        res = np.array([-16], dtype=np.int64)
        qr = encode_residuals(res, radius=16)
        assert qr.codes[0] == 0
        assert qr.outlier_positions.size == 1
        assert np.array_equal(decode_residuals(qr), res)

    def test_codes_bounded(self):
        rng = np.random.default_rng(2)
        res = rng.integers(-10**6, 10**6, 10_000)
        qr = encode_residuals(res, radius=256)
        assert qr.codes.min() >= 0
        assert qr.codes.max() <= 511
        assert np.array_equal(decode_residuals(qr), res)

    def test_rejects_tiny_radius(self):
        with pytest.raises(ValueError, match="radius"):
            encode_residuals(np.zeros(1, dtype=np.int64), radius=1)

    @given(
        st.lists(st.integers(-(10**9), 10**9), min_size=1, max_size=200),
        st.integers(2, 1 << 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, values, radius):
        res = np.array(values, dtype=np.int64)
        qr = encode_residuals(res, radius=radius)
        assert np.array_equal(decode_residuals(qr), res)
