"""Bit packing round trips, including the tail-padding contract."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitstream import BitReader, pack_bits, unpack_bits


class TestPackUnpack:
    def test_round_trip_simple(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1, 0], dtype=np.uint8)
        blob = pack_bits(bits)
        assert np.array_equal(unpack_bits(blob, len(bits)), bits)

    def test_empty(self):
        assert pack_bits(np.empty(0, dtype=np.uint8)) == b""
        assert unpack_bits(b"", 0).size == 0

    def test_padding_is_zero(self):
        blob = pack_bits(np.array([1, 1, 1], dtype=np.uint8))
        assert len(blob) == 1
        assert blob[0] == 0b11100000

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            pack_bits(np.zeros((2, 2), dtype=np.uint8))

    def test_unpack_rejects_overread(self):
        with pytest.raises(ValueError, match="bits"):
            unpack_bits(b"\x00", 9)

    def test_unpack_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            unpack_bits(b"\x00", -1)

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(arr), len(arr)), arr)


class TestBitReader:
    def test_peek_does_not_consume(self):
        r = BitReader(bytes([0b10110010]))
        assert r.peek(3) == 0b101
        assert r.peek(3) == 0b101

    def test_consume_advances(self):
        r = BitReader(bytes([0b10110010]))
        r.peek(3)
        r.consume(3)
        assert r.peek(5) == 0b10010

    def test_peek_past_end_zero_pads(self):
        r = BitReader(bytes([0b11000000]))
        assert r.peek(12) == 0b110000000000

    def test_bits_remaining(self):
        r = BitReader(bytes([0xFF, 0xFF]))
        assert r.bits_remaining == 16
        r.peek(4)
        r.consume(4)
        assert r.bits_remaining == 12

    def test_cross_byte_reads(self):
        r = BitReader(bytes([0b10101010, 0b01010101]))
        assert r.peek(16) == 0b1010101001010101
        r.consume(9)
        assert r.peek(7) == 0b1010101
