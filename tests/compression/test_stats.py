"""Compression statistics aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.stats import (
    CompressionStats,
    bit_rate,
    compression_ratio,
    max_abs_error,
    max_pointwise_rel_error,
)
from repro.compression.sz import SZCompressor


class TestScalarMetrics:
    def test_bit_rate(self):
        assert bit_rate(100, 100) == 8.0
        assert bit_rate(50, 100) == 4.0

    def test_bit_rate_rejects_zero_elements(self):
        with pytest.raises(ValueError, match="positive"):
            bit_rate(10, 0)

    def test_compression_ratio(self):
        assert compression_ratio(100, 100, source_itemsize=4) == 4.0

    def test_ratio_rejects_zero_bytes(self):
        with pytest.raises(ValueError, match="positive"):
            compression_ratio(0, 100)

    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.5, 2.0, 2.0])
        assert max_abs_error(a, b) == 1.0

    def test_max_abs_error_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_max_rel_error(self):
        a = np.array([2.0, 4.0])
        b = np.array([2.2, 4.0])
        assert max_pointwise_rel_error(a, b) == pytest.approx(0.1)

    def test_max_rel_error_rejects_zero(self):
        with pytest.raises(ValueError, match="zeros"):
            max_pointwise_rel_error(np.array([0.0, 1.0]), np.array([0.0, 1.0]))


class TestAggregation:
    def test_from_blocks(self, smooth_field, noisy_field):
        comp = SZCompressor()
        blocks = [comp.compress(smooth_field, 0.1), comp.compress(noisy_field, 0.1)]
        stats = CompressionStats.from_blocks(blocks)
        assert stats.n_blocks == 2
        assert stats.total_elements == smooth_field.size + noisy_field.size
        assert stats.total_nbytes == sum(b.nbytes for b in blocks)
        assert stats.overall_bit_rate == pytest.approx(
            8 * stats.total_nbytes / stats.total_elements
        )
        assert stats.overall_ratio == pytest.approx(
            4 * stats.total_elements / stats.total_nbytes
        )

    def test_overall_between_extremes(self, smooth_field, noisy_field):
        comp = SZCompressor()
        blocks = [comp.compress(smooth_field, 0.1), comp.compress(noisy_field, 0.1)]
        stats = CompressionStats.from_blocks(blocks)
        rates = stats.per_block_bit_rates
        assert rates.min() <= stats.overall_bit_rate <= rates.max()

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            CompressionStats.from_blocks([])

    def test_rejects_mixed_itemsize(self, smooth_field):
        comp = SZCompressor()
        b1 = comp.compress(smooth_field.astype(np.float32), 0.1)
        b2 = comp.compress(smooth_field.astype(np.float64), 0.1)
        with pytest.raises(ValueError, match="mixed"):
            CompressionStats.from_blocks([b1, b2])
