"""Fixed-rate comparator codec: rate guarantees and reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.zfp_like import (
    ZFPLikeCompressor,
    _bit_allocation,
    _forward_axis,
    _inverse_axis,
)


class TestTransform:
    def test_axis_transform_invertible(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-(2**30), 2**30, (10, 4, 4, 4)).astype(np.int64)
        for axis in (1, 2, 3):
            fwd = _forward_axis(blocks, axis)
            assert np.array_equal(_inverse_axis(fwd, axis), blocks)

    def test_full_3d_transform_invertible(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(-(2**28), 2**28, (5, 4, 4, 4)).astype(np.int64)
        fwd = blocks
        for axis in (1, 2, 3):
            fwd = _forward_axis(fwd, axis)
        inv = fwd
        for axis in (3, 2, 1):
            inv = _inverse_axis(inv, axis)
        assert np.array_equal(inv, blocks)


class TestBitAllocation:
    def test_budget_met(self):
        for rate in (2.0, 8.0, 16.0):
            bits = _bit_allocation(rate)
            assert bits.sum() <= int(rate * 64)

    def test_low_frequency_favoured(self):
        bits = _bit_allocation(4.0).reshape(4, 4, 4)
        assert bits[0, 0, 0] >= bits[3, 3, 3]


class TestCodec:
    def test_round_trip_accuracy_improves_with_rate(self, smooth_field):
        errs = []
        for rate in (2.0, 6.0, 12.0):
            comp = ZFPLikeCompressor(rate=rate)
            recon = comp.decompress(comp.compress(smooth_field))
            errs.append(np.sqrt(np.mean((recon - smooth_field) ** 2)))
        assert errs[0] > errs[1] > errs[2]

    def test_bitrate_near_target(self, noisy_field):
        comp = ZFPLikeCompressor(rate=8.0)
        stream = comp.compress(noisy_field)
        # Payload rate is exact; exponents/header add a small overhead.
        assert 8.0 <= stream.bit_rate <= 10.0

    def test_non_multiple_of_block_shape(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, (10, 7, 5))
        comp = ZFPLikeCompressor(rate=12.0)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape

    def test_zero_field(self):
        comp = ZFPLikeCompressor(rate=4.0)
        data = np.zeros((8, 8, 8))
        recon = comp.decompress(comp.compress(data))
        assert np.allclose(recon, 0.0, atol=1e-6)

    def test_no_absolute_error_bound(self):
        """The paper's reason for choosing SZ: fixed-rate ZFP cannot bound error.

        Demonstrate that pointwise error at fixed rate grows with data
        spikiness rather than staying constant.
        """
        rng = np.random.default_rng(3)
        gentle = rng.normal(0, 1, (16, 16, 16))
        spiky = gentle.copy()
        spiky[::2, ::2, ::2] *= 1000
        comp = ZFPLikeCompressor(rate=4.0)
        err_gentle = np.max(np.abs(comp.decompress(comp.compress(gentle)) - gentle))
        err_spiky = np.max(np.abs(comp.decompress(comp.compress(spiky)) - spiky))
        assert err_spiky > 10 * err_gentle

    def test_rejects_low_rate(self):
        with pytest.raises(ValueError, match="rate"):
            ZFPLikeCompressor(rate=0.5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            ZFPLikeCompressor(rate=4.0).compress(np.zeros((4, 4)))
