"""Fixed-rate comparator codec: rate guarantees and reconstruction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.zfp_like import (
    _BLOCK,
    ZFPLikeCompressor,
    _bit_allocation,
    _forward_axis,
    _inverse_axis,
)


class TestTransform:
    def test_axis_transform_invertible(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-(2**30), 2**30, (10, 4, 4, 4)).astype(np.int64)
        for axis in (1, 2, 3):
            fwd = _forward_axis(blocks, axis)
            assert np.array_equal(_inverse_axis(fwd, axis), blocks)

    def test_full_3d_transform_invertible(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(-(2**28), 2**28, (5, 4, 4, 4)).astype(np.int64)
        fwd = blocks
        for axis in (1, 2, 3):
            fwd = _forward_axis(fwd, axis)
        inv = fwd
        for axis in (3, 2, 1):
            inv = _inverse_axis(inv, axis)
        assert np.array_equal(inv, blocks)


class TestTransformProperties:
    """Property tests: the integer S-transform is exactly invertible."""

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        magnitude=st.integers(min_value=1, max_value=2**40),
        axis=st.sampled_from([1, 2, 3]),
    )
    def test_single_axis_exact_inverse(self, seed, magnitude, axis):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(-magnitude, magnitude, (4, 4, 4, 4)).astype(np.int64)
        assert np.array_equal(_inverse_axis(_forward_axis(blocks, axis), axis), blocks)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        magnitude=st.integers(min_value=1, max_value=2**38),
    )
    def test_full_3d_exact_inverse(self, seed, magnitude):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(-magnitude, magnitude, (3, 4, 4, 4)).astype(np.int64)
        fwd = blocks
        for axis in (1, 2, 3):
            fwd = _forward_axis(fwd, axis)
        inv = fwd
        for axis in (3, 2, 1):
            inv = _inverse_axis(inv, axis)
        assert np.array_equal(inv, blocks)

    def test_adversarial_patterns_exact(self):
        # Constant, alternating-sign, and single-spike blocks.
        patterns = [
            np.full((1, 4, 4, 4), 7, dtype=np.int64),
            np.fromfunction(
                lambda b, i, j, k: (-1) ** (i + j + k), (1, 4, 4, 4)
            ).astype(np.int64)
            * (2**30),
            np.zeros((1, 4, 4, 4), dtype=np.int64),
        ]
        patterns[2][0, 1, 2, 3] = -(2**40)
        for blocks in patterns:
            fwd = blocks
            for axis in (1, 2, 3):
                fwd = _forward_axis(fwd, axis)
            inv = fwd
            for axis in (3, 2, 1):
                inv = _inverse_axis(inv, axis)
            assert np.array_equal(inv, blocks)


class TestBitAllocation:
    def test_budget_met(self):
        for rate in (2.0, 8.0, 16.0):
            bits = _bit_allocation(rate)
            assert bits.sum() <= int(rate * 64)

    def test_low_frequency_favoured(self):
        bits = _bit_allocation(4.0).reshape(4, 4, 4)
        assert bits[0, 0, 0] >= bits[3, 3, 3]

    @settings(max_examples=40, deadline=None)
    @given(rate=st.floats(min_value=1.0, max_value=24.0))
    def test_exact_budget_adherence(self, rate):
        """Stored bits per block (magnitudes + sign bits) equal the
        ``round(rate * 64)`` budget, up to one unspendable bit."""
        bits = _bit_allocation(rate)
        budget = int(round(rate * _BLOCK**3))
        stored = int(bits.sum() + (bits > 0).sum())  # + one sign bit per kept
        assert stored <= budget
        assert budget - stored <= 1

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=1.0, max_value=16.0))
    def test_payload_matches_allocation_exactly(self, rate):
        """The packed stream spends exactly the allocated bits per block."""
        rng = np.random.default_rng(1234)
        data = rng.normal(0, 1, (8, 8, 8))
        comp = ZFPLikeCompressor(rate=rate)
        stream = comp.compress(data)
        bits = comp._bits
        per_block = int(bits.sum() + (bits > 0).sum())
        nblocks = stream.exponents.size
        assert len(stream.payload) == -(-nblocks * per_block // 8)  # ceil-div
        # Payload bits/value never exceed the configured rate.
        payload_rate = 8.0 * len(stream.payload) / (nblocks * _BLOCK**3)
        assert payload_rate <= rate + 8.0 / (nblocks * _BLOCK**3)


class TestCodec:
    def test_round_trip_accuracy_improves_with_rate(self, smooth_field):
        errs = []
        for rate in (2.0, 6.0, 12.0):
            comp = ZFPLikeCompressor(rate=rate)
            recon = comp.decompress(comp.compress(smooth_field))
            errs.append(np.sqrt(np.mean((recon - smooth_field) ** 2)))
        assert errs[0] > errs[1] > errs[2]

    def test_bitrate_near_target(self, noisy_field):
        comp = ZFPLikeCompressor(rate=8.0)
        stream = comp.compress(noisy_field)
        # Payload rate is exact; exponents/header add a small overhead.
        assert 8.0 <= stream.bit_rate <= 10.0

    def test_non_multiple_of_block_shape(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, (10, 7, 5))
        comp = ZFPLikeCompressor(rate=12.0)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape

    @settings(max_examples=25, deadline=None)
    @given(
        nx=st.integers(min_value=1, max_value=9),
        ny=st.integers(min_value=1, max_value=9),
        nz=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_arbitrary_shapes_round_trip(self, nx, ny, nz, seed):
        """Any 3-D shape (edge-padded to 4^3 tiles) reconstructs at its
        original shape with bounded RMS error at a generous rate."""
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 1, (nx, ny, nz))
        comp = ZFPLikeCompressor(rate=16.0)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape
        assert float(np.sqrt(np.mean((recon - data) ** 2))) < 1e-2

    def test_f32_and_f64_inputs(self):
        """f32 input: same transform path (internally f64), f32 itemsize
        charged to the ratio; reconstructions agree to f32 precision."""
        rng = np.random.default_rng(5)
        data64 = rng.normal(0, 1, (8, 8, 8))
        data32 = data64.astype(np.float32)
        comp = ZFPLikeCompressor(rate=12.0)
        s64 = comp.compress(data64)
        s32 = comp.compress(data32)
        assert s64.source_itemsize == 8
        assert s32.source_itemsize == 4
        # Same payload size either way (fixed rate), but the f64 source
        # is credited a 2x larger ratio denominatorwise.
        assert len(s64.payload) == len(s32.payload)
        assert s64.ratio == pytest.approx(2.0 * s32.ratio)
        r64 = comp.decompress(s64)
        r32 = comp.decompress(s32)
        assert np.allclose(r64, r32, atol=1e-5)
        # Integer (non-float) input is charged at 8 bytes/value like SZ.
        ints = ZFPLikeCompressor(rate=8.0).compress(
            rng.integers(0, 100, (4, 4, 4)).astype(np.int64)
        )
        assert ints.source_itemsize == 8

    def test_zero_field(self):
        comp = ZFPLikeCompressor(rate=4.0)
        data = np.zeros((8, 8, 8))
        recon = comp.decompress(comp.compress(data))
        assert np.allclose(recon, 0.0, atol=1e-6)

    def test_no_absolute_error_bound(self):
        """The paper's reason for choosing SZ: fixed-rate ZFP cannot bound error.

        Demonstrate that pointwise error at fixed rate grows with data
        spikiness rather than staying constant.
        """
        rng = np.random.default_rng(3)
        gentle = rng.normal(0, 1, (16, 16, 16))
        spiky = gentle.copy()
        spiky[::2, ::2, ::2] *= 1000
        comp = ZFPLikeCompressor(rate=4.0)
        err_gentle = np.max(np.abs(comp.decompress(comp.compress(gentle)) - gentle))
        err_spiky = np.max(np.abs(comp.decompress(comp.compress(spiky)) - spiky))
        assert err_spiky > 10 * err_gentle

    def test_rejects_low_rate(self):
        with pytest.raises(ValueError, match="rate"):
            ZFPLikeCompressor(rate=0.5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            ZFPLikeCompressor(rate=4.0).compress(np.zeros((4, 4)))
