"""Canonical Huffman coding: optimality, limits, round trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.huffman import (
    HuffmanTable,
    build_code_lengths,
    canonical_codewords,
)


class TestCodeLengths:
    def test_two_symbols_get_one_bit(self):
        lengths = build_code_lengths(np.array([5, 3]))
        assert list(lengths) == [1, 1]

    def test_single_symbol(self):
        lengths = build_code_lengths(np.array([0, 7, 0]))
        assert lengths[1] == 1
        assert lengths[0] == lengths[2] == 0

    def test_empty(self):
        assert build_code_lengths(np.zeros(4, dtype=int)).sum() == 0

    def test_skewed_distribution_short_code_for_frequent(self):
        freqs = np.array([1000, 1, 1, 1, 1])
        lengths = build_code_lengths(freqs)
        assert lengths[0] == min(lengths[lengths > 0])

    def test_kraft_equality(self):
        """Huffman codes are complete: Kraft sum is exactly 1."""
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, 64)
        lengths = build_code_lengths(freqs)
        assert np.isclose(np.sum(2.0 ** -lengths[lengths > 0].astype(float)), 1.0)

    def test_length_limit_respected(self):
        # Exponential frequencies force long optimal codes.
        freqs = (2 ** np.arange(30)).astype(np.int64)
        lengths = build_code_lengths(freqs, max_length=12)
        assert lengths[lengths > 0].max() <= 12
        # Still a valid prefix code.
        assert np.sum(2.0 ** -lengths[lengths > 0].astype(float)) <= 1.0 + 1e-12

    def test_rejects_negative_freqs(self):
        with pytest.raises(ValueError, match="non-negative"):
            build_code_lengths(np.array([1, -1]))

    def test_rejects_alphabet_too_large_for_limit(self):
        with pytest.raises(ValueError, match="cannot all receive"):
            build_code_lengths(np.ones(100, dtype=int), max_length=6)

    def test_matches_entropy_for_dyadic(self):
        """Dyadic distributions compress exactly to entropy."""
        freqs = np.array([8, 4, 2, 1, 1])
        lengths = build_code_lengths(freqs)
        assert list(lengths) == [1, 2, 3, 4, 4]


class TestCanonicalCodewords:
    def test_prefix_free(self):
        lengths = np.array([2, 2, 2, 3, 3], dtype=np.uint8)
        cw = canonical_codewords(lengths)
        codes = [
            format(cw[i], f"0{lengths[i]}b") for i in range(len(lengths)) if lengths[i]
        ]
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert not b.startswith(a)

    def test_canonical_ordering(self):
        lengths = np.array([3, 2, 3, 2], dtype=np.uint8)
        cw = canonical_codewords(lengths)
        # Shorter codes numerically precede; equal lengths ordered by symbol.
        assert cw[1] < cw[3]
        assert cw[0] < cw[2]


class TestHuffmanTable:
    def test_round_trip(self):
        rng = np.random.default_rng(3)
        syms = rng.integers(0, 40, 5000)
        table = HuffmanTable.from_frequencies(np.bincount(syms))
        blob, nbits = table.encode(syms)
        assert np.array_equal(table.decode(blob, len(syms)), syms)

    def test_encoded_nbits_matches_encode(self):
        rng = np.random.default_rng(4)
        syms = rng.integers(0, 10, 500)
        table = HuffmanTable.from_frequencies(np.bincount(syms))
        blob, nbits = table.encode(syms)
        assert nbits == table.encoded_nbits(syms)
        assert len(blob) == (nbits + 7) // 8

    def test_compression_close_to_entropy(self):
        rng = np.random.default_rng(5)
        p = np.array([0.6, 0.2, 0.1, 0.05, 0.05])
        syms = rng.choice(5, size=20000, p=p)
        table = HuffmanTable.from_frequencies(np.bincount(syms))
        bits_per_sym = table.encoded_nbits(syms) / len(syms)
        entropy = -(p * np.log2(p)).sum()
        assert entropy <= bits_per_sym <= entropy + 1.0

    def test_serialization_round_trip(self):
        syms = np.array([0, 0, 1, 2, 2, 2, 3])
        table = HuffmanTable.from_frequencies(np.bincount(syms))
        rebuilt = HuffmanTable.deserialize_lengths(table.serialize_lengths())
        assert np.array_equal(rebuilt.codewords, table.codewords)
        blob, _ = table.encode(syms)
        assert np.array_equal(rebuilt.decode(blob, len(syms)), syms)

    def test_encode_rejects_unknown_symbol(self):
        table = HuffmanTable.from_frequencies(np.array([1, 1]))
        with pytest.raises(ValueError, match="alphabet"):
            table.encode(np.array([5]))

    def test_encode_rejects_zero_length_symbol(self):
        table = HuffmanTable.from_frequencies(np.array([1, 0, 1]))
        with pytest.raises(ValueError, match="no codeword"):
            table.encode(np.array([1]))

    def test_empty_encode(self):
        table = HuffmanTable.from_frequencies(np.array([1, 1]))
        blob, nbits = table.encode(np.empty(0, dtype=np.int64))
        assert blob == b"" and nbits == 0

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, data):
        syms = np.array(data, dtype=np.int64)
        table = HuffmanTable.from_frequencies(np.bincount(syms))
        blob, _ = table.encode(syms)
        assert np.array_equal(table.decode(blob, len(syms)), syms)
