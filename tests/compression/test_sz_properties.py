"""Property-based guarantees of the compressor.

The error-bound contract must hold for *any* finite input and any
positive bound — this is the invariant everything downstream (the error
models, the quality budgets) relies on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.sz import SZCompressor

_field = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=3, max_dims=3, min_side=2, max_side=6),
    elements=st.floats(-1e8, 1e8, allow_nan=False, allow_infinity=False),
)


# The bound contract carries a tiny relative slack: representing 2*eb in
# binary and round-half-even ties cost a few ulps (real SZ shares this).
_BOUND_SLACK = 1e-9


def _bound_limit(data: np.ndarray, eb: float) -> float:
    """The float-arithmetic ceiling of the |x - x'| <= eb contract.

    At a round-half-even tie the real-arithmetic error equals ``eb``
    exactly, and the reconstruction product ``q * (2*eb)`` can land a
    few ulps past it *at the data's magnitude* — e.g. data 7725311.0
    with eb = 1/3 reconstructs 0.67 ulp(data) beyond the bound in pure
    float64.  So the slack scales with both ``eb`` and ``max |data|``.
    """
    return (
        eb * (1 + _BOUND_SLACK)
        + 4.0 * float(np.spacing(np.max(np.abs(data), initial=1.0)))
        + 1e-12
    )


@given(_field, st.floats(1e-3, 1e3))
@example(np.full((2, 2, 2), 7725311.0), 1 / 3)  # tie at large magnitude
@settings(max_examples=50, deadline=None)
def test_abs_error_bound_always_holds(data, eb):
    comp = SZCompressor()
    recon = comp.decompress(comp.compress(data, eb))
    assert np.max(np.abs(recon - data)) <= _bound_limit(data, eb)


@given(_field, st.floats(1e-2, 10.0))
@settings(max_examples=30, deadline=None)
def test_round_trip_deterministic(data, eb):
    comp = SZCompressor()
    b1 = comp.compress(data, eb)
    b2 = comp.compress(data, eb)
    assert b1.payloads["codes"] == b2.payloads["codes"]
    assert np.array_equal(comp.decompress(b1), comp.decompress(b2))


@given(_field)
@settings(max_examples=30, deadline=None)
def test_idempotent_on_reconstruction(data):
    """Compressing an already-reconstructed field at the same bound is lossless.

    Reconstructed values sit exactly on the quantization lattice, so a
    second pass reproduces them bit-for-bit — a known fixed-point
    property of lattice quantizers.
    """
    comp = SZCompressor()
    eb = 0.5
    recon1 = comp.decompress(comp.compress(data, eb))
    recon2 = comp.decompress(comp.compress(recon1, eb))
    assert np.allclose(recon1, recon2, rtol=0, atol=1e-9)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=(4, 4, 4),
        elements=st.floats(0.0, 1e6, allow_nan=False),
    ).filter(lambda a: (a > 0).all()),
    st.floats(1e-3, 0.5),
)
@settings(max_examples=30, deadline=None)
def test_pw_rel_bound_always_holds(data, rel):
    comp = SZCompressor(mode="pw_rel")
    recon = comp.decompress(comp.compress(data, rel))
    assert np.max(np.abs(recon / data - 1.0)) <= rel * (1 + 1e-9) + 1e-12


@given(_field, st.floats(1e-2, 10.0))
@example(np.full((2, 2, 2), 7725311.0), 1 / 3)  # tie at large magnitude
@settings(max_examples=20, deadline=None)
def test_dual_and_classic_engines_agree_on_bound(data, eb):
    """Both quantization orderings satisfy the same contract."""
    for engine in ("dual", "classic"):
        comp = SZCompressor(engine=engine)
        recon = comp.decompress(comp.compress(data, eb))
        assert np.max(np.abs(recon - data)) <= _bound_limit(data, eb)
