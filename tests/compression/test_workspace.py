"""The workspace arena and the fused-kernel equivalence contract.

The fused compress path (reusable scratch buffers, in-place Lorenzo,
single narrowing pass) must be a pure performance change: payloads
byte-identical to composing the unfused public primitives exactly as
the original implementation did, across engines, modes and codecs.
"""

from __future__ import annotations

import pickle
import zlib
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.codecs import _minimal_uint_dtype, get_codec
from repro.compression.lorenzo import lorenzo_transform, lorenzo_transform_inplace
from repro.compression.quantizer import encode_residuals, quantize_abs
from repro.compression.sz import SZCompressor, _zigzag, decompress
from repro.compression.workspace import Workspace


def reference_compress_payloads(
    data: np.ndarray, eb: float, mode: str, codec: str, radius: int
) -> dict[str, bytes]:
    """The unfused reference pipeline, composed from public primitives.

    Mirrors the original (pre-workspace) implementation step for step:
    float64 upcast, allocating quantize, ``np.diff``-style Lorenzo,
    allocating residual encode, codec over int64 codes.  The outlier
    position channel follows the serialization contract: positions
    narrowed to the smallest uint covering the block size, prefixed by
    a 1-byte itemsize tag.
    """
    work = np.asarray(data, dtype=np.float64)
    if mode == "pw_rel":
        abs_eb = float(np.log1p(eb))
        work = np.log(work)
    else:
        abs_eb = eb
    q = quantize_abs(work, abs_eb)
    residuals = lorenzo_transform(q)
    qr = encode_residuals(residuals.ravel(), radius)
    pos_dt = _minimal_uint_dtype(max(int(qr.codes.size) - 1, 0))
    pos = qr.outlier_positions.astype(pos_dt)
    return {
        "codes": get_codec(codec).encode(qr.codes),
        "outlier_pos": (
            bytes([pos_dt.itemsize]) + zlib.compress(pos.tobytes(), 6)
            if pos.size
            else b""
        ),
        "outlier_val": (
            zlib.compress(_zigzag(qr.outlier_values).tobytes(), 6)
            if qr.outlier_values.size
            else b""
        ),
    }


class TestWorkspace:
    def test_views_are_reused_not_reallocated(self):
        ws = Workspace()
        a = ws.request("x", (4, 4), np.int64)
        b = ws.request("x", (4, 4), np.int64)
        assert a.base is b.base

    def test_distinct_names_never_alias(self):
        ws = Workspace()
        a = ws.request("a", (8,), np.int64)
        b = ws.request("b", (8,), np.int64)
        a[:] = 1
        b[:] = 2
        assert (a == 1).all()

    def test_grows_to_largest_request(self):
        ws = Workspace()
        ws.request("x", (4,), np.float64)
        big = ws.request("x", (100,), np.float64)
        assert big.size == 100
        small = ws.request("x", (10,), np.float64)
        assert small.base is big.base

    def test_growth_headroom_absorbs_ragged_batches(self):
        ws = Workspace()
        ws.request("x", (100,), np.float64)
        base = ws.request("x", (110,), np.float64).base  # within headroom
        assert ws.request("x", (100,), np.float64).base is base

    def test_same_name_different_dtypes_are_separate_slots(self):
        ws = Workspace()
        a = ws.request("x", (8,), np.int64)
        b = ws.request("x", (8,), np.float64)
        assert a.dtype == np.int64 and b.dtype == np.float64

    def test_clear_and_nbytes(self):
        ws = Workspace()
        ws.request("x", (128,), np.float64)
        assert ws.nbytes() >= 128 * 8  # allocation includes growth headroom
        ws.clear()
        assert ws.nbytes() == 0


class TestFusedKernels:
    def test_lorenzo_inplace_matches_diff_chain(self):
        rng = np.random.default_rng(0)
        for shape in ((17,), (9, 13), (5, 6, 7)):
            arr = rng.integers(-1000, 1000, shape)
            expected = arr.copy()
            for axis in range(arr.ndim):
                pre = np.zeros(
                    [1 if ax == axis else s for ax, s in enumerate(expected.shape)],
                    dtype=expected.dtype,
                )
                expected = np.diff(expected, axis=axis, prepend=pre)
            out = lorenzo_transform_inplace(arr.copy())
            assert np.array_equal(out, expected)

    def test_lorenzo_inplace_rejects_bad_scratch(self):
        with pytest.raises(ValueError, match="scratch"):
            lorenzo_transform_inplace(
                np.zeros((4, 4), dtype=np.int64), np.zeros(2, dtype=np.int64)
            )

    @pytest.mark.parametrize("engine", ["dual", "classic"])
    @pytest.mark.parametrize("codec", ["zlib", "huffman", "raw"])
    def test_payloads_match_reference_across_codecs(self, engine, codec, rng=None):
        rng = np.random.default_rng(3)
        shape = (6, 5, 4) if engine == "classic" else (12, 10, 8)
        data = rng.normal(0, 10, shape)
        comp = SZCompressor(codec=codec, engine=engine)
        block = comp.compress(data, 0.05)
        if engine == "dual":
            ref = reference_compress_payloads(data, 0.05, "abs", codec, comp.radius)
            assert block.payloads == ref
        recon = decompress(block)
        assert np.max(np.abs(recon - data)) <= 0.05 * (1 + 1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
            elements=st.floats(-1e7, 1e7, allow_nan=False, allow_infinity=False),
        ),
        st.floats(1e-3, 1e2),
        st.sampled_from(["zlib", "huffman", "raw"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_fused_payloads_byte_identical_to_reference(self, data, eb, codec):
        comp = SZCompressor(codec=codec)
        block = comp.compress(data, eb)
        ref = reference_compress_payloads(data, eb, "abs", codec, comp.radius)
        assert block.payloads == ref

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=(4, 4, 4),
            elements=st.floats(1e-3, 1e6, allow_nan=False),
        ),
        st.floats(1e-3, 0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_fused_pw_rel_byte_identical_to_reference(self, data, rel):
        comp = SZCompressor(mode="pw_rel")
        block = comp.compress(data, rel)
        ref = reference_compress_payloads(data, rel, "pw_rel", "zlib", comp.radius)
        assert block.payloads == ref

    def test_float32_input_byte_identical_to_reference(self):
        rng = np.random.default_rng(11)
        data = rng.normal(0, 5, (10, 9, 8)).astype(np.float32)
        comp = SZCompressor()
        block = comp.compress(data, 0.01)
        ref = reference_compress_payloads(data, 0.01, "abs", "zlib", comp.radius)
        assert block.payloads == ref
        assert block.source_itemsize == 4

    def test_empty_outlier_channels_store_empty_bytes(self):
        data = np.linspace(0.0, 1.0, 64).reshape(4, 4, 4)
        block = SZCompressor().compress(data, 0.01)
        assert block.n_outliers == 0
        assert block.payloads["outlier_pos"] == b""
        assert block.payloads["outlier_val"] == b""
        assert np.max(np.abs(decompress(block) - data)) <= 0.01 * (1 + 1e-9)

    def test_legacy_zlib_empty_channels_still_decode(self):
        """Blocks written before the empty-payload short-circuit load fine."""
        data = np.linspace(0.0, 1.0, 64).reshape(4, 4, 4)
        block = SZCompressor().compress(data, 0.01)
        block.payloads["outlier_pos"] = zlib.compress(b"", 6)
        block.payloads["outlier_val"] = zlib.compress(b"", 6)
        assert np.max(np.abs(decompress(block) - data)) <= 0.01 * (1 + 1e-9)

    def test_outliers_roundtrip_through_fused_path(self):
        rng = np.random.default_rng(5)
        comp = SZCompressor(radius=16)  # tiny radius forces outliers
        data = rng.normal(0, 100, (8, 8, 8))
        block = comp.compress(data, 0.01)
        assert block.n_outliers > 0
        assert block.payloads["outlier_pos"] != b""
        recon = decompress(block)
        assert np.max(np.abs(recon - data)) <= 0.01 * (1 + 1e-9) + 1e-12

    def test_repeated_compress_reuses_workspace(self):
        comp = SZCompressor()
        rng = np.random.default_rng(7)
        data = rng.normal(0, 1, (16, 16, 16))
        b1 = comp.compress(data, 0.01)
        nbytes_after_first = comp.workspace.nbytes()
        b2 = comp.compress(data, 0.01)
        assert comp.workspace.nbytes() == nbytes_after_first
        assert b1.payloads == b2.payloads

    def test_explicit_workspace_compress_many(self):
        comp = SZCompressor()
        ws = Workspace()
        rng = np.random.default_rng(9)
        views = [rng.normal(0, 1, (8, 8, 8)) for _ in range(4)]
        blocks = comp.compress_many(views, [0.01] * 4, workspace=ws)
        assert ws.nbytes() > 0
        singles = [comp.compress(v, 0.01) for v in views]
        for b, s in zip(blocks, singles):
            assert b.payloads == s.payloads


class TestThreadAndPickleSafety:
    def test_compressor_pickles_without_workspace_state(self):
        comp = SZCompressor(codec="huffman")
        comp.compress(np.linspace(0, 1, 64), 0.01)  # populate workspace
        clone = pickle.loads(pickle.dumps(comp))
        assert clone.mode == comp.mode and clone.codec.name == "huffman"
        data = np.linspace(0, 2, 128)
        assert clone.compress(data, 0.01).payloads == comp.compress(data, 0.01).payloads

    def test_shared_compressor_is_thread_safe(self):
        """Concurrent compress calls on one instance must not interfere:
        each thread gets its own workspace via threading.local."""
        comp = SZCompressor()
        rng = np.random.default_rng(13)
        arrays = [rng.normal(0, 1, (12, 12, 12)) for _ in range(16)]
        expected = [comp.compress(a, 0.01).payloads for a in arrays]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda a: comp.compress(a, 0.01).payloads, arrays))
        assert results == expected
