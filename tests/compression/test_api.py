"""The pluggable compressor backbone: specs, registry, capabilities.

The load-bearing guarantee is byte-identity: resolving a spec through
the registry must produce payloads equal to direct construction, for
every entropy codec and family — otherwise the refactor silently
changed the compressed streams.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    REGISTRY,
    AdaptiveSZCompressor,
    CompressorCapabilities,
    CompressorSpec,
    SZCompressor,
    UnsupportedCapabilityError,
    ZFPLikeCompressor,
    capabilities_of,
    decompress_any,
    resolve_compressor,
    spec_of,
)


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(11)
    base = rng.normal(0.0, 1.0, (12, 12, 12))
    return np.exp(base).astype(np.float32)  # lognormal-ish, positive


class TestSpec:
    def test_params_normalized_and_hashable(self):
        a = CompressorSpec("sz", {"codec": "huffman", "mode": "abs"})
        b = CompressorSpec.make("sz", mode="abs", codec="huffman")
        assert a == b
        assert hash(a) == hash(b)
        assert a.options == {"codec": "huffman", "mode": "abs"}

    def test_parse_grammar(self):
        spec = CompressorSpec.parse("sz:codec=huffman,radius=256")
        assert spec.family == "sz"
        assert spec.options == {"codec": "huffman", "radius": 256}
        assert CompressorSpec.parse("zfp_like:rate=8.5").options == {"rate": 8.5}
        assert CompressorSpec.parse("sz").options == {}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            CompressorSpec.parse("sz:codec")
        with pytest.raises(ValueError, match="empty"):
            CompressorSpec.parse("")

    def test_json_round_trip(self):
        spec = CompressorSpec.sz(codec="huffman", radius=128)
        again = CompressorSpec.from_dict(spec.to_dict())
        assert again == spec
        # to_dict is JSON-native (what the stream ledger stores).
        import json

        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_label(self):
        assert CompressorSpec("zfp_like").label == "zfp_like"
        assert "rate=8.0" in CompressorSpec.zfp_like().label


class TestRegistry:
    def test_families_registered(self):
        assert {"sz", "zfp_like", "sz_adaptive"} <= set(REGISTRY.families())
        assert REGISTRY.default().family == "sz"

    def test_canonical_fills_defaults(self):
        canon = REGISTRY.canonical(CompressorSpec("sz", {"codec": "huffman"}))
        assert canon.options["codec"] == "huffman"
        assert canon.options["mode"] == "abs"  # default filled in

    def test_unknown_family_and_param_rejected(self):
        with pytest.raises(ValueError, match="unknown compressor family"):
            REGISTRY.create("mystery")
        with pytest.raises(ValueError, match="unknown parameter"):
            REGISTRY.create("sz:level=9")

    def test_create_default_is_sz(self):
        comp = REGISTRY.create()
        assert isinstance(comp, SZCompressor)
        assert comp.codec.name == "zlib"

    def test_instance_spec_round_trips_through_registry(self):
        comp = SZCompressor(codec="huffman", radius=256)
        again = REGISTRY.create(comp.spec)
        assert again.spec == comp.spec

    def test_resolve_compressor_passthrough_and_specs(self):
        inst = SZCompressor()
        assert resolve_compressor(inst) is inst
        assert isinstance(resolve_compressor("sz_adaptive")._inner, AdaptiveSZCompressor)
        assert resolve_compressor(None).spec == REGISTRY.canonical(CompressorSpec("sz"))


class TestByteIdentity:
    """Registry adapters must be byte-identical to direct use."""

    @settings(max_examples=20, deadline=None)
    @given(
        codec=st.sampled_from(["zlib", "huffman", "raw"]),
        eb=st.floats(min_value=1e-4, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sz_all_codecs(self, codec, eb, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 1, (6, 6, 6))
        direct = SZCompressor(codec=codec).compress(data, eb)
        via_registry = REGISTRY.create(f"sz:codec={codec}").compress(data, eb)
        assert via_registry.payloads == direct.payloads
        assert via_registry.nbytes == direct.nbytes

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.sampled_from([2.0, 4.0, 8.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_zfp_like(self, rate, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 1, (8, 8, 8))
        direct = ZFPLikeCompressor(rate=rate).compress(data)
        via_registry = REGISTRY.create(f"zfp_like:rate={rate}").compress(data, eb=0.1)
        assert via_registry.payload == direct.payload
        assert np.array_equal(via_registry.exponents, direct.exponents)

    def test_sz_adaptive(self, field):
        direct = AdaptiveSZCompressor(codec="zlib").compress(field[:8, :8, :8], 1e-3)
        adapted = REGISTRY.create("sz_adaptive").compress(field[:8, :8, :8], 1e-3)
        assert adapted.payloads == direct.payloads


class TestDecompressAny:
    def test_dispatch_per_family(self, field):
        eb = 1e-3
        for spec in ("sz", "sz:codec=huffman", "zfp_like:rate=12", "sz_adaptive"):
            comp = resolve_compressor(spec)
            data = field if spec != "sz_adaptive" else field[:8, :8, :8]
            block = comp.compress(data, eb)
            recon = decompress_any(block)
            assert recon.shape == data.shape
            # Error-bounded families honour eb; the fixed-rate family
            # merely reconstructs.
            if capabilities_of(comp).error_bounded:
                assert float(np.abs(recon - data.astype(np.float64)).max()) <= eb + 1e-12

    def test_unknown_block_type_rejected(self):
        with pytest.raises(TypeError, match="decompresses"):
            decompress_any(object())


class TestCapabilities:
    def test_declared(self):
        sz = capabilities_of(SZCompressor())
        assert sz.error_bounded and sz.supports_estimate and sz.supports_workspace
        assert not sz.fixed_rate
        zfp = capabilities_of(resolve_compressor("zfp_like"))
        assert zfp.fixed_rate and not zfp.error_bounded

    def test_raw_zfp_instance_declares_fixed_rate(self):
        """A hand-constructed ZFPLikeCompressor (not the adapter) must hit
        the typed capability gate, not a TypeError deep in calibration."""
        from repro.models.calibration import calibrate_rate_model

        raw = ZFPLikeCompressor(rate=8.0)
        caps = capabilities_of(raw)
        assert caps.fixed_rate and not caps.error_bounded
        parts = [np.random.default_rng(0).random((8, 8, 8))]
        with pytest.raises(UnsupportedCapabilityError, match="error_bounded"):
            calibrate_rate_model(parts, compressor=raw, eb_scale=0.01)

    def test_legacy_fallback_assumes_error_bounded(self):
        class Legacy:
            def compress(self, data, eb):
                raise NotImplementedError

        caps = capabilities_of(Legacy())
        assert caps.error_bounded
        assert not caps.supports_estimate

    def test_require_raises_typed_error(self):
        caps = CompressorCapabilities()
        with pytest.raises(UnsupportedCapabilityError, match="error_bounded"):
            caps.require("error_bounded", "testing")

    def test_spec_of_instances(self):
        assert spec_of(SZCompressor()).family == "sz"
        assert spec_of(object()) is None

    def test_adapters_picklable(self, field):
        # Process backends pickle compressors into workers.
        comp = resolve_compressor("zfp_like:rate=6")
        clone = pickle.loads(pickle.dumps(comp))
        data = field
        assert clone.compress(data, 0.1).payload == comp.compress(data, 0.1).payload
