"""The kernel array-API boundary and its cross-backend byte-identity.

Three layers of guarantee, weakest to strongest:

1. op-level — each :class:`NumpyKernels` method matches the scalar /
   per-block reference primitives it batches;
2. path-level — batched ``compress_many`` produces payloads
   byte-identical to looping single-block ``compress``, across codecs,
   shapes (odd sides, 1-voxel slabs), dtypes and thread counts;
3. backend-level — every registered backend (numba when installed)
   produces the same bytes as the NumPy reference oracle.

The numba leg runs in CI with numba installed; locally it skips when
the package is absent, and the ``kernels=auto`` spec must degrade to
NumPy silently while ``kernels=numba`` must fail loudly.
"""

from __future__ import annotations

import importlib.util
import pickle
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import kernels as kernels_mod
from repro.compression.kernels import (
    KERNEL_CHOICES,
    ArrayKernels,
    NumpyKernels,
    available_kernels,
    get_kernels,
    register_kernels,
    unzigzag,
    zigzag,
)
from repro.compression.lorenzo import lorenzo_transform
from repro.compression.quantizer import encode_residuals
from repro.compression.sz import SZCompressor, decompress
from repro.compression.workspace import Workspace

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

KERN = NumpyKernels()


# -- op level: NumpyKernels vs the unbatched reference -----------------------


class TestZigzag:
    def test_interleaves_small_ints(self):
        v = np.array([0, -1, 1, -2, 2, -3], dtype=np.int64)
        assert zigzag(v).tolist() == [0, 1, 2, 3, 4, 5]

    def test_roundtrip_extremes(self):
        v = np.array(
            [0, 1, -1, 2**62, -(2**62), 2**63 - 1, -(2**63)], dtype=np.int64
        )
        assert np.array_equal(unzigzag(zigzag(v)), v)

    @given(hnp.arrays(dtype=np.int64, shape=st.integers(0, 64)))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, v):
        assert np.array_equal(unzigzag(zigzag(v)), v)
        assert zigzag(v).dtype == np.uint64


class TestQuantizeKernel:
    def test_matches_rint_and_cast(self):
        rng = np.random.default_rng(0)
        work = rng.normal(0, 100, (3, 50))
        lattice = np.empty(work.shape, dtype=np.int64)
        assert KERN.quantize(work.copy(), lattice) is True
        assert np.array_equal(lattice, np.rint(work).astype(np.int64))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf, 1e300])
    def test_reports_unrepresentable_without_raising(self, bad):
        work = np.ones((2, 8))
        work[1, 3] = bad
        lattice = np.empty(work.shape, dtype=np.int64)
        assert KERN.quantize(work, lattice) is False

    def test_mask_scratch_is_optional(self):
        work = np.ones((2, 8))
        lattice = np.empty(work.shape, dtype=np.int64)
        mask = np.empty(work.shape, dtype=np.bool_)
        assert KERN.quantize(work.copy(), lattice, mask) is True
        assert mask.all()


class TestLorenzoKernel:
    @pytest.mark.parametrize("shape", [(7, 5, 3), (1, 1, 1), (8, 1, 4), (2, 9, 1)])
    def test_batch_matches_per_block_transform(self, shape):
        rng = np.random.default_rng(1)
        batch = rng.integers(-1000, 1000, (4,) + shape)
        expected = np.stack([lorenzo_transform(b) for b in batch])
        got = batch.copy()
        KERN.lorenzo(got)
        assert np.array_equal(got, expected)

    def test_trailing_singleton_padding_is_identity(self):
        rng = np.random.default_rng(2)
        flat = rng.integers(-50, 50, (3, 17))
        as_3d = flat.reshape(3, 17, 1, 1).copy()
        expected = np.stack([lorenzo_transform(row) for row in flat])
        KERN.lorenzo(as_3d)
        assert np.array_equal(as_3d.reshape(3, 17), expected)


class TestEncodeResidualsKernel:
    def test_matches_per_block_encode(self):
        rng = np.random.default_rng(3)
        radius = 8
        res = rng.integers(-30, 30, (5, 40))
        expected = [encode_residuals(row.copy(), radius) for row in res]
        got = res.copy()
        counts, pos, val = KERN.encode_residuals(got, radius)
        assert counts.tolist() == [ref.outlier_positions.size for ref in expected]
        lo = 0
        for b, ref in enumerate(expected):
            hi = lo + int(counts[b])
            assert np.array_equal(got[b], ref.codes)
            assert np.array_equal(pos[lo:hi], ref.outlier_positions)
            assert np.array_equal(val[lo:hi], ref.outlier_values)
            lo = hi

    def test_scratch_masks_are_optional_hints(self):
        rng = np.random.default_rng(4)
        res = rng.integers(-30, 30, (3, 16))
        fits = np.empty(res.shape, dtype=np.bool_)
        misfit = np.empty(res.shape, dtype=np.bool_)
        a = KERN.encode_residuals(res.copy(), 8, fits, misfit)
        b = KERN.encode_residuals(res.copy(), 8)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestNarrowAndBytePlanes:
    def test_narrow_is_exact_cast(self):
        src = np.array([[0, 255, 256, 65535]], dtype=np.int64)
        out = np.empty(src.shape, dtype=np.uint16)
        KERN.narrow(src, out)
        assert out.tolist() == [[0, 255, 256, 65535]]

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32, np.uint64])
    def test_byte_planes_roundtrip(self, dtype):
        rng = np.random.default_rng(5)
        info = np.iinfo(dtype)
        v = rng.integers(0, int(info.max), 33, dtype=dtype)
        k = v.dtype.itemsize
        out = np.empty((k, v.size), dtype=np.uint8)
        KERN.byte_planes(v, out)
        rebuilt = np.zeros(v.size, dtype=np.uint64)
        for plane in range(k):
            rebuilt |= out[plane].astype(np.uint64) << np.uint64(8 * plane)
        assert np.array_equal(rebuilt.astype(dtype), v)
        # Little-endian planes are exactly the C-contiguous byte layout.
        assert out.tobytes(order="F") == v.astype(v.dtype.newbyteorder("<")).tobytes()

    def test_byte_planes_validates_inputs(self):
        with pytest.raises(ValueError, match="unsigned"):
            KERN.byte_planes(
                np.ones(4, dtype=np.int64), np.empty((8, 4), dtype=np.uint8)
            )
        with pytest.raises(ValueError, match="shape"):
            KERN.byte_planes(
                np.ones(4, dtype=np.uint16), np.empty((1, 4), dtype=np.uint8)
            )


# -- registry and selection ---------------------------------------------------


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_kernels()
        assert get_kernels("numpy").name == "numpy"
        assert isinstance(get_kernels("numpy"), ArrayKernels)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels backend"):
            get_kernels("cuda")

    def test_register_rejects_non_implementation(self):
        with pytest.raises(TypeError, match="ArrayKernels"):
            register_kernels(object())

    def test_auto_degrades_to_numpy_without_numba(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_load_numba_kernels", lambda: None)
        assert get_kernels("auto").name == "numpy"

    def test_explicit_numba_fails_loudly_without_numba(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_load_numba_kernels", lambda: None)
        with pytest.raises(ValueError, match="numba is not importable"):
            get_kernels("numba")

    def test_compressor_rejects_unknown_kernels_key(self):
        with pytest.raises(ValueError, match="kernels"):
            SZCompressor(kernels="cuda")

    def test_compressor_numba_request_fails_at_construction(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_load_numba_kernels", lambda: None)
        with pytest.raises(ValueError, match="numba is not importable"):
            SZCompressor(kernels="numba")

    def test_compressor_auto_resolves_and_reports_backend(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_load_numba_kernels", lambda: None)
        comp = SZCompressor()  # kernels="auto"
        assert comp.kernel_backend == "numpy"
        assert dict(comp.spec.params)["kernels"] == "auto"

    def test_kernel_choice_recreated_through_pickle(self):
        comp = SZCompressor(kernels="numpy")
        clone = pickle.loads(pickle.dumps(comp))
        assert clone.kernels == "numpy"
        data = np.linspace(0, 1, 64).reshape(4, 4, 4)
        assert clone.compress(data, 0.01).payloads == comp.compress(data, 0.01).payloads


# -- path level: batched == single-block, across everything -------------------


def _payloads(blocks):
    return [b.payloads for b in blocks]


class TestBatchedByteIdentity:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=7),
            elements=st.floats(-1e7, 1e7, allow_nan=False, allow_infinity=False),
        ),
        st.floats(1e-3, 1e2),
        st.sampled_from(["zlib", "huffman", "raw"]),
        st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_compress_many_matches_single_compress(self, data, eb, codec, n_blocks):
        comp = SZCompressor(codec=codec, kernels="numpy")
        views = [data] * n_blocks
        batched = comp.compress_many(views, [eb] * n_blocks)
        singles = [comp.compress(v, eb) for v in views]
        assert _payloads(batched) == _payloads(singles)

    @pytest.mark.parametrize(
        "shape", [(1,), (3,), (5, 1), (1, 1, 7), (4, 4, 4), (7, 5, 3)]
    )
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_odd_shapes_and_dtypes(self, shape, dtype):
        rng = np.random.default_rng(7)
        views = [rng.normal(0, 10, shape).astype(dtype) for _ in range(3)]
        comp = SZCompressor()
        batched = comp.compress_many(views, [0.01] * 3)
        singles = [comp.compress(v, 0.01) for v in views]
        assert _payloads(batched) == _payloads(singles)
        for blk, v in zip(batched, views):
            assert np.max(np.abs(decompress(blk) - v)) <= 0.01 * (1 + 1e-9)

    def test_mixed_shapes_group_correctly(self):
        rng = np.random.default_rng(8)
        shapes = [(6, 5, 4), (3, 3), (6, 5, 4), (17,), (3, 3)]
        views = [rng.normal(0, 5, s) for s in shapes]
        ebs = [0.01, 0.02, 0.05, 0.01, 0.03]
        comp = SZCompressor(codec="huffman")
        batched = comp.compress_many(views, ebs)
        singles = [comp.compress(v, e) for v, e in zip(views, ebs)]
        assert _payloads(batched) == _payloads(singles)
        for blk, s in zip(batched, shapes):
            assert blk.shape == s

    def test_thread_fanout_preserves_bytes_and_order(self):
        rng = np.random.default_rng(9)
        views = [rng.normal(0, 1, (8, 8, 8)) for _ in range(6)]
        comp = SZCompressor()
        serial = comp.compress_many(views, [0.01] * 6, threads=1)
        fanned = comp.compress_many(views, [0.01] * 6, threads=4)
        assert _payloads(serial) == _payloads(fanned)

    def test_outlier_heavy_blocks_batch_identically(self):
        rng = np.random.default_rng(10)
        comp = SZCompressor(radius=16)  # tiny radius forces outliers
        views = [rng.normal(0, 100, (6, 6, 6)) for _ in range(4)]
        batched = comp.compress_many(views, [0.01] * 4)
        singles = [comp.compress(v, 0.01) for v in views]
        assert _payloads(batched) == _payloads(singles)
        assert any(b.n_outliers for b in batched)

    def test_pw_rel_mode_batches_identically(self):
        rng = np.random.default_rng(11)
        comp = SZCompressor(mode="pw_rel")
        views = [np.abs(rng.normal(10, 3, (5, 5, 5))) + 0.1 for _ in range(3)]
        batched = comp.compress_many(views, [0.05] * 3)
        singles = [comp.compress(v, 0.05) for v in views]
        assert _payloads(batched) == _payloads(singles)

    def test_classic_engine_still_loops(self):
        rng = np.random.default_rng(12)
        comp = SZCompressor(engine="classic")
        views = [rng.normal(0, 1, (4, 4, 4)) for _ in range(2)]
        batched = comp.compress_many(views, [0.05] * 2)
        singles = [comp.compress(v, 0.05) for v in views]
        assert _payloads(batched) == _payloads(singles)


class TestOutlierPosFormat:
    def test_positions_narrowed_to_block_size(self):
        rng = np.random.default_rng(13)
        comp = SZCompressor(radius=16)
        block = comp.compress(rng.normal(0, 100, (6, 6, 6)), 0.01)
        assert block.n_outliers > 0
        blob = block.payloads["outlier_pos"]
        assert blob[0] == 1  # 216 values -> positions fit uint8
        stored = np.frombuffer(zlib.decompress(blob[1:]), dtype=np.uint8)
        assert stored.size == block.n_outliers
        big = comp.compress(rng.normal(0, 100, (8, 8, 8)), 0.01)
        assert big.payloads["outlier_pos"][0] == 2  # 512 values -> uint16

    def test_legacy_int64_position_blobs_still_decode(self):
        rng = np.random.default_rng(14)
        comp = SZCompressor(radius=16)
        data = rng.normal(0, 100, (6, 6, 6))
        block = comp.compress(data, 0.01)
        assert block.n_outliers > 0
        blob = block.payloads["outlier_pos"]
        pos = np.frombuffer(
            zlib.decompress(blob[1:]), dtype=f"u{blob[0]}"
        ).astype(np.int64)
        legacy = zlib.compress(pos.tobytes(), 6)
        assert legacy[0] == 0x78  # zlib magic, distinct from any width tag
        block.payloads["outlier_pos"] = legacy
        recon = decompress(block)
        assert np.max(np.abs(recon - data)) <= 0.01 * (1 + 1e-9) + 1e-12


# -- backend level: numba == numpy, byte for byte -----------------------------


@needs_numba
class TestNumbaBackend:
    def test_numba_listed_and_resolvable(self):
        assert "numba" in available_kernels()
        assert get_kernels("numba").name == "numba"
        assert get_kernels("auto").name == "numba"

    def test_op_level_equivalence(self):
        rng = np.random.default_rng(15)
        nb = get_kernels("numba")
        work = rng.normal(0, 1000, (4, 7 * 5 * 3))
        lat_np = np.empty(work.shape, dtype=np.int64)
        lat_nb = np.empty(work.shape, dtype=np.int64)
        assert KERN.quantize(work.copy(), lat_np) == nb.quantize(work.copy(), lat_nb)
        assert np.array_equal(lat_np, lat_nb)
        a = lat_np.reshape(4, 7, 5, 3).copy()
        b = lat_np.reshape(4, 7, 5, 3).copy()
        KERN.lorenzo(a)
        nb.lorenzo(b)
        assert np.array_equal(a, b)
        ra, rb = a.reshape(4, -1).copy(), b.reshape(4, -1).copy()
        out_np = KERN.encode_residuals(ra, 8)
        out_nb = nb.encode_residuals(rb, 8)
        assert np.array_equal(ra, rb)
        for x, y in zip(out_np, out_nb):
            assert np.array_equal(x, y)

    def test_quantize_reports_nonfinite(self):
        nb = get_kernels("numba")
        work = np.ones((2, 8))
        work[0, 1] = np.nan
        assert nb.quantize(work.copy(), np.empty(work.shape, np.int64)) is False
        work[0, 1] = 1e300
        assert nb.quantize(work.copy(), np.empty(work.shape, np.int64)) is False

    @pytest.mark.parametrize("codec", ["zlib", "huffman", "raw"])
    def test_payload_bytes_match_numpy_backend(self, codec):
        rng = np.random.default_rng(16)
        views = [rng.normal(0, 10, (7, 6, 5)) for _ in range(4)]
        views += [rng.normal(0, 10, (9, 1, 3)).astype(np.float32)]
        ebs = [0.01, 0.5, 1e-4, 0.01, 0.02]
        ref = SZCompressor(codec=codec, kernels="numpy")
        alt = SZCompressor(codec=codec, kernels="numba")
        assert _payloads(ref.compress_many(views, ebs)) == _payloads(
            alt.compress_many(views, ebs)
        )

    def test_outlier_heavy_bytes_match(self):
        rng = np.random.default_rng(17)
        views = [rng.normal(0, 100, (8, 8, 8)) for _ in range(3)]
        ref = SZCompressor(radius=16, kernels="numpy")
        alt = SZCompressor(radius=16, kernels="numba")
        a = ref.compress_many(views, [0.01] * 3)
        b = alt.compress_many(views, [0.01] * 3)
        assert any(blk.n_outliers for blk in a)
        assert _payloads(a) == _payloads(b)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        ),
        st.floats(1e-3, 1e1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_bytes_match_numpy_backend(self, data, eb):
        ref = SZCompressor(kernels="numpy")
        alt = SZCompressor(kernels="numba")
        ws = Workspace()
        a = ref.compress_many([data], [eb], workspace=ws)
        b = alt.compress_many([data], [eb], workspace=ws)
        assert _payloads(a) == _payloads(b)


def test_kernel_choices_cover_registry_names():
    assert set(available_kernels()) <= set(KERNEL_CHOICES)
