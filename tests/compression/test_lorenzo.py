"""Lorenzo transform: exact inversion and predictor semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.lorenzo import (
    classic_sz_quantize,
    lorenzo_inverse,
    lorenzo_transform,
)


class TestTransformInverse:
    @pytest.mark.parametrize("shape", [(17,), (5, 9), (4, 6, 5)])
    def test_exact_round_trip_int(self, shape):
        rng = np.random.default_rng(0)
        data = rng.integers(-1000, 1000, shape).astype(np.int64)
        assert np.array_equal(lorenzo_inverse(lorenzo_transform(data)), data)

    def test_1d_residual_is_first_difference(self):
        data = np.array([3, 7, 2, 2], dtype=np.int64)
        assert np.array_equal(lorenzo_transform(data), [3, 4, -5, 0])

    def test_2d_residual_matches_lorenzo_definition(self):
        rng = np.random.default_rng(1)
        d = rng.integers(0, 50, (6, 7)).astype(np.int64)
        r = lorenzo_transform(d)
        dp = np.pad(d, ((1, 0), (1, 0)))
        expected = dp[1:, 1:] - dp[:-1, 1:] - dp[1:, :-1] + dp[:-1, :-1]
        assert np.array_equal(r, expected)

    def test_3d_residual_matches_inclusion_exclusion(self):
        rng = np.random.default_rng(2)
        d = rng.integers(0, 50, (4, 5, 6)).astype(np.int64)
        r = lorenzo_transform(d)
        dp = np.pad(d, ((1, 0), (1, 0), (1, 0)))
        expected = (
            dp[1:, 1:, 1:]
            - dp[:-1, 1:, 1:]
            - dp[1:, :-1, 1:]
            - dp[1:, 1:, :-1]
            + dp[:-1, :-1, 1:]
            + dp[:-1, 1:, :-1]
            + dp[1:, :-1, :-1]
            - dp[:-1, :-1, :-1]
        )
        assert np.array_equal(r, expected)

    def test_constant_field_residuals_sparse(self):
        """A constant field has nonzero residual only at the corner."""
        d = np.full((5, 5, 5), 9, dtype=np.int64)
        r = lorenzo_transform(d)
        assert r[0, 0, 0] == 9
        assert np.count_nonzero(r) == np.count_nonzero(
            np.abs(r)
        )  # sanity
        # all interior residuals vanish
        assert np.count_nonzero(r[1:, 1:, 1:]) == 0

    def test_smooth_data_gives_small_residuals(self):
        x = np.arange(20, dtype=np.int64)
        d = x[:, None, None] + x[None, :, None] * 2 + x[None, None, :] * 3
        r = lorenzo_transform(d)
        # A trilinear ramp is exactly predicted away from the boundary.
        assert np.count_nonzero(r[1:, 1:, 1:]) == 0

    def test_rejects_4d(self):
        with pytest.raises(ValueError, match="1-3 dimensions"):
            lorenzo_transform(np.zeros((2, 2, 2, 2)))
        with pytest.raises(ValueError, match="1-3 dimensions"):
            lorenzo_inverse(np.zeros((2, 2, 2, 2)))

    @given(
        hnp.arrays(
            dtype=np.int64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
            elements=st.integers(-10_000, 10_000),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, data):
        assert np.array_equal(lorenzo_inverse(lorenzo_transform(data)), data)


class TestClassicSZ:
    def test_error_bound_holds(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 5, (8, 8, 8))
        eb = 0.2
        _codes, recon = classic_sz_quantize(data, eb, radius=32768)
        assert np.max(np.abs(recon - data)) <= eb + 1e-12

    def test_outliers_preserved_exactly(self):
        data = np.zeros((4, 4, 4))
        data[2, 2, 2] = 1e9  # forces an outlier at tiny radius
        codes, recon = classic_sz_quantize(data, 0.1, radius=4)
        assert codes[2, 2, 2] == 0
        assert recon[2, 2, 2] == 1e9

    def test_rejects_bad_eb(self):
        with pytest.raises(ValueError, match="positive"):
            classic_sz_quantize(np.zeros((2, 2, 2)), 0.0, radius=8)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError, match="3-D"):
            classic_sz_quantize(np.zeros((4, 4)), 0.1, radius=8)
