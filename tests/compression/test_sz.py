"""The assembled compressor: bound guarantees, ratios, self-description."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.sz import SZCompressor, decompress


class TestErrorBound:
    @pytest.mark.parametrize("codec", ["zlib", "huffman", "raw"])
    def test_abs_bound_all_codecs(self, smooth_field, codec):
        comp = SZCompressor(codec=codec)
        for eb in (0.01, 1.0):
            block = comp.compress(smooth_field, eb)
            recon = comp.decompress(block)
            assert np.max(np.abs(recon - smooth_field)) <= eb + 1e-9

    def test_abs_bound_noisy(self, noisy_field):
        comp = SZCompressor()
        block = comp.compress(noisy_field, 0.5)
        recon = comp.decompress(block)
        assert np.max(np.abs(recon - noisy_field)) <= 0.5 + 1e-9

    def test_pw_rel_bound(self):
        rng = np.random.default_rng(0)
        data = np.exp(rng.normal(0, 2, (16, 16, 16))).astype(np.float32)
        comp = SZCompressor(mode="pw_rel")
        block = comp.compress(data, 0.05)
        recon = comp.decompress(block)
        assert np.max(np.abs(recon / data.astype(np.float64) - 1.0)) <= 0.05 + 1e-9

    def test_pw_rel_rejects_nonpositive(self):
        comp = SZCompressor(mode="pw_rel")
        with pytest.raises(ValueError, match="positive data"):
            comp.compress(np.array([[[1.0, -2.0]]]), 0.01)

    def test_classic_engine_bound(self, smooth_field):
        comp = SZCompressor(engine="classic")
        small = smooth_field[:8, :8, :8]
        block = comp.compress(small, 0.3)
        recon = comp.decompress(block)
        assert np.max(np.abs(recon - small)) <= 0.3 + 1e-9

    def test_1d_and_2d(self):
        rng = np.random.default_rng(1)
        comp = SZCompressor()
        for shape in [(100,), (30, 40)]:
            data = rng.normal(0, 3, shape)
            block = comp.compress(data, 0.1)
            assert np.max(np.abs(comp.decompress(block) - data)) <= 0.1 + 1e-9


class TestRateBehaviour:
    def test_smooth_compresses_better_than_noise(self, smooth_field, noisy_field):
        comp = SZCompressor()
        eb = 0.1
        assert (
            comp.compress(smooth_field, eb).ratio
            > comp.compress(noisy_field, eb).ratio
        )

    def test_larger_eb_smaller_bitrate(self, noisy_field):
        comp = SZCompressor()
        rates = [comp.compress(noisy_field, eb).bit_rate for eb in (0.01, 0.1, 1.0, 5.0)]
        assert rates == sorted(rates, reverse=True)

    def test_ratio_accounts_for_source_dtype(self, smooth_field):
        comp = SZCompressor()
        b32 = comp.compress(smooth_field.astype(np.float32), 0.1)
        b64 = comp.compress(smooth_field.astype(np.float64), 0.1)
        assert b32.source_itemsize == 4
        assert b64.source_itemsize == 8
        assert b64.ratio > b32.ratio  # same payload, bigger source

    def test_outlier_heavy_data_still_bounded(self):
        rng = np.random.default_rng(2)
        # Huge dynamic jumps overflow a tiny radius, forcing outliers.
        data = rng.choice([0.0, 1e7], size=(8, 8, 8)).astype(np.float64)
        comp = SZCompressor(radius=8)
        block = comp.compress(data, 0.5)
        assert block.n_outliers > 0
        assert np.max(np.abs(comp.decompress(block) - data)) <= 0.5 + 1e-9


class TestBlockSelfDescription:
    def test_module_level_decompress(self, smooth_field):
        comp = SZCompressor(codec="huffman", mode="abs")
        block = comp.compress(smooth_field, 0.2)
        # No compressor instance needed.
        recon = decompress(block)
        assert np.max(np.abs(recon - smooth_field)) <= 0.2 + 1e-9

    def test_decompress_ignores_instance_settings(self, smooth_field):
        producer = SZCompressor(codec="zlib", mode="abs")
        consumer = SZCompressor(codec="huffman", mode="pw_rel")
        block = producer.compress(smooth_field, 0.2)
        recon = consumer.decompress(block)
        assert np.max(np.abs(recon - smooth_field)) <= 0.2 + 1e-9

    def test_block_metadata(self, smooth_field):
        comp = SZCompressor()
        block = comp.compress(smooth_field, 0.25)
        assert block.shape == smooth_field.shape
        assert block.eb == 0.25
        assert block.n_elements == smooth_field.size
        assert block.nbytes > 0
        assert block.bit_rate == pytest.approx(8 * block.nbytes / block.n_elements)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SZCompressor().compress(np.empty((0, 3, 3)), 0.1)

    def test_rejects_4d(self):
        with pytest.raises(ValueError, match="1-3 dimensional"):
            SZCompressor().compress(np.zeros((2, 2, 2, 2)), 0.1)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SZCompressor(mode="fixed_rate")

    def test_rejects_bad_engine(self):
        with pytest.raises(ValueError, match="engine"):
            SZCompressor(engine="gpu")

    def test_rejects_nonpositive_eb(self, smooth_field):
        with pytest.raises(ValueError, match="positive"):
            SZCompressor().compress(smooth_field, -1.0)
