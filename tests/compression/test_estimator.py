"""Accuracy contract of the codec-free rate estimator.

The estimator exists so calibration and rate sweeps can skip the
entropy codec; its value depends on the predicted bit rate tracking the
exact one.  Tolerance pinned here: **within 10% relative or 0.1
bits/value (whichever is looser)** of the exact ``bit_rate`` on GRF and
Nyx-proxy fields, for whole fields and calibration-sized partitions,
across the zlib and huffman entropy stages ("raw" is exact by
construction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.estimator import (
    HEADER_BYTES,
    RateEstimate,
    byte_plane_bits,
    code_histogram,
    estimate_code_bits,
    estimate_nbytes,
    shannon_bits_per_value,
)
from repro.compression.sz import SZCompressor
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.grf import gaussian_random_field

REL_TOL = 0.10
ABS_TOL = 0.1  # bits/value


def _assert_within(exact: float, est: float, context: str) -> None:
    rel = abs(est - exact) / exact
    absd = abs(est - exact)
    assert rel <= REL_TOL or absd <= ABS_TOL, (
        f"{context}: exact={exact:.4f} est={est:.4f} "
        f"rel={rel:.1%} abs={absd:.4f} bits/value"
    )


@pytest.fixture(scope="module")
def grf_field():
    return gaussian_random_field(
        (48, 48, 48), lambda k: (k + 1e-3) ** -2.5, seed=7, target_sigma=1.0
    )


class TestPrimitives:
    def test_histogram_spans_full_alphabet(self):
        hist = code_histogram(np.array([0, 1, 5, 5], dtype=np.int64), radius=8)
        assert hist.size == 16
        assert hist[5] == 2 and hist.sum() == 4

    def test_shannon_entropy_limits(self):
        assert shannon_bits_per_value(np.array([10, 0, 0])) == 0.0
        assert shannon_bits_per_value(np.array([5, 5])) == pytest.approx(1.0)
        assert shannon_bits_per_value(np.zeros(4, dtype=np.int64)) == 0.0

    def test_byte_planes_split_16bit_symbols(self):
        hist = np.zeros(1 << 16, dtype=np.int64)
        hist[0x0102] = 4
        hist[0x0103] = 4
        bits, itemsize, distinct = byte_plane_bits(hist)
        assert itemsize == 2
        # High plane constant (0x01): 0 bits; low plane 50/50: 1 bit.
        assert bits == pytest.approx(1.0)
        assert distinct == 3

    def test_raw_codec_bits_are_exact(self):
        hist = np.zeros(300, dtype=np.int64)
        hist[299] = 7
        assert estimate_code_bits(hist, "raw") == 16.0

    def test_estimate_nbytes_charges_header_and_outliers(self):
        hist = np.array([0, 8], dtype=np.int64)
        no_out, _ = estimate_nbytes(hist, 8, 0)
        with_out, _ = estimate_nbytes(hist, 8, 3)
        assert no_out >= HEADER_BYTES
        assert with_out > no_out

    def test_estimate_nbytes_validates(self):
        with pytest.raises(ValueError, match="n_elements"):
            estimate_nbytes(np.array([1]), 0, 0)
        with pytest.raises(ValueError, match="n_outliers"):
            estimate_nbytes(np.array([1]), 4, -1)


class TestAccuracy:
    @pytest.mark.parametrize("codec", ["zlib", "huffman", "raw"])
    def test_grf_whole_field(self, grf_field, codec):
        comp = SZCompressor(codec=codec)
        vrange = float(np.ptp(grf_field))
        for frac in (2.5e-4, 1e-3, 4e-3, 1.6e-2):
            eb = vrange * frac
            exact = comp.compress(grf_field, eb).bit_rate
            est = comp.estimate_bitrate(grf_field, eb)
            _assert_within(exact, est, f"GRF {codec} eb={eb:g}")

    @pytest.mark.parametrize("field", ["baryon_density", "temperature", "velocity_x"])
    def test_nyx_whole_field(self, snapshot, field):
        data = snapshot[field]
        comp = SZCompressor()
        vrange = float(np.ptp(np.asarray(data, dtype=np.float64)))
        for frac in (5e-4, 2e-3, 8e-3, 3.2e-2):
            eb = vrange * frac
            exact = comp.compress(data, eb).bit_rate
            est = comp.estimate_bitrate(data, eb)
            _assert_within(exact, est, f"Nyx {field} eb={eb:g}")

    def test_nyx_calibration_partitions(self, snapshot):
        """The regime calibration actually probes: 16^3 partitions.

        (4096 values is the smallest stream the DEFLATE model is
        calibrated for — see the estimator module docstring.)
        """
        data = snapshot["baryon_density"]
        dec = BlockDecomposition(data.shape, blocks=2)
        comp = SZCompressor()
        vrange = float(np.ptp(data.astype(np.float64)))
        for frac in (5e-4, 2e-3, 8e-3):
            eb = vrange * frac
            for view in dec.partition_views(data)[::13]:
                exact = comp.compress(view, eb).bit_rate
                est = comp.estimate_bitrate(view, eb)
                _assert_within(exact, est, f"partition eb={eb:g}")

    def test_estimate_matches_compress_metadata(self, snapshot):
        data = snapshot["temperature"]
        comp = SZCompressor()
        eb = float(np.ptp(data.astype(np.float64))) * 1e-3
        block = comp.compress(data, eb)
        est = comp.estimate(data, eb)
        assert isinstance(est, RateEstimate)
        assert est.n_elements == block.n_elements
        assert est.n_outliers == block.n_outliers
        assert est.source_itemsize == block.source_itemsize
        assert est.ratio == pytest.approx(
            est.source_itemsize * est.n_elements / est.est_nbytes
        )

    def test_classic_engine_estimate(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, (6, 6, 6))
        comp = SZCompressor(engine="classic")
        exact = comp.compress(data, 0.05).bit_rate
        est = comp.estimate_bitrate(data, 0.05)
        # The classic engine's outlier channel stores float64 values and
        # its code stream differs slightly; same tolerance applies.
        _assert_within(exact, est, "classic engine")

    def test_estimator_never_builds_payloads(self, snapshot, monkeypatch):
        """The estimate path must not invoke any entropy codec."""
        import repro.compression.sz as sz_mod

        comp = SZCompressor()

        def boom(*a, **k):  # pragma: no cover - called means failure
            raise AssertionError("codec ran during estimate")

        monkeypatch.setattr(comp.codec, "encode", boom)
        monkeypatch.setattr(sz_mod.zlib, "compress", boom)
        data = snapshot["temperature"]
        eb = float(np.ptp(data.astype(np.float64))) * 1e-3
        assert comp.estimate_bitrate(data, eb) > 0
