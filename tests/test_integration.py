"""Cross-module integration: the full paper workflow on a small grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdaptiveCompressionPipeline,
    BlockDecomposition,
    HaloQualitySpec,
    NyxSimulator,
    StaticBaseline,
    calibrate_rate_model,
)
from repro.analysis import (
    check_spectrum_quality,
    compare_catalogs,
    find_halos,
    power_spectrum,
)
from repro.models import spectrum_ratio_tolerance_to_eb, sub_threshold_power_estimate


@pytest.fixture(scope="module")
def setup():
    sim = NyxSimulator(shape=(48, 48, 48), box_size=48.0, seed=77, sigma_delta0=2.5)
    snap = sim.snapshot(z=1.0)
    dec = BlockDecomposition(snap.shape, blocks=3)
    return sim, snap, dec


class TestFullWorkflow:
    def test_model_driven_budget_passes_quality(self, setup):
        """Derive eb from the model, compress adaptively, verify with the
        real analysis — the end-to-end promise of the paper."""
        _, snap, dec = setup
        data = snap["temperature"].astype(np.float64)
        ps = power_spectrum(data)
        eb = spectrum_ratio_tolerance_to_eb(
            ps,
            data.size,
            tolerance=0.01,
            k_max=10,
            sub_power_fn=lambda e: sub_threshold_power_estimate(data, e, stride=2),
            correlated_fraction=0.5,
        )
        cal = calibrate_rate_model(dec.partition_views(snap["temperature"]), eb_scale=eb, seed=0)
        pipe = AdaptiveCompressionPipeline(cal.rate_model)
        res = pipe.run(snap["temperature"], dec, eb_avg=eb)
        recon = res.reconstruct(dec)
        ok, dev = check_spectrum_quality(data, recon, tolerance=0.012)
        assert ok, f"spectrum deviation {dev} exceeded tolerance"

    def test_adaptive_at_least_matches_static_at_equal_budget(self, setup):
        _, snap, dec = setup
        data = snap["baryon_density"]
        cal = calibrate_rate_model(dec.partition_views(data), eb_scale=0.3, seed=0)
        pipe = AdaptiveCompressionPipeline(cal.rate_model)
        adaptive = pipe.run(data, dec, eb_avg=0.3)
        static = StaticBaseline().run(data, dec, 0.3)
        assert adaptive.overall_ratio >= static.overall_ratio * 0.97

    def test_halo_constrained_run_preserves_halos(self, setup):
        _, snap, dec = setup
        data = snap["baryon_density"].astype(np.float64)
        tb = float(np.percentile(data, 99.7))
        cat0 = find_halos(data, tb)
        budget = 0.01 * float(cat0.masses.sum())
        halo = HaloQualitySpec(t_boundary=tb, mass_budget=budget, reference_eb=0.5)
        cal = calibrate_rate_model(dec.partition_views(snap["baryon_density"]), eb_scale=0.3, seed=0)
        pipe = AdaptiveCompressionPipeline(cal.rate_model)
        res = pipe.run(snap["baryon_density"], dec, eb_avg=0.3, halo=halo)
        recon = res.reconstruct(dec)
        cat1 = find_halos(recon, tb)
        cmp = compare_catalogs(cat0, cat1)
        big = tb * 20
        assert cmp.n_matched > 0
        rmse_big = cmp.mass_rmse_above(big)
        assert not np.isfinite(rmse_big) or rmse_big < 0.05

    def test_multi_snapshot_static_config_degrades(self, setup):
        """Fig. 16's premise: bounds optimized early lose ratio later."""
        sim, _, dec = setup
        early = sim.snapshot(z=3.0)
        late = sim.snapshot(z=0.2)
        cal = calibrate_rate_model(
            dec.partition_views(late["baryon_density"]), eb_scale=0.3, seed=0
        )
        pipe = AdaptiveCompressionPipeline(cal.rate_model)

        from repro.core.optimizer import optimize_for_spectrum
        from repro.core.features import extract_features

        early_feats = [
            extract_features(v, rank=i)
            for i, v in enumerate(dec.partition_views(early["baryon_density"]))
        ]
        stale_ebs = optimize_for_spectrum(early_feats, cal.rate_model, 0.3).ebs

        fresh = pipe.run(late["baryon_density"], dec, eb_avg=0.3)
        # Compress the late snapshot with the stale bounds.
        comp = pipe.compressor
        stale_blocks = [
            comp.compress(v, float(eb))
            for v, eb in zip(dec.partition_views(late["baryon_density"]), stale_ebs)
        ]
        stale_bytes = sum(b.nbytes for b in stale_blocks)
        fresh_bytes = sum(b.nbytes for b in fresh.blocks)
        # Fresh per-snapshot optimization should not be worse (allow noise).
        assert fresh_bytes <= stale_bytes * 1.05

    def test_snapshot_io_pipeline_round_trip(self, setup, tmp_path):
        from repro.sim.io import load_snapshot, save_snapshot

        _, snap, dec = setup
        path = tmp_path / "snap.npz"
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        cal = calibrate_rate_model(
            dec.partition_views(loaded["temperature"]), eb_scale=100.0, seed=0
        )
        pipe = AdaptiveCompressionPipeline(cal.rate_model)
        res = pipe.run(loaded["temperature"], dec, eb_avg=100.0)
        assert res.overall_ratio > 1.0
