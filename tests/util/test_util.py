"""Utility helpers: RNG, timers, tables, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import default_rng, spawn_rngs
from repro.util.tables import format_table
from repro.util.timer import Timer, TimingBreakdown
from repro.util.validation import (
    check_3d,
    check_finite,
    check_positive,
    check_probability,
)


class TestRng:
    def test_int_seed_deterministic(self):
        assert default_rng(3).random() == default_rng(3).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert default_rng(g) is g

    def test_spawn_independent_streams(self):
        rngs = spawn_rngs(7, 4)
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 4

    def test_spawn_deterministic(self):
        a = [r.random() for r in spawn_rngs(7, 3)]
        b = [r.random() for r in spawn_rngs(7, 3)]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0

    def test_timer_exit_without_enter_raises(self):
        """Regression: this guard was a bare assert, erased by ``python -O``."""
        with pytest.raises(RuntimeError, match="__enter__"):
            Timer().__exit__(None, None, None)

    def test_timer_double_exit_raises(self):
        t = Timer()
        with t:
            pass
        with pytest.raises(RuntimeError, match="__enter__"):
            t.__exit__(None, None, None)

    def test_timer_reenter_while_running_raises(self):
        with Timer() as t:
            with pytest.raises(RuntimeError, match="reentrant"):
                t.__enter__()

    def test_timer_reusable_after_exit(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(1000))
        assert t.elapsed >= 0.0 and first >= 0.0

    def test_breakdown_accumulates(self):
        tb = TimingBreakdown()
        with tb.phase("a"):
            pass
        with tb.phase("a"):
            pass
        assert tb.counts["a"] == 2
        assert tb.totals["a"] >= 0

    def test_breakdown_add_and_fraction(self):
        tb = TimingBreakdown()
        tb.add("x", 3.0)
        tb.add("y", 1.0)
        assert tb.fraction("x") == pytest.approx(0.75)
        assert tb.total == pytest.approx(4.0)

    def test_overhead_ratio(self):
        tb = TimingBreakdown()
        tb.add("features", 0.01)
        tb.add("compress", 1.0)
        assert tb.overhead_ratio("features", "compress") == pytest.approx(0.01)

    def test_overhead_ratio_requires_base(self):
        tb = TimingBreakdown()
        with pytest.raises(ValueError, match="no time recorded"):
            tb.overhead_ratio("a", "b")

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            TimingBreakdown().add("a", -1.0)

    def test_merge(self):
        a, b = TimingBreakdown(), TimingBreakdown()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.totals["x"] == pytest.approx(3.0)
        assert a.totals["y"] == pytest.approx(1.0)


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "b"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_format(self):
        out = format_table(["v"], [[3.14159]], float_fmt=".2f")
        assert "3.14" in out


class TestValidation:
    def test_check_3d_accepts(self):
        out = check_3d(np.zeros((2, 3, 4), dtype=np.float32))
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_check_3d_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            check_3d(np.zeros((2, 3)))

    def test_check_3d_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_3d(np.zeros((0, 3, 3)))

    def test_check_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([1.0, np.inf]))

    def test_check_positive(self):
        assert check_positive(2, "x") == 2.0
        with pytest.raises(ValueError, match="x"):
            check_positive(0, "x")
        with pytest.raises(ValueError, match="x"):
            check_positive(float("nan"), "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError, match="p"):
            check_probability(1.5, "p")
