"""Shared fixtures for the streaming-subsystem tests: a tiny simulator
whose snapshots are cheap enough to stream many times per test run."""

from __future__ import annotations

import pytest

from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator


@pytest.fixture(scope="module")
def stream_sim() -> NyxSimulator:
    return NyxSimulator(shape=(16, 16, 16), box_size=16.0, seed=7, sigma_delta0=2.5)


@pytest.fixture(scope="module")
def stream_dec() -> BlockDecomposition:
    return BlockDecomposition((16, 16, 16), blocks=2)
