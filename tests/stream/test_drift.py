"""Standardized-residual drift detection."""

from __future__ import annotations

import math

import pytest

from repro.stream.drift import DriftConfig, DriftDetector


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"z_threshold": 0.0},
            {"window": 0},
            {"min_points": 0},
            {"min_points": 5, "window": 4},
            {"rate_sigma": 0.0},
            {"quality_margin": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestRateChannel:
    def test_stationary_residuals_stay_silent(self):
        det = DriftDetector("t", DriftConfig(z_threshold=3.0, rate_sigma=0.1))
        for _ in range(10):
            # 2% prediction error: well inside one sigma.
            assert det.update_rate(1.0, 1.02) is None

    def test_persistent_bias_fires(self):
        det = DriftDetector(
            "t", DriftConfig(z_threshold=3.0, window=4, min_points=2, rate_sigma=0.1)
        )
        signal = None
        for _ in range(4):
            signal = det.update_rate(1.0, 1.5) or signal
        assert signal is not None
        assert signal.channel == "rate"
        assert signal.field == "t"
        assert abs(signal.z) > 3.0

    def test_zscore_matches_formula(self):
        det = DriftDetector(
            "t", DriftConfig(z_threshold=100.0, window=4, min_points=1, rate_sigma=0.08)
        )
        det.update_rate(1.0, 1.3)
        det.update_rate(1.0, 1.1)
        residuals = [math.log(1.3), math.log(1.1)]
        expected = (sum(residuals) / 2) * math.sqrt(2) / 0.08
        assert det.zscore() == pytest.approx(expected, rel=1e-12)

    def test_min_points_gates_firing(self):
        det = DriftDetector(
            "t", DriftConfig(z_threshold=1.0, window=4, min_points=3, rate_sigma=0.01)
        )
        assert det.update_rate(1.0, 2.0) is None
        assert det.update_rate(1.0, 2.0) is None
        assert det.update_rate(1.0, 2.0) is not None

    def test_window_forgets_old_residuals(self):
        det = DriftDetector(
            "t", DriftConfig(z_threshold=5.0, window=2, min_points=1, rate_sigma=0.1)
        )
        det.update_rate(1.0, 3.0)  # huge residual...
        for _ in range(2):
            det.update_rate(1.0, 1.0)  # ...pushed out by two clean ones
        assert det.zscore() == 0.0

    def test_reset_clears_state(self):
        det = DriftDetector(
            "t", DriftConfig(z_threshold=3.0, window=4, min_points=1, rate_sigma=0.1)
        )
        assert det.update_rate(1.0, 2.0) is not None
        det.reset()
        assert det.n_points == 0
        assert det.zscore() == 0.0
        # A fresh window must re-accumulate before firing again.
        assert det.update_rate(1.0, 1.01) is None

    def test_underprediction_also_fires(self):
        det = DriftDetector(
            "t", DriftConfig(z_threshold=3.0, window=2, min_points=1, rate_sigma=0.1)
        )
        signal = det.update_rate(2.0, 1.0)  # achieved far below predicted
        assert signal is not None and signal.z < 0

    def test_nonpositive_bitrates_rejected(self):
        det = DriftDetector("t")
        with pytest.raises(ValueError):
            det.update_rate(0.0, 1.0)


class TestQualityChannel:
    def test_disabled_by_default(self):
        det = DriftDetector("t", DriftConfig())
        assert det.update_quality(1e9, 0.01) is None

    def test_fires_when_margin_exhausted(self):
        det = DriftDetector("t", DriftConfig(quality_margin=1.0))
        assert det.update_quality(0.005, 0.01) is None
        signal = det.update_quality(0.02, 0.01)
        assert signal is not None
        assert signal.channel == "quality"
        assert signal.z == pytest.approx(2.0)

    def test_margin_scales_threshold(self):
        det = DriftDetector("t", DriftConfig(quality_margin=0.5))
        assert det.update_quality(0.006, 0.01) is not None
