"""StreamReport exports: to_json() schema and to_table() rendering.

The JSON report is what ``repro.cli stream --report`` writes and CI
artifact uploads ingest, so its schema is pinned here: the resilience
counters PR 7 added (retries/recoveries/degradations) and the
counts-preserving ``timings`` block PR 9 added must all round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.stream.controller import StreamOutcome, StreamReport
from repro.util.timer import TimingBreakdown


def _outcome(field: str = "temperature", snapshot: int = 0, **kw) -> StreamOutcome:
    defaults = dict(
        field=field,
        redshift=2.0,
        snapshot_index=snapshot,
        eb_base=1e-3,
        scale=1.0,
        eb_avg=1e-3,
        result=None,
        predicted_bit_rate=4.0,
        achieved_bit_rate=4.2,
        raw_bytes=32768,
        compressed_bytes=2048,
        residual=None,
    )
    defaults.update(kw)
    return StreamOutcome(**defaults)


def _report() -> StreamReport:
    report = StreamReport(
        outcomes=[
            _outcome("temperature", 0),
            _outcome("baryon_density", 0, compressed_bytes=4096),
            _outcome("temperature", 1),
        ],
        n_snapshots=2,
        n_recalibrations=1,
        recalibrations=[(1, "temperature", "drift")],
        byte_budget=100_000,
        n_retries=3,
        n_recoveries=1,
        n_degradations=1,
        degraded_fields=["baryon_density"],
    )
    report.timings.add("compress", 0.50)
    report.timings.add("compress", 0.25)
    report.timings.add("features", 0.10)
    report.timings.add("optimize", 0.05)
    return report


class TestToJson:
    def test_resilience_counters_round_trip(self):
        doc = json.loads(_report().to_json())
        assert doc["n_retries"] == 3
        assert doc["n_recoveries"] == 1
        assert doc["n_degradations"] == 1
        assert doc["degraded_fields"] == ["baryon_density"]

    def test_timings_preserve_counts(self):
        doc = json.loads(_report().to_json())
        assert doc["timings"]["compress"] == {"seconds": 0.75, "count": 2}
        assert doc["timings"]["features"]["count"] == 1
        assert doc["timings"]["optimize"]["seconds"] == 0.05

    def test_totals_and_budget(self):
        doc = json.loads(_report().to_json())
        assert doc["raw_bytes"] == 3 * 32768
        assert doc["compressed_bytes"] == 2048 + 4096 + 2048
        assert doc["overall_ratio"] == pytest.approx((3 * 32768) / 8192)
        assert doc["byte_budget"] == 100_000
        assert doc["budget_utilization"] == pytest.approx(8192 / 100_000)

    def test_outcome_records(self):
        doc = json.loads(_report().to_json())
        assert len(doc["outcomes"]) == 3
        first = doc["outcomes"][0]
        assert first["field"] == "temperature"
        assert first["snapshot"] == 0
        assert first["ratio"] == pytest.approx(32768 / 2048)
        assert first["compressor"] is None

    def test_empty_report_is_serializable(self):
        doc = json.loads(StreamReport().to_json())
        assert doc["overall_ratio"] is None
        assert doc["outcomes"] == []
        assert doc["timings"] == {}
        assert doc["n_retries"] == 0

    def test_canonical_json(self):
        # sort_keys=True: byte-identical exports for identical runs.
        text = _report().to_json()
        doc = json.loads(text)
        assert text == json.dumps(doc, indent=2, sort_keys=True)


class TestToTable:
    def test_every_outcome_renders(self):
        table = _report().to_table()
        assert "stream report" in table
        assert table.count("temperature") == 2
        assert "baryon_density" in table

    def test_custom_title(self):
        assert _report().to_table(title="run 42").splitlines()[0] == "run 42"

    def test_header_columns(self):
        header = _report().to_table().splitlines()[1]
        for col in ("snap", "z", "field", "eb_avg", "scale", "ratio", "bytes", "drift"):
            assert col in header


def test_merged_timings_from_field_results():
    # The controller folds each field result's breakdown into the
    # report; merging is associative so per-phase counts accumulate.
    report = StreamReport()
    for _ in range(3):
        t = TimingBreakdown()
        t.add("compress", 0.1)
        t.add("features", 0.02)
        report.timings.merge(t)
    stats = report.timings.phase_stats()
    assert stats["compress"]["count"] == 3
    assert stats["compress"]["seconds"] == pytest.approx(0.3)
    assert stats["features"]["count"] == 3
