"""Append-only JSONL run ledger."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.stream.ledger import EVENT_KINDS, LedgerError, LedgerEvent, RunLedger


class TestAppend:
    def test_monotonic_sequence(self):
        ledger = RunLedger()
        seqs = [ledger.append("decision", field=f"f{i}").seq for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert ledger.next_seq == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(LedgerError, match="unknown event kind"):
            RunLedger().append("bogus")

    def test_numpy_values_serialized(self):
        ledger = RunLedger()
        event = ledger.append(
            "decision",
            ebs=np.array([0.5, 0.25]),
            n=np.int64(7),
            flag=np.bool_(True),
            nested={"x": np.float64(1.5)},
        )
        # Everything JSON-native after append.
        round_tripped = json.loads(event.to_json())["data"]
        assert round_tripped == {
            "ebs": [0.5, 0.25],
            "n": 7,
            "flag": True,
            "nested": {"x": 1.5},
        }

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError, match="serialize"):
            RunLedger().append("decision", bad=object())

    def test_select(self):
        ledger = RunLedger()
        ledger.append("run_start")
        ledger.append("decision", field="a")
        ledger.append("outcome", field="a")
        ledger.append("decision", field="b")
        assert [e.data["field"] for e in ledger.select("decision")] == ["a", "b"]
        with pytest.raises(LedgerError):
            ledger.select("bogus")


class TestFileRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.append("run_start", n_snapshots=2)
            ledger.append("decision", field="t", ebs=[0.1, 0.2])
        loaded = RunLedger.load(path)
        assert len(loaded) == 2
        assert loaded.events[1].data["ebs"] == [0.1, 0.2]
        # One JSON object per line, in order.
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_floats_survive_exactly(self, tmp_path):
        path = tmp_path / "run.jsonl"
        value = 0.1 + 0.2  # not representable prettily
        with RunLedger(path) as ledger:
            ledger.append("decision", eb=value)
        assert RunLedger.load(path).events[0].data["eb"] == value

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.append("run_start")
        with RunLedger(path) as ledger:
            assert ledger.next_seq == 1
            event = ledger.append("run_end")
        assert event.seq == 1
        assert [e.seq for e in RunLedger.load(path).events] == [0, 1]

    def test_append_after_close_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(path)
        ledger.append("run_start")
        ledger.close()
        with pytest.raises(LedgerError, match="closed"):
            ledger.append("run_end")
        # A load()-ed ledger is read-only for the same reason.
        with pytest.raises(LedgerError, match="closed"):
            RunLedger.load(path).append("run_end")
        # In-memory ledgers have no file to desynchronize from.
        mem = RunLedger()
        mem.close()
        mem.append("run_start")

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "kind": "run_start", "data": {}})
            + "\n"
            + json.dumps({"seq": 2, "kind": "run_end", "data": {}})
            + "\n"
        )
        with pytest.raises(LedgerError, match="monotonic"):
            RunLedger.load(path)

    def test_malformed_line_detected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"seq": 0, "kind": "run_start", "data": {}}\nnot json\n')
        with pytest.raises(LedgerError, match="malformed"):
            RunLedger.load(path)

    def test_unknown_kind_on_load(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"seq": 0, "kind": "mystery", "data": {}}\n')
        with pytest.raises(LedgerError, match="unknown"):
            RunLedger.load(path)


class TestEvent:
    def test_kinds_cover_lifecycle(self):
        assert "calibration" in EVENT_KINDS
        assert "recalibration" in EVENT_KINDS
        assert "decision" in EVENT_KINDS
        assert "outcome" in EVENT_KINDS

    def test_from_json_requires_fields(self):
        with pytest.raises(LedgerError, match="seq"):
            LedgerEvent.from_json('{"kind": "decision"}')
