"""Snapshot stream sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.io import save_snapshot
from repro.sim.nyx import FIELD_NAMES, NyxSimulator, NyxSnapshot
from repro.stream.source import (
    DirectoryStream,
    SimulatorStream,
    SnapshotSequence,
    SnapshotStream,
    as_stream,
)


@pytest.fixture(scope="module")
def small_sim() -> NyxSimulator:
    return NyxSimulator(shape=(8, 8, 8), box_size=8.0, seed=11)


class TestSimulatorStream:
    def test_length_and_order(self, small_sim):
        stream = SimulatorStream(small_sim, [3.0, 1.0, 0.5])
        assert len(stream) == 3
        assert [s.redshift for s in stream] == [3.0, 1.0, 0.5]

    def test_is_snapshot_stream(self, small_sim):
        assert isinstance(SimulatorStream(small_sim, [1.0]), SnapshotStream)

    def test_field_subset(self, small_sim):
        stream = SimulatorStream(small_sim, [1.0], fields=["temperature"])
        snap = next(iter(stream))
        assert sorted(snap.fields) == ["temperature"]

    def test_unknown_field_rejected(self, small_sim):
        stream = SimulatorStream(small_sim, [1.0], fields=["no_such_field"])
        with pytest.raises(KeyError, match="no_such_field"):
            next(iter(stream))

    def test_empty_schedule_rejected(self, small_sim):
        with pytest.raises(ValueError, match="schedule"):
            SimulatorStream(small_sim, [])

    def test_negative_redshift_rejected(self, small_sim):
        with pytest.raises(ValueError, match="non-negative"):
            SimulatorStream(small_sim, [1.0, -0.5])

    def test_repeatable(self, small_sim):
        stream = SimulatorStream(small_sim, [1.0])
        first = next(iter(stream))
        second = next(iter(stream))
        assert np.array_equal(first["baryon_density"], second["baryon_density"])


class TestDirectoryStream:
    @pytest.fixture()
    def seq_dir(self, tmp_path, small_sim):
        for i, z in enumerate([2.0, 1.0, 0.5]):
            save_snapshot(small_sim.snapshot(z=z), tmp_path / f"snapshot_{i:04d}.npz")
        return tmp_path

    def test_sorted_replay(self, seq_dir):
        stream = DirectoryStream(seq_dir)
        assert len(stream) == 3
        assert [s.redshift for s in stream] == [2.0, 1.0, 0.5]
        assert stream.shape == (8, 8, 8)

    def test_round_trips_fields(self, seq_dir, small_sim):
        snap = next(iter(DirectoryStream(seq_dir)))
        fresh = small_sim.snapshot(z=2.0)
        assert sorted(snap.fields) == sorted(FIELD_NAMES)
        assert np.array_equal(snap["temperature"], fresh["temperature"])

    def test_field_subset(self, seq_dir):
        stream = DirectoryStream(seq_dir, fields=["velocity_x"])
        assert sorted(next(iter(stream)).fields) == ["velocity_x"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DirectoryStream(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no snapshots"):
            DirectoryStream(tmp_path)


class TestSnapshotSequence:
    def test_wraps_list(self, small_sim):
        snaps = [small_sim.snapshot(z=z) for z in (1.0, 0.5)]
        stream = SnapshotSequence(snaps)
        assert len(stream) == 2
        assert [s.redshift for s in stream] == [1.0, 0.5]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SnapshotSequence([])

    def test_rejects_empty_field_subset(self, small_sim):
        with pytest.raises(ValueError, match="fields"):
            SnapshotSequence([small_sim.snapshot(z=1.0)], fields=[])


class TestAsStream:
    def test_passthrough(self, small_sim):
        stream = SimulatorStream(small_sim, [1.0])
        assert as_stream(stream) is stream

    def test_list_coercion(self, small_sim):
        snaps = [small_sim.snapshot(z=1.0)]
        stream = as_stream(snaps)
        assert isinstance(stream, SnapshotSequence)
        assert len(stream) == 1

    def test_single_snapshot(self, small_sim):
        stream = as_stream(small_sim.snapshot(z=1.0))
        assert isinstance(stream, SnapshotSequence)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_stream(object())


class TestRestrictPreservesMeta:
    def test_meta_and_box(self, small_sim):
        snap = small_sim.snapshot(z=0.5)
        restricted = next(
            iter(SnapshotSequence([snap], fields=["baryon_density"]))
        )
        assert isinstance(restricted, NyxSnapshot)
        assert restricted.box_size == snap.box_size
        assert restricted.meta == snap.meta
