"""InSituController: warm starts, drift-gated recalibration, budget
governor, and deterministic ledger replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import FieldSpec
from repro.sim.nyx import NyxSnapshot
from repro.stream.controller import (
    BudgetGovernor,
    InSituController,
    replay_ledger,
)
from repro.stream.drift import DriftConfig
from repro.stream.ledger import LedgerError, RunLedger
from repro.stream.source import SnapshotSequence


def _single_field(snapshot: NyxSnapshot, name: str, data=None) -> NyxSnapshot:
    return NyxSnapshot(
        fields={name: snapshot[name] if data is None else data},
        redshift=snapshot.redshift,
        box_size=snapshot.box_size,
    )


@pytest.fixture(scope="module")
def base_snapshot(stream_sim):
    return stream_sim.snapshot(z=1.0)


class TestDriftGating:
    def test_stationary_stream_zero_recalibrations(self, stream_dec, base_snapshot):
        """A statistically stationary stream must never trigger a refit."""
        ctl = InSituController(stream_dec, max_partitions=8)
        report = ctl.run(SnapshotSequence([base_snapshot] * 4))
        assert report.n_recalibrations == 0
        assert report.recalibrations == []
        # Warm start: identical data, frozen models -> identical decisions.
        by_field: dict[str, list] = {}
        for o in report.outcomes:
            by_field.setdefault(o.field, []).append(o)
        for rows in by_field.values():
            assert len(rows) == 4
            assert all(o.eb_avg == rows[0].eb_avg for o in rows)
            assert all(np.array_equal(o.result.ebs, rows[0].result.ebs) for o in rows)

    def test_injected_shift_exactly_one_recalibration(
        self, stream_dec, base_snapshot
    ):
        """A spatial-decorrelation shift mid-stream forces one refit.

        Shuffling the voxels preserves the feature the rate model sees
        (mean |value|) while destroying the Lorenzo predictability the
        bitrate depends on — the model's prediction goes stale and only
        recalibration can fix it.
        """
        name = "velocity_x"
        data = base_snapshot[name]
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(data.ravel()).reshape(data.shape).copy()
        base = _single_field(base_snapshot, name)
        shifted = _single_field(base_snapshot, name, shuffled)

        ctl = InSituController(
            stream_dec,
            max_partitions=8,
            drift=DriftConfig(z_threshold=3.0, window=2, min_points=2, rate_sigma=0.1),
        )
        report = ctl.run(SnapshotSequence([base, base, shifted, shifted, shifted]))

        # The detector needs two post-shift residuals (min_points=2), so
        # it fires at snapshot 3 and the refit lands at snapshot 4.
        assert report.n_recalibrations == 1
        assert report.recalibrations == [(4, name, "drift")]
        assert report.outcomes[3].drift_signal is not None
        assert report.outcomes[3].drift_signal.channel == "rate"
        # Post-shift, pre-recalibration: large under-prediction.
        assert report.outcomes[2].residual > 0.2
        # After the refit the model describes the shifted data again.
        assert abs(report.outcomes[4].residual) < 0.1
        assert report.outcomes[4].drift_signal is None
        # The ledger shows exactly one recalibration event.
        assert len(ctl.ledger.select("recalibration")) == 1
        assert len(ctl.ledger.select("calibration")) == 1

    def test_drift_triggers_reselection_with_candidates(
        self, stream_dec, base_snapshot
    ):
        """With a candidate slate, a drift-triggered refit re-runs the
        compressor selection, not just the rate-model fit."""
        name = "velocity_x"
        data = base_snapshot[name]
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(data.ravel()).reshape(data.shape).copy()
        base = _single_field(base_snapshot, name)
        shifted = _single_field(base_snapshot, name, shuffled)

        ctl = InSituController(
            stream_dec,
            max_partitions=8,
            candidates=["sz", "zfp_like:rate=8"],
            drift=DriftConfig(z_threshold=3.0, window=2, min_points=2, rate_sigma=0.1),
        )
        report = ctl.run(SnapshotSequence([base, base, shifted, shifted, shifted]))
        assert report.n_recalibrations == 1
        selections = ctl.ledger.select("selection")
        # One selection at the initial calibration, one at the drift refit.
        assert [e.data["reason"] for e in selections] == ["initial", "drift"]
        assert all(e.data["chosen"]["family"] == "sz" for e in selections)
        zfp_verdicts = [
            v
            for e in selections
            for v in e.data["verdicts"]
            if v["spec"]["family"] == "zfp_like"
        ]
        assert all(not v["eligible"] for v in zfp_verdicts)
        assert all(v["eb_violation"] > 1.0 for v in zfp_verdicts)
        # The decision events carry the selected spec throughout.
        assert all(
            e.data["spec"]["family"] == "sz"
            for e in ctl.ledger.select("decision")
        )
        # Replay stays byte-for-byte with selections in the ledger.
        from repro.stream.controller import replay_ledger as _replay

        assert len(_replay(ctl.ledger.events)) == 5

    def test_always_policy_recalibrates_every_snapshot(
        self, stream_dec, base_snapshot
    ):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8, recalibrate="always")
        report = ctl.run(SnapshotSequence([snap] * 3))
        assert report.n_recalibrations == 2  # first one is the initial fit
        assert [r[2] for r in report.recalibrations] == ["forced", "forced"]

    def test_quality_channel_forces_recalibration(self, stream_dec, base_snapshot):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(
            stream_dec,
            max_partitions=8,
            drift=DriftConfig(quality_margin=1e-9),  # any deviation trips it
        )
        report = ctl.run(SnapshotSequence([snap] * 3))
        assert all(o.quality_deviation is not None for o in report.outcomes)
        # Fires every snapshot; each firing refits at the next snapshot.
        assert report.n_recalibrations == 2


class TestWarmStart:
    def test_budget_inversion_amortized(
        self, stream_dec, base_snapshot, monkeypatch
    ):
        import repro.stream.controller as controller_mod

        calls = {"n": 0}
        real = controller_mod.derive_eb_budget

        def counting(spec, ref):
            calls["n"] += 1
            return real(spec, ref)

        monkeypatch.setattr(controller_mod, "derive_eb_budget", counting)
        snap = _single_field(base_snapshot, "temperature")

        warm = InSituController(stream_dec, max_partitions=8)
        warm.run(SnapshotSequence([snap] * 3))
        assert calls["n"] == 1  # once, at the initial calibration

        calls["n"] = 0
        cold = InSituController(stream_dec, max_partitions=8, warm_start=False)
        cold.run(SnapshotSequence([snap] * 3))
        assert calls["n"] == 3  # re-derived per snapshot (batch semantics)

    def test_never_policy_requires_priming(self, stream_dec, base_snapshot):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8, recalibrate="never")
        with pytest.raises(KeyError, match="was not calibrated"):
            ctl.process_snapshot(snap)
        ctl.prime(snap)
        outcomes = ctl.process_snapshot(snap)
        assert len(outcomes) == 1
        assert ctl.calibrations.keys() == {"temperature"}


class TestBudgetGovernor:
    def test_overspend_raises_bounds(self):
        gov = BudgetGovernor(total_bytes=1000, n_snapshots=4)
        scale = gov.observe(500, exponent=-1.0)  # spent 2x the allowance
        assert scale > 1.0
        assert gov.spent == 500

    def test_underspend_relaxes_bounds(self):
        gov = BudgetGovernor(total_bytes=1000, n_snapshots=4)
        scale = gov.observe(100, exponent=-1.0)
        assert scale < 1.0

    def test_scale_clamped(self):
        gov = BudgetGovernor(total_bytes=1000, n_snapshots=4, max_scale=4.0)
        assert gov.observe(999, exponent=-0.2) == 4.0
        gov2 = BudgetGovernor(total_bytes=10**9, n_snapshots=4, max_scale=4.0)
        assert gov2.observe(1, exponent=-0.2) == 0.25

    def test_exhausted_budget_pins_max_scale(self):
        gov = BudgetGovernor(total_bytes=100, n_snapshots=3)
        gov.observe(200, exponent=-1.0)
        assert gov.scale == gov.max_scale

    def test_last_snapshot_keeps_scale(self):
        gov = BudgetGovernor(total_bytes=1000, n_snapshots=1)
        assert gov.observe(5000, exponent=-1.0) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_bytes": 0, "n_snapshots": 2},
            {"total_bytes": 10, "n_snapshots": 0},
            {"total_bytes": 10, "n_snapshots": 2, "gain": 0.0},
            {"total_bytes": 10, "n_snapshots": 2, "max_scale": 0.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BudgetGovernor(**kwargs)

    def test_run_lands_within_five_percent(self, stream_sim, stream_dec):
        snaps = [
            _single_field(stream_sim.snapshot(z=z), "temperature")
            for z in (3.0, 2.0, 1.5, 1.0, 0.7, 0.5)
        ]
        probe = InSituController(stream_dec, max_partitions=8)
        natural = probe.run(SnapshotSequence(snaps)).compressed_bytes

        budget = int(0.85 * natural)
        ctl = InSituController(stream_dec, max_partitions=8, byte_budget=budget)
        report = ctl.run(SnapshotSequence(snaps))
        assert report.byte_budget == budget
        assert abs(report.compressed_bytes - budget) / budget <= 0.05

    def test_prime_then_budgeted_run(self, stream_dec, base_snapshot):
        """prime() must not require the snapshot count — only streaming
        does, and run() can still infer it from the sized stream."""
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(
            stream_dec, max_partitions=8, byte_budget=10**6, recalibrate="never"
        )
        ctl.prime(snap)
        report = ctl.run(SnapshotSequence([snap, snap]))
        assert report.n_snapshots == 2
        assert ctl.governor is not None and ctl.governor.n_snapshots == 2
        # The governor event trails run_start/calibrations but precedes
        # every budget event, so replay arms the replica in time.
        kinds = [e.kind for e in ctl.ledger.events]
        assert kinds.index("governor") > kinds.index("calibration")
        assert kinds.index("governor") < kinds.index("budget")
        assert len(replay_ledger(ctl.ledger)) == 2

    def test_budget_requires_snapshot_count(self, stream_dec, base_snapshot):
        ctl = InSituController(stream_dec, max_partitions=8, byte_budget=10**6)
        with pytest.raises(RuntimeError, match="n_snapshots"):
            ctl.process_snapshot(base_snapshot)
        # run() infers the count from the sized stream.
        snap = _single_field(base_snapshot, "temperature")
        ctl2 = InSituController(stream_dec, max_partitions=8, byte_budget=10**6)
        report = ctl2.run(SnapshotSequence([snap, snap]))
        assert ctl2.governor is not None
        assert ctl2.governor.n_snapshots == 2
        assert report.n_snapshots == 2


class TestLedgerReplay:
    @pytest.fixture()
    def run_with_ledger(self, tmp_path, stream_sim, stream_dec):
        """A governed, halo-aware, multi-field run recorded to disk."""
        path = tmp_path / "run.jsonl"
        snaps = [
            NyxSnapshot(
                fields={
                    "baryon_density": s["baryon_density"],
                    "temperature": s["temperature"],
                },
                redshift=s.redshift,
                box_size=s.box_size,
            )
            for s in (stream_sim.snapshot(z=z) for z in (2.0, 1.0, 0.5, 0.3))
        ]
        specs = {"baryon_density": FieldSpec(halo_aware=True)}
        probe = InSituController(stream_dec, field_specs=specs, max_partitions=8)
        natural = probe.run(SnapshotSequence(snaps)).compressed_bytes
        ctl = InSituController(
            stream_dec,
            field_specs=specs,
            max_partitions=8,
            ledger=str(path),
            byte_budget=int(0.9 * natural),
        )
        report = ctl.run(SnapshotSequence(snaps))
        ctl.close()
        return path, report

    def test_replay_reproduces_decisions_bit_for_bit(self, run_with_ledger):
        path, report = run_with_ledger
        decisions = replay_ledger(path)  # reads the JSONL only
        assert len(decisions) == len(report.outcomes)
        for replayed, live in zip(decisions, report.outcomes):
            assert replayed.field == live.field
            assert replayed.snapshot_index == live.snapshot_index
            assert replayed.eb_avg == live.eb_avg
            # Byte-identical per-partition bounds.
            assert (
                np.asarray(replayed.ebs, dtype=np.float64).tobytes()
                == live.result.ebs.tobytes()
            )

    def test_replay_accepts_ledger_objects(self, run_with_ledger):
        path, report = run_with_ledger
        ledger = RunLedger.load(path)
        assert len(replay_ledger(ledger)) == len(report.outcomes)
        assert len(replay_ledger(ledger.events)) == len(report.outcomes)

    def test_replay_detects_tampered_decision(self, run_with_ledger, tmp_path):
        path, _ = run_with_ledger
        lines = path.read_text().strip().splitlines()
        tampered = []
        poisoned = False
        for line in lines:
            obj = json.loads(line)
            if not poisoned and obj["kind"] == "decision":
                obj["data"]["ebs"][0] *= 1.0 + 1e-9
                poisoned = True
            tampered.append(json.dumps(obj))
        bad = tmp_path / "tampered.jsonl"
        bad.write_text("\n".join(tampered) + "\n")
        with pytest.raises(LedgerError, match="replay diverged"):
            replay_ledger(bad)

    def test_replay_detects_tampered_bytes(self, run_with_ledger, tmp_path):
        path, _ = run_with_ledger
        lines = path.read_text().strip().splitlines()
        tampered = []
        poisoned = False
        for line in lines:
            obj = json.loads(line)
            if not poisoned and obj["kind"] == "outcome":
                obj["data"]["compressed_bytes"] += 1
                poisoned = True
            tampered.append(json.dumps(obj))
        bad = tmp_path / "tampered.jsonl"
        bad.write_text("\n".join(tampered) + "\n")
        with pytest.raises(LedgerError, match="replay diverged"):
            replay_ledger(bad)

    def test_reopened_ledger_with_two_runs_replays(
        self, tmp_path, stream_dec, base_snapshot
    ):
        """Re-opening a ledger file appends a second run; replay resets
        its replica state at every run_start (an ungoverned run's bytes
        must not leak into the governed run's budget accounting)."""
        path = tmp_path / "run.jsonl"
        snap = _single_field(base_snapshot, "temperature")
        first = InSituController(stream_dec, max_partitions=8, ledger=str(path))
        first.run(SnapshotSequence([snap, snap]))
        first.close()
        second = InSituController(
            stream_dec, max_partitions=8, ledger=str(path), byte_budget=10**6
        )
        second.run(SnapshotSequence([snap, snap]))
        second.close()
        decisions = replay_ledger(path)
        assert len(decisions) == 4
        assert len(RunLedger.load(path).select("run_start")) == 2

    def test_local_protocol_replay_and_backend_equivalence(
        self, stream_sim, stream_dec
    ):
        """The paper's local protocol (per-rank solves from one
        allreduce) must replay bitwise and agree across backends."""
        from repro.core.config import OptimizerSettings

        snaps = [stream_sim.snapshot(z=z) for z in (2.0, 1.0)]
        settings = OptimizerSettings(normalization="local")
        reports = {}
        for backend in ("serial", "thread"):
            ctl = InSituController(
                stream_dec, settings=settings, backend=backend, max_partitions=8
            )
            reports[backend] = ctl.run(SnapshotSequence(snaps))
            decisions = replay_ledger(ctl.ledger)
            assert [d.ebs for d in decisions] == [
                tuple(o.result.ebs.tolist()) for o in reports[backend].outcomes
            ]
        for a, b in zip(reports["serial"].outcomes, reports["thread"].outcomes):
            assert a.result.ebs.tobytes() == b.result.ebs.tobytes()

    def test_live_ledger_replayable_in_memory(self, stream_dec, base_snapshot):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8)
        report = ctl.run(SnapshotSequence([snap] * 2))
        decisions = replay_ledger(ctl.ledger)
        assert [d.ebs for d in decisions] == [
            tuple(o.result.ebs.tolist()) for o in report.outcomes
        ]


class TestReportAndLifecycle:
    def test_report_exports(self, stream_dec, base_snapshot):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8)
        report = ctl.run(SnapshotSequence([snap] * 2))
        assert report.snapshot_bytes(0) > 0
        with pytest.raises(KeyError):
            report.snapshot_bytes(99)
        table = report.to_table()
        assert "temperature" in table and "eb_avg" in table
        payload = json.loads(report.to_json())
        assert payload["n_snapshots"] == 2
        assert payload["compressed_bytes"] == report.compressed_bytes
        assert len(payload["outcomes"]) == 2

    def test_retain_results_off_keeps_accounting(self, stream_dec, base_snapshot):
        """Long streams can drop compressed payloads after accounting."""
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8, retain_results=False)
        report = ctl.run(SnapshotSequence([snap] * 2))
        assert all(o.result is None for o in report.outcomes)
        assert report.compressed_bytes > 0
        assert report.overall_ratio > 1.0
        # The ledger is complete either way: replay still reproduces.
        assert len(replay_ledger(ctl.ledger)) == 2

    def test_run_accepts_plain_snapshot_list(self, stream_dec, base_snapshot):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8)
        report = ctl.run([snap, snap])
        assert report.n_snapshots == 2

    def test_run_end_sealed_once(self, stream_dec, base_snapshot):
        snap = _single_field(base_snapshot, "temperature")
        ctl = InSituController(stream_dec, max_partitions=8)
        ctl.run(SnapshotSequence([snap]))
        ctl.finish()  # idempotent
        assert len(ctl.ledger.select("run_end")) == 1

    def test_rejects_bad_policy(self, stream_dec):
        with pytest.raises(ValueError, match="recalibrate"):
            InSituController(stream_dec, recalibrate="sometimes")

    def test_rejects_bad_budget(self, stream_dec):
        with pytest.raises(ValueError, match="byte_budget"):
            InSituController(stream_dec, byte_budget=0)
