"""Ledger schema compatibility across the compressor-backbone refactor.

PR 4 ledgers predate compressor specs (schema v1: no ``schema`` key on
``run_start``, no ``spec`` on calibration/decision events, no
``selection`` events).  The frozen fixture in ``fixtures/pr4_ledger.jsonl``
was written in exactly that format; it must keep replaying byte-for-byte
forever.  Schema v2 ledgers — with specs recorded and mixed compressor
configurations across fields — must round-trip through
:func:`~repro.stream.controller.replay_ledger` with tamper detection
intact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.compression.api import REGISTRY, CompressorSpec
from repro.core.config import FieldSpec
from repro.stream.controller import replay_ledger
from repro.stream.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    RunLedger,
)
from repro.stream.source import SimulatorStream

FIXTURE = Path(__file__).parent / "fixtures" / "pr4_ledger.jsonl"


class TestPR4Fixture:
    def test_fixture_is_schema_v1(self):
        events = RunLedger.load(FIXTURE).events
        start = events[0]
        assert start.kind == "run_start"
        assert "schema" not in start.data
        assert "compressor" not in start.data
        assert all(e.kind != "selection" for e in events)
        assert all(
            "spec" not in e.data
            for e in events
            if e.kind in ("calibration", "recalibration", "decision")
        )

    def test_replays_byte_for_byte(self):
        """verify=True re-runs the optimizer + governor and compares every
        recomputed bound against the recorded one for exact equality —
        the fixture replaying cleanly IS the byte-for-byte guarantee."""
        decisions = replay_ledger(FIXTURE, verify=True)
        recorded = [
            e for e in RunLedger.load(FIXTURE).events if e.kind == "decision"
        ]
        assert len(decisions) == len(recorded) == 6
        for dec, event in zip(decisions, recorded):
            assert dec.ebs == tuple(float(x) for x in event.data["ebs"])
            assert dec.eb_avg == float(event.data["eb_avg"])
            # Spec-less ledgers surface no compressor identity.
            assert dec.compressor is None

    def test_fixture_tamper_detected(self, tmp_path):
        lines = FIXTURE.read_text().splitlines()
        tampered = []
        for line in lines:
            ev = json.loads(line)
            if ev["kind"] == "decision" and not tampered:
                ev["data"]["ebs"][0] *= 1.01
                tampered.append(ev["seq"])
            lines[ev["seq"]] = json.dumps(ev)
        bad = tmp_path / "tampered.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="replay diverged"):
            replay_ledger(bad, verify=True)


@pytest.fixture(scope="module")
def mixed_ledger_path(tmp_path_factory, stream_sim, stream_dec):
    """A schema-v2 run with a different compressor pinned per field."""
    from repro.stream.controller import InSituController

    path = tmp_path_factory.mktemp("ledgers") / "mixed.jsonl"
    ctl = InSituController(
        stream_dec,
        field_specs={
            "baryon_density": FieldSpec(compressor="sz:codec=huffman"),
            "temperature": FieldSpec(compressor="sz_adaptive"),
        },
        ledger=path,
        max_partitions=8,
    )
    ctl.run(
        SimulatorStream(
            stream_sim, [2.0, 1.0], fields=["baryon_density", "temperature"]
        )
    )
    ctl.close()
    return path


class TestMixedCompressorLedger:
    def test_schema_v2_recorded(self, mixed_ledger_path):
        events = RunLedger.load(mixed_ledger_path).events
        assert events[0].data["schema"] == LEDGER_SCHEMA_VERSION
        specs = {
            e.data["field"]: e.data["spec"]["family"]
            for e in events
            if e.kind == "decision"
        }
        assert specs == {"baryon_density": "sz", "temperature": "sz_adaptive"}

    def test_mixed_ledger_replays_with_specs(self, mixed_ledger_path):
        decisions = replay_ledger(mixed_ledger_path, verify=True)
        by_field = {d.field: d.compressor for d in decisions}
        # Freshly written ledgers record the *full* instance config, so
        # compare against the registry-canonical form of the request.
        assert by_field["baryon_density"] == REGISTRY.canonical(
            CompressorSpec.sz(codec="huffman")
        )
        assert by_field["temperature"].family == "sz_adaptive"

    def test_mixed_ledger_tamper_detected(self, mixed_ledger_path, tmp_path):
        lines = mixed_ledger_path.read_text().splitlines()
        out = []
        done = False
        for line in lines:
            ev = json.loads(line)
            if ev["kind"] == "decision" and not done:
                ev["data"]["eb_avg"] *= 2.0
                done = True
            out.append(json.dumps(ev))
        bad = tmp_path / "tampered_mixed.jsonl"
        bad.write_text("\n".join(out) + "\n")
        with pytest.raises(LedgerError, match="replay diverged"):
            replay_ledger(bad, verify=True)

    def test_selection_events_replay_clean(self, stream_sim, stream_dec, tmp_path):
        """A candidate-slate run writes ``selection`` events; replay skips
        them and still verifies every decision."""
        from repro.stream.controller import InSituController

        path = tmp_path / "selected.jsonl"
        ctl = InSituController(
            stream_dec,
            candidates=["sz", "zfp_like:rate=8"],
            ledger=path,
            max_partitions=8,
        )
        ctl.run(SimulatorStream(stream_sim, [2.0], fields=["temperature"]))
        ctl.close()
        events = RunLedger.load(path).events
        assert any(e.kind == "selection" for e in events)
        sel = next(e for e in events if e.kind == "selection")
        assert sel.data["chosen"]["family"] == "sz"
        verdicts = {v["spec"]["family"]: v for v in sel.data["verdicts"]}
        assert not verdicts["zfp_like"]["eligible"]
        assert verdicts["zfp_like"]["eb_violation"] > 1.0
        decisions = replay_ledger(path, verify=True)
        assert decisions and decisions[0].compressor.family == "sz"
