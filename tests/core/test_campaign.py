"""Campaign orchestration across fields and snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.campaign import CompressionCampaign, FieldSpec
from repro.sim.nyx import FIELD_NAMES


@pytest.fixture(scope="module")
def campaign(request):
    simulator = request.getfixturevalue("simulator")
    decomposition = request.getfixturevalue("decomposition")
    specs = {
        "baryon_density": FieldSpec(
            spectrum_tolerance=0.02, correlated_fraction=0.5, halo_aware=True
        ),
        "dark_matter_density": FieldSpec(
            spectrum_tolerance=0.02, correlated_fraction=0.5, halo_aware=True
        ),
        "temperature": FieldSpec(correlated_fraction=0.5),
    }
    c = CompressionCampaign(decomposition, field_specs=specs)
    c.calibrate(simulator.snapshot(z=2.0), max_partitions=8)
    return c


class TestFieldSpec:
    def test_defaults_valid(self):
        FieldSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spectrum_tolerance": 0.0},
            {"correlated_fraction": 2.0},
            {"halo_percentile": 10.0},
            {"eb_override": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FieldSpec(**kwargs)


class TestCampaign:
    def test_requires_calibration(self, decomposition, simulator):
        c = CompressionCampaign(decomposition)
        with pytest.raises(RuntimeError, match="calibrate"):
            c.compress_snapshot(simulator.snapshot(z=1.0))

    def test_compresses_every_field(self, campaign, simulator):
        report = campaign.compress_snapshot(simulator.snapshot(z=1.0))
        fields_done = {o.field for o in report.outcomes}
        assert fields_done == set(FIELD_NAMES)

    def test_storage_accounting(self, campaign, simulator):
        report = campaign.compress_snapshot(simulator.snapshot(z=0.5))
        assert report.compressed_bytes < report.raw_bytes
        assert report.overall_ratio > 1.0
        for name in FIELD_NAMES:
            assert report.field_ratio(name) > 1.0

    def test_snapshot_ratio_lookup(self, campaign, simulator):
        campaign.compress_snapshot(simulator.snapshot(z=0.25))
        assert campaign.report.snapshot_ratio(0.25) > 1.0
        with pytest.raises(KeyError):
            campaign.report.snapshot_ratio(9.9)

    def test_eb_override_used(self, decomposition, simulator):
        overrides = {
            "baryon_density": 0.5,
            "dark_matter_density": 0.5,
            "temperature": 50.0,
            "velocity_x": 1e6,
            "velocity_y": 1e6,
            "velocity_z": 1e6,
        }
        c = CompressionCampaign(
            decomposition,
            field_specs={k: FieldSpec(eb_override=v) for k, v in overrides.items()},
        )
        snap = simulator.snapshot(z=1.0)
        c.calibrate(snap, max_partitions=4)
        report = c.compress_snapshot(snap)
        assert all(o.eb_avg == overrides[o.field] for o in report.outcomes)

    def test_error_bounds_hold_through_campaign(self, campaign, simulator, decomposition):
        snap = simulator.snapshot(z=1.5)
        report = campaign.compress_snapshot(snap)
        latest = [o for o in report.outcomes if o.redshift == 1.5]
        for o in latest:
            recon = o.result.reconstruct(decomposition)
            err = np.max(np.abs(recon - snap[o.field].astype(np.float64)))
            assert err <= o.result.ebs.max() * (1 + 1e-9) + 1e-12

    def test_report_rows_shape(self, campaign):
        rows = campaign.report.as_rows()
        assert all(len(r) == 5 for r in rows)

    def test_report_merges_timings(self, campaign, simulator):
        campaign.compress_snapshot(simulator.snapshot(z=0.75))
        merged = campaign.report.timings
        assert set(merged.totals) >= {"features", "optimize", "compress"}
        assert merged.overhead_ratio("features", "compress") >= 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_selection_end_to_end(self, decomposition, simulator, backend):
        """Campaign results are backend-independent, byte for byte."""
        snap = simulator.snapshot(z=1.0)
        specs = {"baryon_density": FieldSpec(halo_aware=True)}

        def build(backend_spec):
            c = CompressionCampaign(
                decomposition, field_specs=specs, backend=backend_spec
            )
            c.calibrate(snap, max_partitions=4)
            return c

        serial_report = build(None).compress_snapshot(snap)
        kwargs = {"max_workers": 2} if backend == "process" else {}
        from repro.parallel.backends import get_backend

        with get_backend(backend, **kwargs) as resolved:
            other_report = build(resolved).compress_snapshot(snap)
        for a, b in zip(serial_report.outcomes, other_report.outcomes):
            assert a.field == b.field
            assert np.array_equal(a.result.ebs, b.result.ebs)
            for blk_a, blk_b in zip(a.result.blocks, b.result.blocks):
                assert blk_a.payloads == blk_b.payloads

    def test_empty_report_rejected(self):
        from repro.core.campaign import CampaignReport

        with pytest.raises(ValueError, match="empty"):
            CampaignReport().overall_ratio

    def test_report_exports(self, campaign):
        import json

        report = campaign.report
        table = report.to_table(title="campaign")
        assert table.startswith("campaign")
        assert "baryon_density" in table
        payload = json.loads(report.to_json())
        assert payload["compressed_bytes"] == report.compressed_bytes
        assert len(payload["outcomes"]) == len(report.outcomes)
        first = payload["outcomes"][0]
        assert set(first) == {
            "redshift", "field", "eb_avg", "ratio", "compressed_bytes",
        }

    def test_is_thin_client_of_stream_controller(self, campaign):
        """The campaign's decisions are the controller's decisions: the
        in-memory ledger of the wrapped controller replays to the same
        per-partition bounds the campaign reported."""
        from repro.stream.controller import replay_ledger

        decisions = replay_ledger(campaign.controller.ledger)
        live = {
            (o.redshift, o.field): o.result.ebs for o in campaign.report.outcomes
        }
        assert len(decisions) == len(campaign.report.outcomes)
        for d in decisions:
            key = (d.redshift, d.field)
            assert np.array_equal(np.asarray(d.ebs), live[key])
