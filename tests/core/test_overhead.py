"""Overhead accounting (§4.3)."""

from __future__ import annotations

import pytest

from repro.core.overhead import measure_overhead


class TestOverhead:
    def test_phases_measured(self, snapshot, decomposition):
        report = measure_overhead(
            snapshot["baryon_density"], decomposition, eb=0.2, repeats=1
        )
        assert report.feature_time > 0
        assert report.compress_time > 0
        assert report.boundary_time == 0.0  # no t_boundary given

    def test_feature_overhead_small(self, snapshot, decomposition):
        """The paper's headline: mean extraction ~1-1.5% of compression."""
        report = measure_overhead(
            snapshot["baryon_density"], decomposition, eb=0.2, repeats=2
        )
        assert report.feature_overhead < 0.25  # generous CI-machine margin

    def test_boundary_feature_measured(self, snapshot, decomposition):
        report = measure_overhead(
            snapshot["baryon_density"],
            decomposition,
            eb=0.2,
            t_boundary=10.0,
            repeats=1,
        )
        assert report.boundary_time >= 0.0
        assert report.total_overhead >= report.feature_overhead

    def test_rejects_bad_repeats(self, snapshot, decomposition):
        with pytest.raises(ValueError, match="repeats"):
            measure_overhead(snapshot["baryon_density"], decomposition, 0.2, repeats=0)
