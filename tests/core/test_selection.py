"""Per-field compressor selection: §2.2 reproduced as a runtime decision."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.api import CompressorSpec
from repro.core.config import FieldSpec
from repro.core.selection import (
    CandidateVerdict,
    SelectionResult,
    default_candidates,
    select_compressor,
)
from repro.models.calibration import RateModelBank
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator


@pytest.fixture(scope="module")
def snapshot():
    sim = NyxSimulator(shape=(16, 16, 16), box_size=16.0, seed=7, sigma_delta0=2.5)
    return sim.snapshot(z=1.0)


@pytest.fixture(scope="module")
def dec():
    return BlockDecomposition((16, 16, 16), blocks=2)


class TestPaperArgument:
    def test_sz_chosen_zfp_rejected_for_every_field(self, snapshot, dec):
        """The acceptance criterion: at paper quality targets, SZ wins every
        field and the fixed-rate comparator is rejected *quantified*."""
        bank = RateModelBank(max_partitions=8)
        for name, data in snapshot.fields.items():
            result = select_compressor(
                data, dec, field=name, bank=bank, max_partitions=8
            )
            assert result.chosen.family == "sz", name
            zfp = result.verdict_for(CompressorSpec.zfp_like())
            assert not zfp.eligible
            # The violation is quantified, not just asserted.
            assert zfp.max_abs_error is not None and zfp.max_abs_error > result.eb_avg
            assert zfp.eb_violation == pytest.approx(
                zfp.max_abs_error / result.eb_avg
            )
            assert zfp.eb_violation > 1.0
            assert "cannot enforce" in zfp.reason

    def test_chosen_verdict_has_calibration_and_prediction(self, snapshot, dec):
        result = select_compressor(
            snapshot["temperature"], dec, field="temperature", max_partitions=8
        )
        verdict = result.chosen_verdict
        assert verdict.eligible
        assert verdict.predicted_bit_rate > 0
        assert verdict.calibration is not None
        assert result.calibration is verdict.calibration


class TestMechanics:
    def test_bank_reused_across_fields(self, snapshot, dec):
        bank = RateModelBank(max_partitions=8)
        data = snapshot["temperature"]
        first = select_compressor(data, dec, field="t", bank=bank, max_partitions=8)
        again = select_compressor(data, dec, field="t", bank=bank, max_partitions=8)
        # Same bank, same field, same spec -> the calibration is a cache hit.
        assert again.calibration is first.calibration

    def test_explicit_eb_avg_skips_budget_inversion(self, snapshot, dec):
        result = select_compressor(
            snapshot["temperature"], dec, eb_avg=123.0, max_partitions=8
        )
        assert result.eb_avg == 123.0

    def test_high_rate_fixed_candidate_can_be_eligible(self, dec):
        """A generous fixed rate that stays inside a loose bound is an
        honest candidate — unless an error-bound guarantee is required."""
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1.0, (16, 16, 16))
        loose = select_compressor(
            data,
            dec,
            candidates=[CompressorSpec.sz(), CompressorSpec.zfp_like(rate=24.0)],
            eb_avg=0.5,
            max_partitions=8,
        )
        zfp = loose.verdict_for(
            CompressorSpec.make("zfp_like", rate=24.0)
        )
        assert zfp.eligible
        assert zfp.eb_violation is not None and zfp.eb_violation <= 1.0
        strict = select_compressor(
            data,
            dec,
            candidates=[CompressorSpec.sz(), CompressorSpec.zfp_like(rate=24.0)],
            eb_avg=0.5,
            max_partitions=8,
            require_error_bounded=True,
        )
        assert not strict.verdict_for(
            CompressorSpec.make("zfp_like", rate=24.0)
        ).eligible
        assert strict.chosen.family == "sz"

    def test_no_eligible_candidate_raises_with_verdicts(self, snapshot, dec):
        with pytest.raises(ValueError, match="no candidate"):
            select_compressor(
                snapshot["temperature"],
                dec,
                candidates=[CompressorSpec.zfp_like(rate=2.0)],
                max_partitions=8,
            )

    def test_default_candidates_are_paper_comparison(self):
        cands = default_candidates()
        assert [c.family for c in cands] == ["sz", "zfp_like"]

    def test_result_to_dict_is_json_ready(self, snapshot, dec):
        import json

        result = select_compressor(
            snapshot["temperature"], dec, field="temperature", max_partitions=8
        )
        blob = json.dumps(result.to_dict())
        parsed = json.loads(blob)
        assert parsed["chosen"]["family"] == "sz"
        assert len(parsed["verdicts"]) == 2

    def test_verdict_lookup_missing_spec(self, snapshot, dec):
        result = select_compressor(
            snapshot["temperature"], dec, max_partitions=8
        )
        assert isinstance(result, SelectionResult)
        assert all(isinstance(v, CandidateVerdict) for v in result.verdicts)
        with pytest.raises(KeyError):
            result.verdict_for(CompressorSpec("sz_adaptive"))
