"""Static baseline and the trial-and-error search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectrum import check_spectrum_quality
from repro.core.baselines import StaticBaseline, TrialAndErrorSearch


class TestStaticBaseline:
    def test_uniform_bounds(self, snapshot, decomposition):
        res = StaticBaseline().run(snapshot["temperature"], decomposition, 50.0)
        assert all(b.eb == 50.0 for b in res.blocks)
        assert res.eb == 50.0

    def test_reconstruct_respects_bound(self, snapshot, decomposition):
        data = snapshot["temperature"]
        res = StaticBaseline().run(data, decomposition, 50.0)
        recon = res.reconstruct(decomposition)
        assert np.max(np.abs(recon - data)) <= 50.0 + 1e-6

    def test_rejects_bad_eb(self, snapshot, decomposition):
        with pytest.raises(ValueError, match="positive"):
            StaticBaseline().run(snapshot["temperature"], decomposition, 0.0)


class TestTrialAndError:
    def test_finds_largest_passing_bound(self, snapshot, decomposition):
        data = snapshot["temperature"]
        search = TrialAndErrorSearch(
            lambda o, r: check_spectrum_quality(o, r, tolerance=0.02)
        )
        result = search.search(data, decomposition, [1.0, 10.0, 100.0, 10000.0])
        # The returned bound passed; every larger candidate failed.
        trials = {t.eb: t.passed for t in search.trials}
        assert trials[result.eb]
        for eb, passed in trials.items():
            if eb > result.eb:
                assert not passed

    def test_counts_trials(self, snapshot, decomposition):
        data = snapshot["temperature"]
        search = TrialAndErrorSearch(
            lambda o, r: check_spectrum_quality(o, r, tolerance=0.02)
        )
        search.search(data, decomposition, [1.0, 100.0])
        assert search.n_trials >= 1
        assert search.n_trials <= 2

    def test_all_failing_raises(self, snapshot, decomposition):
        data = snapshot["temperature"]
        search = TrialAndErrorSearch(lambda o, r: (False, 1.0))
        with pytest.raises(ValueError, match="no candidate"):
            search.search(data, decomposition, [1.0])

    def test_rejects_empty_candidates(self, snapshot, decomposition):
        search = TrialAndErrorSearch(lambda o, r: (True, 0.0))
        with pytest.raises(ValueError, match="at least one"):
            search.search(snapshot["temperature"], decomposition, [])

    def test_rejects_nonpositive_candidates(self, snapshot, decomposition):
        search = TrialAndErrorSearch(lambda o, r: (True, 0.0))
        with pytest.raises(ValueError, match="positive"):
            search.search(snapshot["temperature"], decomposition, [1.0, -2.0])

    def test_records_quality_metric(self, snapshot, decomposition):
        data = snapshot["temperature"]
        search = TrialAndErrorSearch(
            lambda o, r: check_spectrum_quality(o, r, tolerance=0.02)
        )
        search.search(data, decomposition, [10.0])
        assert search.trials[0].quality_metric >= 0.0
        assert search.trials[0].ratio > 1.0
