"""In situ feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import PartitionFeatures, extract_features, histogram_entropy


class TestExtractFeatures:
    def test_mean_abs(self):
        arr = np.array([[[-2.0, 2.0], [4.0, -4.0]]])
        f = extract_features(arr, rank=3)
        assert f.mean_abs == 3.0
        assert f.rank == 3
        assert f.n_cells == 4

    def test_boundary_rate_only_with_threshold(self):
        arr = np.full((4, 4, 4), 10.0)
        assert extract_features(arr).effective_cell_rate is None
        f = extract_features(arr, t_boundary=10.5, reference_eb=1.0)
        assert f.effective_cell_rate == 64.0

    def test_entropy_optional(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(0, 1, (6, 6, 6))
        assert extract_features(arr).entropy is None
        f = extract_features(arr, with_entropy=True)
        assert f.entropy is not None and f.entropy > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            extract_features(np.empty((0, 2, 2)))

    def test_features_validation(self):
        with pytest.raises(ValueError, match="n_cells"):
            PartitionFeatures(rank=0, n_cells=0, mean_abs=1.0)
        with pytest.raises(ValueError, match="mean_abs"):
            PartitionFeatures(rank=0, n_cells=1, mean_abs=-1.0)


class TestEntropy:
    def test_constant_field_zero_entropy(self):
        assert histogram_entropy(np.full((4, 4, 4), 3.0)) == 0.0

    def test_uniform_has_max_entropy(self):
        rng = np.random.default_rng(1)
        uniform = rng.random(100_000)
        peaked = rng.normal(0.5, 0.01, 100_000)
        assert histogram_entropy(uniform) > histogram_entropy(peaked)

    def test_bounded_by_log_bins(self):
        rng = np.random.default_rng(2)
        h = histogram_entropy(rng.random(10_000), bins=64)
        assert h <= np.log2(64) + 1e-9
