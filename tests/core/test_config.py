"""Configuration dataclass validation."""

from __future__ import annotations

import pytest

from repro.core.config import HaloQualitySpec, OptimizerSettings, QualityTargets


class TestQualityTargets:
    def test_paper_defaults(self):
        t = QualityTargets()
        assert t.spectrum_tolerance == 0.01
        assert t.spectrum_k_max == 10
        assert t.confidence_z == 2.0
        assert t.halo_mass_rmse == 0.01

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spectrum_tolerance": 0.0},
            {"spectrum_k_max": 1},
            {"confidence_z": -1.0},
            {"halo_mass_rmse": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            QualityTargets(**kwargs)


class TestOptimizerSettings:
    def test_paper_defaults(self):
        s = OptimizerSettings()
        assert s.clamp_factor == 4.0
        assert s.normalization == "exact"
        assert s.constraint_mode == "paper"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clamp_factor": 0.5},
            {"normalization": "global"},
            {"constraint_mode": "l2"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            OptimizerSettings(**kwargs)


class TestHaloQualitySpec:
    def test_valid(self):
        h = HaloQualitySpec(t_boundary=88.0, mass_budget=100.0)
        assert h.reference_eb == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"t_boundary": 0.0, "mass_budget": 1.0},
            {"t_boundary": 1.0, "mass_budget": 0.0},
            {"t_boundary": 1.0, "mass_budget": 1.0, "reference_eb": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            HaloQualitySpec(**kwargs)
