"""Per-partition optimization strategies (§3.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures
from repro.core.optimizer import (
    optimize_combined,
    optimize_for_halo,
    optimize_for_spectrum,
)
from repro.models.halo_error import halo_mass_error_budget
from repro.models.rate_model import RateModel


def _features(means, rates=None):
    rates = rates if rates is not None else [None] * len(means)
    return [
        PartitionFeatures(rank=i, n_cells=4096, mean_abs=m, effective_cell_rate=r)
        for i, (m, r) in enumerate(zip(means, rates))
    ]


@pytest.fixture
def model() -> RateModel:
    return RateModel(exponent=-0.7, coef_alpha=0.0, coef_beta=0.5)


class TestSpectrumOptimization:
    def test_mean_preserved(self, model):
        feats = _features([0.1, 1.0, 10.0, 100.0])
        res = optimize_for_spectrum(feats, model, eb_avg=0.5)
        assert res.eb_mean == pytest.approx(0.5, rel=1e-9)

    def test_higher_mean_gets_higher_eb(self, model):
        """Harder (higher-C) partitions trade quality for rate (§3.1)."""
        feats = _features([0.1, 1.0, 10.0])
        res = optimize_for_spectrum(feats, model, eb_avg=0.5)
        assert res.ebs[0] < res.ebs[1] < res.ebs[2]

    def test_clamp(self, model):
        feats = _features([1e-6, 1.0, 1e6])
        res = optimize_for_spectrum(
            feats, model, eb_avg=1.0, settings=OptimizerSettings(clamp_factor=4.0)
        )
        assert res.ebs.min() >= 0.25 - 1e-12
        assert res.ebs.max() <= 4.0 + 1e-12

    def test_local_normalization_close_to_exact(self, model):
        feats = _features(list(np.logspace(-0.5, 0.5, 32)))
        exact = optimize_for_spectrum(feats, model, eb_avg=1.0)
        local = optimize_for_spectrum(
            feats, model, eb_avg=1.0, settings=OptimizerSettings(normalization="local")
        )
        # The paper's one-allreduce protocol approximates the constraint.
        assert local.eb_mean == pytest.approx(1.0, rel=0.2)
        assert np.corrcoef(exact.ebs, local.ebs)[0, 1] > 0.99

    def test_predicted_bitrates_returned(self, model):
        feats = _features([1.0, 2.0])
        res = optimize_for_spectrum(feats, model, eb_avg=0.5)
        assert res.predicted_bitrates.shape == (2,)
        assert (res.predicted_bitrates > 0).all()

    def test_rejects_empty_features(self, model):
        with pytest.raises(ValueError, match="at least one"):
            optimize_for_spectrum([], model, eb_avg=0.5)


class TestHaloOptimization:
    def test_budget_satisfied(self, model):
        rates = [100.0, 400.0, 50.0]
        feats = _features([1.0, 5.0, 0.2], rates)
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=2000.0)
        res = optimize_for_halo(feats, model, halo)
        used = halo_mass_error_budget(50.0, np.array(rates), res.ebs)
        assert used <= 2000.0 * (1 + 1e-6)
        assert res.constraint == "halo"

    def test_feature_dense_partitions_protected(self, model):
        """More boundary cells -> smaller error bound."""
        feats = _features([1.0, 1.0, 1.0], [10.0, 100.0, 1000.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=1000.0)
        res = optimize_for_halo(feats, model, halo)
        assert res.ebs[0] > res.ebs[1] > res.ebs[2]

    def test_requires_rates(self, model):
        feats = _features([1.0, 2.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=100.0)
        with pytest.raises(ValueError, match="effective_cell_rate"):
            optimize_for_halo(feats, model, halo)

    def test_no_boundary_cells_rejected(self, model):
        feats = _features([1.0, 2.0], [0.0, 0.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=100.0)
        with pytest.raises(ValueError, match="vacuous"):
            optimize_for_halo(feats, model, halo)


class TestCombinedOptimization:
    def test_loose_budget_keeps_spectrum_solution(self, model):
        feats = _features([0.5, 1.0, 2.0], [1.0, 2.0, 1.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=1e9)
        spec = optimize_for_spectrum(feats, model, eb_avg=0.5)
        combined = optimize_combined(feats, model, eb_avg=0.5, halo=halo)
        assert not combined.halo_constrained
        assert np.allclose(combined.ebs, spec.ebs)

    def test_tight_budget_caps_bounds(self, model):
        feats = _features([0.5, 1.0, 2.0], [100.0, 200.0, 400.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=50.0)
        combined = optimize_combined(feats, model, eb_avg=0.5, halo=halo)
        spec = optimize_for_spectrum(feats, model, eb_avg=0.5)
        assert combined.halo_constrained
        assert (combined.ebs <= spec.ebs + 1e-12).all()
        assert combined.halo_budget_used <= 50.0 * (1 + 1e-6)

    def test_both_constraints_hold_after_capping(self, model):
        """The §3.6 'boundary condition': average never rises, budget met."""
        feats = _features([0.5, 1.0, 5.0], [500.0, 10.0, 1.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=500.0)
        combined = optimize_combined(feats, model, eb_avg=1.0, halo=halo)
        assert combined.eb_mean <= 1.0 + 1e-9
        assert combined.halo_budget_used <= 500.0 * (1 + 1e-6)

    def test_requires_rates(self, model):
        feats = _features([1.0])
        halo = HaloQualitySpec(t_boundary=50.0, mass_budget=100.0)
        with pytest.raises(ValueError, match="effective_cell_rate"):
            optimize_combined(feats, model, eb_avg=0.5, halo=halo)
