"""The in situ adaptive pipeline end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import StaticBaseline
from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.calibration import calibrate_rate_model


@pytest.fixture(scope="module")
def calibrated(request):
    snapshot = request.getfixturevalue("snapshot")
    decomposition = request.getfixturevalue("decomposition")
    views = decomposition.partition_views(snapshot["baryon_density"])
    return calibrate_rate_model(views, eb_scale=0.2, seed=0)


class TestRun:
    def test_produces_block_per_partition(self, snapshot, decomposition, calibrated):
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert len(res.blocks) == decomposition.n_partitions
        assert res.ebs.shape == (decomposition.n_partitions,)

    def test_error_bounds_respected_per_partition(
        self, snapshot, decomposition, calibrated
    ):
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        from repro.compression.sz import decompress

        for p, block, eb in zip(decomposition, res.blocks, res.ebs):
            recon = decompress(block)
            orig = p.view(snapshot["baryon_density"]).astype(np.float64)
            assert np.max(np.abs(recon - orig)) <= eb + 1e-9

    def test_reconstruct_assembles_global_field(
        self, snapshot, decomposition, calibrated
    ):
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        recon = res.reconstruct(decomposition)
        assert recon.shape == snapshot.shape
        assert np.max(np.abs(recon - snapshot["baryon_density"])) <= res.ebs.max() + 1e-9

    def test_average_bound_maintained(self, snapshot, decomposition, calibrated):
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert res.ebs.mean() == pytest.approx(0.2, rel=1e-6)

    def test_ratio_not_worse_than_static(self, snapshot, decomposition, calibrated):
        """The core claim at equal average bound (redistribution gain >= 0)."""
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(data, decomposition, eb_avg=0.2)
        static = StaticBaseline().run(data, decomposition, 0.2)
        assert res.overall_ratio >= static.overall_ratio * 0.97

    def test_halo_spec_activates_combined_path(
        self, snapshot, decomposition, calibrated
    ):
        data = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(data, 99.0))
        halo = HaloQualitySpec(t_boundary=tb, mass_budget=1.0, reference_eb=0.5)
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2, halo=halo)
        assert res.optimization.constraint == "combined"
        assert res.features[0].effective_cell_rate is not None

    def test_timings_recorded(self, snapshot, decomposition, calibrated):
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert set(res.timings.totals) >= {"features", "optimize", "compress"}
        assert res.timings.totals["compress"] > 0

    def test_eb_map_shape(self, snapshot, decomposition, calibrated):
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert res.eb_map(decomposition).shape == decomposition.blocks


class TestSpmdEquivalence:
    def test_spmd_matches_serial_exact_mode(self, snapshot, decomposition, calibrated):
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        serial = pipe.run(data, decomposition, eb_avg=0.2)
        spmd = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2)
        assert np.allclose(spmd.ebs, serial.ebs)
        assert [b.nbytes for b in spmd.blocks] == [b.nbytes for b in serial.blocks]

    def test_spmd_local_protocol_close(self, snapshot, decomposition, calibrated):
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(
            calibrated.rate_model, settings=OptimizerSettings(normalization="local")
        )
        spmd = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2)
        assert spmd.ebs.mean() == pytest.approx(0.2, rel=0.25)

    def test_spmd_with_halo(self, snapshot, decomposition, calibrated):
        data = snapshot["baryon_density"]
        tb = float(np.percentile(data.astype(np.float64), 99.0))
        halo = HaloQualitySpec(t_boundary=tb, mass_budget=100.0, reference_eb=0.5)
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        serial = pipe.run(data, decomposition, eb_avg=0.2, halo=halo)
        spmd = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2, halo=halo)
        assert np.allclose(spmd.ebs, serial.ebs)

    def test_spmd_timings_populated(self, snapshot, decomposition, calibrated):
        """Regression: the SPMD path used to return empty timings."""
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run_insitu_spmd(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert set(res.timings.totals) >= {"features", "optimize", "compress"}
        assert res.timings.totals["compress"] > 0
        # One merged entry per rank for the per-rank phases.
        assert res.timings.counts["features"] == decomposition.n_partitions

    def test_spmd_returns_rank0_optimization(self, snapshot, decomposition, calibrated):
        """Regression: the SPMD path used to re-solve the optimization on
        the main thread instead of returning the ranks' own result."""
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model)
        res = pipe.run_insitu_spmd(snapshot["baryon_density"], decomposition, eb_avg=0.2)
        assert res.optimization is not None
        assert res.optimization.ebs is res.ebs or np.array_equal(
            res.optimization.ebs, res.ebs
        )

    def test_backend_argument_accepts_names(self, snapshot, decomposition, calibrated):
        data = snapshot["baryon_density"]
        pipe = AdaptiveCompressionPipeline(calibrated.rate_model, backend="serial")
        assert pipe.backend.name == "serial"
        via_serial = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2)
        via_thread = pipe.run_insitu_spmd(data, decomposition, eb_avg=0.2, backend="thread")
        assert np.array_equal(via_serial.ebs, via_thread.ebs)
