"""Halo catalog matching and quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.catalog import compare_catalogs, match_halos
from repro.analysis.halos import HaloCatalog


def _catalog(masses, positions) -> HaloCatalog:
    masses = np.asarray(masses, dtype=np.float64)
    order = np.argsort(-masses)
    return HaloCatalog(
        masses=masses[order],
        positions=np.asarray(positions, dtype=np.float64)[order],
        sizes=np.maximum(masses[order].astype(np.int64) // 10, 1),
        peak_densities=masses[order],
        t_boundary=10.0,
        t_halo=20.0,
        n_candidate_cells=int(masses.sum() / 10),
    )


class TestMatching:
    def test_perfect_match(self):
        cat = _catalog([100, 50], [[1, 1, 1], [5, 5, 5]])
        oi, ri = match_halos(cat, cat)
        assert len(oi) == 2
        assert np.array_equal(oi, ri)

    def test_displaced_within_tolerance(self):
        a = _catalog([100], [[1, 1, 1]])
        b = _catalog([95], [[1.5, 1, 1]])
        oi, ri = match_halos(a, b, max_distance=2.0)
        assert len(oi) == 1

    def test_displaced_beyond_tolerance(self):
        a = _catalog([100], [[1, 1, 1]])
        b = _catalog([95], [[9, 9, 9]])
        oi, _ = match_halos(a, b, max_distance=2.0)
        assert len(oi) == 0

    def test_each_reconstructed_used_once(self):
        a = _catalog([100, 90], [[1, 1, 1], [1.5, 1, 1]])
        b = _catalog([95], [[1.2, 1, 1]])
        oi, ri = match_halos(a, b)
        assert len(ri) == len(set(ri.tolist())) == 1

    def test_empty_catalogs(self):
        a = _catalog([100], [[1, 1, 1]])
        empty = _catalog([], np.empty((0, 3)))
        assert match_halos(a, empty)[0].size == 0
        assert match_halos(empty, a)[0].size == 0


class TestComparison:
    def test_identical_catalogs(self):
        cat = _catalog([100, 50, 25], [[1, 1, 1], [5, 5, 5], [9, 9, 9]])
        cmp = compare_catalogs(cat, cat)
        assert cmp.n_matched == 3
        assert cmp.mass_rmse == 0.0
        assert cmp.count_change == 0
        assert cmp.max_position_error == 0.0

    def test_mass_rmse(self):
        a = _catalog([100.0], [[1, 1, 1]])
        b = _catalog([102.0], [[1, 1, 1]])
        cmp = compare_catalogs(a, b)
        assert cmp.mass_rmse == pytest.approx(0.02)

    def test_count_change(self):
        a = _catalog([100, 50], [[1, 1, 1], [5, 5, 5]])
        b = _catalog([100], [[1, 1, 1]])
        cmp = compare_catalogs(a, b)
        assert cmp.count_change == -1

    def test_mass_rmse_above_restricts(self):
        a = _catalog([1000.0, 10.0], [[1, 1, 1], [5, 5, 5]])
        b = _catalog([1000.0, 15.0], [[1, 1, 1], [5, 5, 5]])
        cmp = compare_catalogs(a, b)
        assert cmp.mass_rmse > 0.1  # small halo ruins the global number
        assert cmp.mass_rmse_above(100.0) == pytest.approx(0.0)

    def test_no_matches_gives_nan(self):
        a = _catalog([100], [[0, 0, 0]])
        b = _catalog([100], [[9, 9, 9]])
        cmp = compare_catalogs(a, b)
        assert np.isnan(cmp.mass_rmse)
