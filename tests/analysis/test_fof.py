"""Particle friends-of-friends finder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fof import friends_of_friends


class TestFoF:
    def test_two_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal([2, 2, 2], 0.05, (50, 3))
        b = rng.normal([8, 8, 8], 0.05, (30, 3))
        pos = np.vstack([a, b])
        res = friends_of_friends(pos, linking_length=0.5)
        big = res.groups_with_at_least(10)
        assert len(big) == 2
        assert sorted(res.group_sizes[big].tolist()) == [30, 50]

    def test_chain_connectivity(self):
        """FoF links transitively: a chain forms one group."""
        pos = np.array([[float(i) * 0.9, 0.0, 0.0] for i in range(10)])
        res = friends_of_friends(pos + 5.0, linking_length=1.0)
        assert res.n_groups == 1

    def test_chain_breaks_beyond_linking_length(self):
        pos = np.array([[float(i) * 1.1, 0.0, 0.0] for i in range(10)])
        res = friends_of_friends(pos + 5.0, linking_length=1.0)
        assert res.n_groups == 10

    def test_isolated_particles_are_singletons(self):
        pos = np.array([[0.0, 0, 0], [10.0, 0, 0], [20.0, 0, 0]]) + 1.0
        res = friends_of_friends(pos, linking_length=0.5)
        assert res.n_groups == 3
        assert (res.group_sizes == 1).all()

    def test_periodic_wrapping(self):
        pos = np.array([[0.05, 5.0, 5.0], [9.95, 5.0, 5.0]])
        res_open = friends_of_friends(pos, linking_length=0.2)
        res_periodic = friends_of_friends(pos, linking_length=0.2, box_size=10.0)
        assert res_open.n_groups == 2
        assert res_periodic.n_groups == 1

    def test_centers_of_mass(self):
        pos = np.array([[1.0, 1.0, 1.0], [1.2, 1.0, 1.0]])
        res = friends_of_friends(pos, linking_length=0.5)
        assert res.n_groups == 1
        assert np.allclose(res.centers[0], [1.1, 1.0, 1.0])

    def test_most_connected_particle(self):
        """The hub of a star topology has the most friends (§2.1)."""
        hub = np.array([[5.0, 5.0, 5.0]])
        spokes = hub + np.array(
            [[0.4, 0, 0], [-0.4, 0, 0], [0, 0.4, 0], [0, -0.4, 0], [0, 0, 0.4]]
        )
        pos = np.vstack([hub, spokes])
        res = friends_of_friends(pos, linking_length=0.5)
        assert res.n_groups == 1
        assert res.most_connected[0] == 0

    def test_empty_input(self):
        res = friends_of_friends(np.empty((0, 3)), linking_length=1.0)
        assert res.n_groups == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            friends_of_friends(np.zeros((5, 2)), linking_length=1.0)

    def test_rejects_bad_linking_length(self):
        with pytest.raises(ValueError, match="linking_length"):
            friends_of_friends(np.zeros((3, 3)), linking_length=0.0)

    def test_group_ids_consistent_with_sizes(self):
        rng = np.random.default_rng(1)
        pos = rng.random((200, 3)) * 10
        res = friends_of_friends(pos, linking_length=0.7)
        counted = np.bincount(res.group_ids, minlength=res.n_groups)
        assert np.array_equal(counted, res.group_sizes)
