"""SSIM extension (the paper's §5 future-work metric)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ssim import fit_ssim_curve, ssim3d, ssim_tolerance_to_eb
from repro.compression.sz import SZCompressor


class TestSSIM:
    def test_identical_is_one(self):
        rng = np.random.default_rng(0)
        f = rng.normal(0, 1, (16, 16, 16))
        assert ssim3d(f, f.copy()) == pytest.approx(1.0)

    def test_decreases_with_noise(self):
        rng = np.random.default_rng(1)
        f = rng.normal(0, 1, (16, 16, 16))
        s1 = ssim3d(f, f + rng.normal(0, 0.1, f.shape))
        s2 = ssim3d(f, f + rng.normal(0, 0.5, f.shape))
        assert 1.0 > s1 > s2

    def test_mean_shift_penalized(self):
        rng = np.random.default_rng(2)
        f = rng.normal(0, 1, (12, 12, 12))
        assert ssim3d(f, f + 2.0) < 1.0

    def test_symmetric_under_swap(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, (12, 12, 12))
        b = a + rng.normal(0, 0.2, a.shape)
        assert ssim3d(a, b, data_range=float(a.max() - a.min())) == pytest.approx(
            ssim3d(b, a, data_range=float(a.max() - a.min())), rel=1e-10
        )

    def test_box_filter_window_effects(self):
        rng = np.random.default_rng(4)
        f = rng.normal(0, 1, (20, 20, 20))
        noisy = f + rng.normal(0, 0.3, f.shape)
        # Any window size gives a value in (0, 1); exact values differ.
        for w in (3, 5, 9):
            s = ssim3d(f, noisy, window=w)
            assert 0.0 < s < 1.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ssim3d(np.zeros((8, 8, 8)), np.zeros((8, 8, 9)))

    def test_rejects_window_too_large(self):
        with pytest.raises(ValueError, match="window"):
            ssim3d(np.zeros((4, 4, 4)), np.zeros((4, 4, 4)), window=5)

    def test_rejects_zero_range(self):
        f = np.ones((8, 8, 8))
        with pytest.raises(ValueError, match="range"):
            ssim3d(f, f)


class TestSSIMCurve:
    def test_fit_and_inversion(self, snapshot):
        data = snapshot["temperature"]
        comp = SZCompressor()
        a, p = fit_ssim_curve(data, comp, probe_ebs=[5.0, 20.0, 80.0])
        assert a > 0 and p > 0
        # Invert for a target; the fitted curve must honour it.
        eb = ssim_tolerance_to_eb(a, p, min_ssim=0.99)
        predicted_loss = a * eb**p
        assert predicted_loss == pytest.approx(0.01, rel=1e-6)

    def test_loss_grows_with_eb(self, snapshot):
        from repro.compression.sz import decompress
        from repro.analysis.ssim import ssim3d as s3

        data = snapshot["temperature"].astype(np.float64)
        comp = SZCompressor()
        losses = []
        for eb in (5.0, 50.0, 500.0):
            recon = decompress(comp.compress(snapshot["temperature"], eb))
            losses.append(1.0 - s3(data, recon))
        assert losses[0] < losses[1] < losses[2]

    def test_inversion_validation(self):
        with pytest.raises(ValueError, match="min_ssim"):
            ssim_tolerance_to_eb(1.0, 1.0, min_ssim=1.5)
        with pytest.raises(ValueError, match="positive"):
            ssim_tolerance_to_eb(-1.0, 1.0, min_ssim=0.9)

    def test_fit_requires_two_probes(self, snapshot):
        with pytest.raises(ValueError, match="two probe"):
            fit_ssim_curve(snapshot["temperature"], SZCompressor(), probe_ebs=[1.0])
