"""FoF against a brute-force O(n^2) oracle (property-based)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fof import friends_of_friends
from repro.analysis.labeling import UnionFind


def _brute_force_groups(pos: np.ndarray, ll: float, box: float | None) -> np.ndarray:
    """Reference grouping: check every pair."""
    n = len(pos)
    uf = UnionFind(n)
    for i in range(n):
        d = pos[i + 1 :] - pos[i]
        if box is not None:
            d -= box * np.rint(d / box)
        close = (d**2).sum(axis=1) <= ll**2
        for j in np.flatnonzero(close):
            uf.union(i, i + 1 + int(j))
    roots = uf.roots()
    _, ids = np.unique(roots, return_inverse=True)
    return ids


def _partitions_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Two labelings describe the same partition of indices."""
    pairs = set(zip(a.tolist(), b.tolist()))
    return len(pairs) == len(set(a.tolist())) == len(set(b.tolist()))


@given(
    st.integers(0, 2**32 - 1),
    st.integers(2, 60),
    st.floats(0.05, 0.8),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_fof_matches_brute_force(seed, n, ll, periodic):
    rng = np.random.default_rng(seed)
    box = 4.0
    pos = rng.random((n, 3)) * box
    res = friends_of_friends(pos, ll, box_size=box if periodic else None)
    oracle = _brute_force_groups(pos, ll, box if periodic else None)
    assert _partitions_equal(res.group_ids, oracle)


@given(st.integers(0, 2**32 - 1), st.integers(5, 40))
@settings(max_examples=20, deadline=None)
def test_group_sizes_partition_total(seed, n):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3)) * 5.0
    res = friends_of_friends(pos, 0.4)
    assert res.group_sizes.sum() == n
    assert res.centers.shape == (res.n_groups, 3)
