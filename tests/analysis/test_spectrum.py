"""Power spectrum: known-signal checks, Parseval, quality criterion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectrum import (
    check_spectrum_quality,
    power_spectrum,
    spectrum_ratio,
)


def _plane_wave(n: int, k: int) -> np.ndarray:
    x = np.arange(n)
    return np.cos(2 * np.pi * k * x / n)[:, None, None] * np.ones((1, n, n))


class TestPowerSpectrum:
    def test_plane_wave_peaks_at_right_bin(self):
        f = _plane_wave(32, 5)
        ps = power_spectrum(f)
        assert ps.k[np.argmax(ps.power)] == 5

    def test_parseval(self):
        """Total binned power equals the field variance (all modes kept)."""
        rng = np.random.default_rng(0)
        f = rng.normal(0, 1, (16, 16, 16))
        ps = power_spectrum(f, nbins=8)
        # Within the binned range; modes beyond the 1-D Nyquist ball are
        # excluded, so compare against the power inside those bins.
        total_binned = float((ps.power * ps.n_modes).sum())
        fk = np.fft.fftn(f - f.mean())
        kx = np.fft.fftfreq(16) * 16
        kk = np.sqrt(
            kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kx[None, None, :] ** 2
        )
        mask = (np.rint(kk) >= 1) & (np.rint(kk) <= 8)
        expected = float((np.abs(fk[mask]) ** 2).sum() / f.size)
        assert total_binned == pytest.approx(expected, rel=1e-10)

    def test_mode_counts_sum(self):
        ps = power_spectrum(np.random.default_rng(1).normal(0, 1, (16, 16, 16)))
        assert (ps.n_modes > 0).all()
        # k=1 bin has the 6 axis modes plus nothing else at integer radius 1.
        assert ps.n_modes[0] >= 6

    def test_amplitude_scaling(self):
        f = np.random.default_rng(2).normal(0, 1, (16, 16, 16))
        p1 = power_spectrum(f).power
        p2 = power_spectrum(3.0 * f).power
        assert np.allclose(p2, 9.0 * p1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            power_spectrum(np.zeros((8, 8)))

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="too small"):
            power_spectrum(np.random.default_rng(0).normal(0, 1, (2, 2, 2)), nbins=0)


class TestSpectrumRatio:
    def test_identity_is_one(self):
        f = np.random.default_rng(3).normal(0, 1, (16, 16, 16))
        _, ratio = spectrum_ratio(f, f.copy())
        assert np.allclose(ratio, 1.0)

    def test_white_noise_raises_ratio(self):
        rng = np.random.default_rng(4)
        f = rng.normal(0, 1, (16, 16, 16))
        noisy = f + rng.normal(0, 0.5, f.shape)
        _, ratio = spectrum_ratio(f, noisy)
        assert ratio.mean() > 1.0


class TestQualityCheck:
    def test_identical_passes(self):
        f = np.random.default_rng(5).normal(0, 1, (16, 16, 16))
        ok, worst = check_spectrum_quality(f, f.copy())
        assert ok and worst == 0.0

    def test_distorted_fails(self):
        rng = np.random.default_rng(6)
        f = rng.normal(0, 1, (16, 16, 16))
        ok, worst = check_spectrum_quality(f, f + rng.normal(0, 1.0, f.shape))
        assert not ok and worst > 0.01

    def test_tolerance_parameter(self):
        rng = np.random.default_rng(7)
        f = rng.normal(0, 1, (16, 16, 16))
        noisy = f + rng.normal(0, 0.05, f.shape)
        _, worst = check_spectrum_quality(f, noisy)
        ok_loose, _ = check_spectrum_quality(f, noisy, tolerance=10 * worst)
        assert ok_loose

    def test_rejects_bad_tolerance(self):
        f = np.zeros((8, 8, 8))
        with pytest.raises(ValueError, match="tolerance"):
            check_spectrum_quality(f, f, tolerance=0.0)

    def test_rejects_unreachable_kmax(self):
        f = np.random.default_rng(8).normal(0, 1, (8, 8, 8))
        with pytest.raises(ValueError, match="k_max"):
            check_spectrum_quality(f, f, k_max=1)


class TestModeBinCaching:
    def test_bins_and_weights_cached_per_shape(self):
        from repro.analysis.spectrum import _mode_bins, _rfft_weights

        assert _mode_bins((8, 8, 8)) is _mode_bins((8, 8, 8))
        assert _rfft_weights((8, 8, 8)) is _rfft_weights((8, 8, 8))
        assert _mode_bins((8, 8, 8)) is not _mode_bins((8, 8, 6))

    def test_cached_arrays_are_readonly(self):
        from repro.analysis.spectrum import _mode_bins, _rfft_weights

        for arr in (_mode_bins((8, 8, 8)), _rfft_weights((8, 8, 8))):
            with pytest.raises(ValueError):
                arr[0, 0, 0] = 1

    def test_spectrum_unchanged_by_caching(self):
        """Cached bins/weights reproduce a from-scratch fftn binning."""
        rng = np.random.default_rng(9)
        f = rng.normal(0, 1, (12, 12, 12))
        ps = power_spectrum(f, nbins=6)
        fk = np.fft.fftn(f - f.mean())
        kx = np.fft.fftfreq(12) * 12
        kk = np.sqrt(
            kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kx[None, None, :] ** 2
        )
        bins = np.rint(kk).astype(np.int64)
        for i, k in enumerate(ps.k):
            sel = bins == k
            assert ps.power[i] == pytest.approx(
                float((np.abs(fk[sel]) ** 2).mean()) / f.size, rel=1e-10
            )


class TestCheckStopsAtKmax:
    def test_binning_stops_at_k_max(self, monkeypatch):
        """Both spectra are binned only to k_max, not to Nyquist."""
        import repro.analysis.spectrum as spectrum_mod

        seen = []
        real = spectrum_mod.power_spectrum

        def recording(field, nbins=None, subtract_mean=True):
            seen.append(nbins)
            return real(field, nbins=nbins, subtract_mean=subtract_mean)

        monkeypatch.setattr(spectrum_mod, "power_spectrum", recording)
        rng = np.random.default_rng(4)
        f = rng.normal(0, 1, (32, 32, 32))
        check_spectrum_quality(f, f + rng.normal(0, 0.01, f.shape), k_max=10)
        # Bins 1..9 cover every inspected k < 10.
        assert seen == [9, 9]

    def test_worst_deviation_matches_full_binning(self):
        rng = np.random.default_rng(5)
        f = rng.normal(0, 1, (32, 32, 32))
        g = f + rng.normal(0, 0.05, f.shape)
        _, worst = check_spectrum_quality(f, g, tolerance=0.5, k_max=10)
        k, ratio = spectrum_ratio(f, g)  # full-Nyquist binning
        assert worst == float(np.max(np.abs(ratio[k < 10] - 1.0)))
