"""Two-point correlation function checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import two_point_correlation
from repro.sim.grf import gaussian_random_field


class TestCorrelation:
    def test_zero_lag_is_variance(self):
        f = np.random.default_rng(0).normal(0, 2, (16, 16, 16))
        r, xi = two_point_correlation(f)
        assert xi[0] == pytest.approx(f.var(), rel=1e-10)

    def test_white_noise_decorrelates(self):
        f = np.random.default_rng(1).normal(0, 1, (24, 24, 24))
        r, xi = two_point_correlation(f)
        assert abs(xi[4]) < 0.05 * xi[0]

    def test_correlated_field_decays_slowly(self):
        steep = lambda k: np.where(k > 0, np.maximum(k, 1e-9) ** -2.5, 0.0)  # noqa: E731
        f = gaussian_random_field((24, 24, 24), steep, seed=2, target_sigma=1.0)
        r, xi = two_point_correlation(f)
        # A red field keeps meaningful correlation at lag 3; white noise
        # (next test) would be < 0.05 there.
        assert xi[3] > 0.15 * xi[0]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            two_point_correlation(np.zeros((4, 4)))
