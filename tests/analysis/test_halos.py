"""Grid halo finder on constructed density fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.halos import candidate_mask, find_halos


def _field_with_blobs() -> np.ndarray:
    """Two well-separated halos of known mass plus background."""
    rho = np.full((24, 24, 24), 0.1)
    rho[4:7, 4:7, 4:7] = 100.0  # 27 cells, mass 2700
    rho[16:18, 16:18, 16:18] = 50.0  # 8 cells, mass 400
    return rho


class TestFindHalos:
    def test_finds_both_blobs(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        assert cat.n_halos == 2

    def test_masses_exact(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        assert cat.masses[0] == pytest.approx(2700.0)
        assert cat.masses[1] == pytest.approx(400.0)

    def test_sorted_by_mass(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        assert (np.diff(cat.masses) <= 0).all()

    def test_positions_are_centroids(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        assert np.allclose(cat.positions[0], [5.0, 5.0, 5.0])
        assert np.allclose(cat.positions[1], [16.5, 16.5, 16.5])

    def test_sizes_and_peaks(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        assert list(cat.sizes) == [27, 8]
        assert cat.peak_densities[0] == pytest.approx(100.0)

    def test_t_halo_filters_peaks(self):
        """A group whose peak stays below t_halo is not a halo."""
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=60.0)
        assert cat.n_halos == 1
        assert cat.masses[0] == pytest.approx(2700.0)

    def test_default_t_halo(self):
        cat = find_halos(_field_with_blobs(), t_boundary=30.0)
        assert cat.t_halo == 60.0

    def test_min_cells(self):
        cat = find_halos(
            _field_with_blobs(), t_boundary=10.0, t_halo=20.0, min_cells=10
        )
        assert cat.n_halos == 1

    def test_cell_volume_scales_mass(self):
        c1 = find_halos(_field_with_blobs(), 10.0, 20.0, cell_volume=1.0)
        c2 = find_halos(_field_with_blobs(), 10.0, 20.0, cell_volume=2.0)
        assert np.allclose(c2.masses, 2.0 * c1.masses)

    def test_candidate_count_recorded(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        assert cat.n_candidate_cells == 27 + 8

    def test_empty_field(self):
        cat = find_halos(np.full((8, 8, 8), 0.1), t_boundary=10.0)
        assert cat.n_halos == 0
        assert cat.masses.size == 0

    def test_select_by_mass(self):
        cat = find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=20.0)
        big = cat.select_by_mass(1000.0)
        assert big.n_halos == 1

    def test_rejects_t_halo_below_boundary(self):
        with pytest.raises(ValueError, match="t_halo"):
            find_halos(_field_with_blobs(), t_boundary=10.0, t_halo=5.0)

    def test_candidate_mask(self):
        mask = candidate_mask(_field_with_blobs(), 10.0)
        assert mask.sum() == 35

    def test_periodic_halo_across_boundary(self):
        rho = np.full((12, 12, 12), 0.1)
        rho[0, 5, 5] = rho[11, 5, 5] = 100.0
        cat_p = find_halos(rho, t_boundary=10.0, t_halo=20.0, periodic=True)
        cat_o = find_halos(rho, t_boundary=10.0, t_halo=20.0, periodic=False)
        assert cat_p.n_halos == 1
        assert cat_o.n_halos == 2

    def test_realistic_snapshot(self, snapshot):
        rho = snapshot["baryon_density"].astype(np.float64)
        tb = float(np.percentile(rho, 99.0))
        cat = find_halos(rho, t_boundary=tb)
        assert cat.n_halos > 0
        assert (cat.masses > 0).all()
        assert (cat.peak_densities > cat.t_halo).all()
