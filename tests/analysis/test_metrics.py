"""Generic distortion metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import mean_relative_error, mse, nrmse, psnr


class TestMetrics:
    def test_mse(self):
        a = np.array([0.0, 0.0])
        b = np.array([1.0, 1.0])
        assert mse(a, b) == 1.0

    def test_psnr_identical_infinite(self):
        a = np.array([1.0, 2.0])
        assert psnr(a, a.copy()) == float("inf")

    def test_psnr_known_value(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.1, 1.0])
        expected = 20 * np.log10(1.0) - 10 * np.log10(0.005)
        assert psnr(a, b) == pytest.approx(expected)

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 1000)
        p1 = psnr(a, a + rng.normal(0, 0.01, 1000))
        p2 = psnr(a, a + rng.normal(0, 0.1, 1000))
        assert p1 > p2

    def test_nrmse_normalized(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10.0)

    def test_nrmse_zero_range_rejected(self):
        a = np.ones(5)
        with pytest.raises(ValueError, match="range"):
            nrmse(a, a)

    def test_mre(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.1, 2.2])
        assert mean_relative_error(a, b) == pytest.approx(0.1)

    def test_mre_rejects_zero(self):
        with pytest.raises(ValueError, match="zeros"):
            mean_relative_error(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            mse(np.empty(0), np.empty(0))
