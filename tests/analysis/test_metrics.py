"""Generic distortion metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    FieldMoments,
    error_summary,
    mean_relative_error,
    mse,
    nrmse,
    psnr,
)


class TestMetrics:
    def test_mse(self):
        a = np.array([0.0, 0.0])
        b = np.array([1.0, 1.0])
        assert mse(a, b) == 1.0

    def test_psnr_identical_infinite(self):
        a = np.array([1.0, 2.0])
        assert psnr(a, a.copy()) == float("inf")

    def test_psnr_known_value(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.1, 1.0])
        expected = 20 * np.log10(1.0) - 10 * np.log10(0.005)
        assert psnr(a, b) == pytest.approx(expected)

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 1000)
        p1 = psnr(a, a + rng.normal(0, 0.01, 1000))
        p2 = psnr(a, a + rng.normal(0, 0.1, 1000))
        assert p1 > p2

    def test_nrmse_normalized(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10.0)

    def test_nrmse_zero_range_rejected(self):
        a = np.ones(5)
        with pytest.raises(ValueError, match="range"):
            nrmse(a, a)

    def test_mre(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.1, 2.2])
        assert mean_relative_error(a, b) == pytest.approx(0.1)

    def test_mre_rejects_zero(self):
        with pytest.raises(ValueError, match="zeros"):
            mean_relative_error(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            mse(np.empty(0), np.empty(0))


class TestFusedMetrics:
    def _pair(self):
        rng = np.random.default_rng(11)
        a = rng.normal(0, 10, (12, 12, 12))
        return a, a + rng.normal(0, 0.5, a.shape)

    def test_matches_standalone_functions(self):
        a, b = self._pair()
        s = error_summary(a, b)
        assert s.mse == pytest.approx(mse(a, b), rel=1e-12)
        assert s.psnr_db == pytest.approx(psnr(a, b), rel=1e-12)
        assert s.nrmse_value == pytest.approx(nrmse(a, b), rel=1e-12)

    def test_identical_arrays_infinite_psnr(self):
        a, _ = self._pair()
        s = error_summary(a, a.copy())
        assert s.psnr_db == float("inf")
        assert s.mse == 0.0 and s.nrmse_value == 0.0

    def test_zero_range_errors_match_unfused_order(self):
        flat = np.full(16, 2.0)
        # Nonzero error: psnr() raises first in the unfused sequence.
        with pytest.raises(ValueError, match="PSNR undefined"):
            error_summary(flat, flat + 1.0)
        # Zero error: psnr() returns inf, then nrmse() raises.
        with pytest.raises(ValueError, match="NRMSE undefined"):
            error_summary(flat, flat.copy())

    def test_cached_moments_skip_minmax(self):
        a, b = self._pair()
        moments = FieldMoments.from_field(a)
        assert error_summary(a, b, moments=moments) == error_summary(a, b)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            error_summary(np.zeros(3), np.zeros(4))


class TestFieldMoments:
    def test_values(self):
        a = np.array([1.0, -2.0, 4.0])
        m = FieldMoments.from_field(a)
        assert m.minimum == -2.0 and m.maximum == 4.0
        assert m.value_range == 6.0
        assert m.total == 3.0
        assert m.total_sq == pytest.approx(21.0)
        assert m.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            FieldMoments.from_field(np.empty(0))
