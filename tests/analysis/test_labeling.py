"""Connected-component labeling vs the scipy oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import ndimage

from repro.analysis.labeling import UnionFind, label_components


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len({uf.find(i) for i in range(4)}) == 4

    def test_union_merges(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) == uf.find(3)
        assert uf.find(0) != uf.find(2)

    def test_roots_vectorized_matches_find(self):
        uf = UnionFind(10)
        for a, b in [(0, 1), (1, 2), (5, 6), (8, 9), (6, 8)]:
            uf.union(a, b)
        roots = uf.roots()
        for i in range(10):
            assert roots[i] == uf.find(i)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError, match="non-negative"):
            UnionFind(-1)


class TestLabeling:
    def test_empty_mask(self):
        labels, n = label_components(np.zeros((4, 4, 4), dtype=bool))
        assert n == 0 and labels.sum() == 0

    def test_single_blob(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[2:4, 2:4, 2:4] = True
        labels, n = label_components(mask)
        assert n == 1
        assert (labels[mask] == 1).all()
        assert (labels[~mask] == 0).all()

    def test_two_separate_blobs(self):
        mask = np.zeros((8, 8, 8), dtype=bool)
        mask[0, 0, 0] = True
        mask[5, 5, 5] = True
        _, n = label_components(mask)
        assert n == 2

    def test_diagonal_not_connected(self):
        """6-connectivity: face neighbours only."""
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0, 0, 0] = True
        mask[1, 1, 0] = True
        _, n = label_components(mask)
        assert n == 2

    def test_periodic_wrapping(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[0, 2, 2] = True
        mask[5, 2, 2] = True
        _, n_open = label_components(mask, periodic=False)
        _, n_periodic = label_components(mask, periodic=True)
        assert n_open == 2
        assert n_periodic == 1

    def test_matches_scipy_on_random_masks(self):
        rng = np.random.default_rng(0)
        for density in (0.05, 0.2, 0.5):
            mask = rng.random((20, 20, 20)) < density
            _, n_ours = label_components(mask)
            _, n_scipy = ndimage.label(mask)
            assert n_ours == n_scipy

    def test_label_partition_matches_scipy(self):
        """Same partition of cells into components (label ids may differ)."""
        rng = np.random.default_rng(1)
        mask = rng.random((15, 15, 15)) < 0.3
        ours, n = label_components(mask)
        scipys, sn = ndimage.label(mask)
        assert n == sn
        # Build the mapping ours-label -> scipy-label; it must be a bijection.
        pairs = set(zip(ours[mask].tolist(), scipys[mask].tolist()))
        assert len(pairs) == n

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            label_components(np.zeros((4, 4), dtype=bool))

    @given(st.integers(0, 2**32 - 1), st.floats(0.02, 0.6))
    @settings(max_examples=25, deadline=None)
    def test_component_count_property(self, seed, density):
        rng = np.random.default_rng(seed)
        mask = rng.random((10, 10, 10)) < density
        _, n_ours = label_components(mask)
        _, n_scipy = ndimage.label(mask)
        assert n_ours == n_scipy


def _canonical_partition(roots: np.ndarray) -> np.ndarray:
    """Component id per element, numbered by first appearance (root-value
    agnostic, so partitions from different union orders compare equal)."""
    _, first, inv = np.unique(roots, return_index=True, return_inverse=True)
    order = np.argsort(np.argsort(first))
    return order[inv]


class TestUnionMany:
    def test_matches_scalar_unions(self):
        rng = np.random.default_rng(3)
        n = 200
        edges = rng.integers(0, n, size=(500, 2))
        scalar = UnionFind(n)
        for a, b in edges.tolist():
            scalar.union(a, b)
        batched = UnionFind(n)
        batched.union_many(edges[:, 0], edges[:, 1])
        # Same partition: elements are grouped identically.
        assert np.array_equal(
            _canonical_partition(scalar.roots()),
            _canonical_partition(batched.roots()),
        )

    def test_roots_are_min_member_and_sizes_refresh(self):
        uf = UnionFind(6)
        uf.union_many(np.array([5, 3]), np.array([1, 2]))
        assert uf.find(5) == 1 and uf.find(1) == 1
        assert uf.find(3) == 2 and uf.find(2) == 2
        assert uf.size[1] == 2 and uf.size[2] == 2

    def test_scalar_union_still_valid_after_batch(self):
        uf = UnionFind(8)
        uf.union_many(np.array([0, 2, 4]), np.array([1, 3, 5]))
        uf.union(1, 3)
        assert uf.find(0) == uf.find(2)
        assert uf.find(4) != uf.find(0)

    def test_empty_and_mismatched_edges(self):
        uf = UnionFind(4)
        uf.union_many(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert len({uf.find(i) for i in range(4)}) == 4
        with pytest.raises(ValueError, match="differ in length"):
            uf.union_many(np.array([0, 1]), np.array([2]))

    def test_long_chain_converges(self):
        n = 1000
        a = np.arange(n - 1)
        uf = UnionFind(n)
        uf.union_many(a, a + 1)
        assert (uf.roots() == 0).all()
        assert uf.size[0] == n

    @given(st.integers(0, 2**32 - 1), st.integers(1, 60))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, seed, n):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, 4 * n))
        edges = rng.integers(0, n, size=(m, 2))
        scalar = UnionFind(n)
        for a, b in edges.tolist():
            scalar.union(a, b)
        batched = UnionFind(n)
        batched.union_many(edges[:, 0], edges[:, 1])
        assert np.array_equal(
            _canonical_partition(scalar.roots()),
            _canonical_partition(batched.roots()),
        )
