"""Telemetry tests always leave the process disarmed with an empty
registry — module-level tracer state must never leak across tests."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disarm()
    telemetry.get_registry().reset()
    yield
    telemetry.disarm()
    telemetry.get_registry().reset()
