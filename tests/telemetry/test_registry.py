"""MetricsRegistry: get-or-create semantics, kind conflicts, and the
deterministic-histogram contract."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture
def registry():
    return telemetry.MetricsRegistry()


class TestGetOrCreate:
    def test_same_name_same_object(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", [1.0]) is registry.histogram("h", [1.0])

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x", [1.0])

    def test_histogram_edge_conflict_raises(self, registry):
        registry.histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError, match="edges"):
            registry.histogram("h", [1.0, 3.0])


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("hits").inc(-1)


class TestGauge:
    def test_set_overwrites(self, registry):
        g = registry.gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        assert g.snapshot() == {"kind": "gauge", "name": "depth", "value": 1.5}


class TestHistogram:
    def test_edges_frozen_and_validated(self, registry):
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("empty", [])
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", [2.0, 1.0])

    def test_observe_buckets_and_overflow(self, registry):
        h = registry.histogram("lat", [0.1, 1.0])
        for v in (0.05, 0.1, 0.5, 2.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [2, 1, 2]  # <=0.1, <=1.0, overflow
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(102.65)
        assert snap["edges"] == [0.1, 1.0]

    def test_snapshot_is_pure_function_of_observations(self, registry):
        a = telemetry.MetricsRegistry().histogram("h", [1.0, 2.0])
        b = telemetry.MetricsRegistry().histogram("h", [1.0, 2.0])
        for v in (0.5, 1.5, 3.0):
            a.observe(v)
            b.observe(v)
        assert a.snapshot() == b.snapshot()


class TestRegistryExports:
    def test_snapshot_sorted_by_name(self, registry):
        registry.counter("zebra").inc()
        registry.gauge("alpha").set(1)
        registry.counter("mid").inc(2)
        names = [m["name"] for m in registry.snapshot()]
        assert names == sorted(names) == ["alpha", "mid", "zebra"]

    def test_merge_counts(self, registry):
        registry.counter("retries").inc(1)
        registry.merge_counts({"retries": 2, "rebuilds": 1})
        assert registry.counter("retries").value == 3
        assert registry.counter("rebuilds").value == 1

    def test_reset(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == []


class TestModuleState:
    def test_process_registry_survives_disarm(self):
        telemetry.get_registry().counter("kept").inc()
        telemetry.disarm()
        assert telemetry.get_registry().counter("kept").value == 1

    def test_armed_resets_metrics_by_default(self):
        telemetry.get_registry().counter("stale").inc()
        with telemetry.armed():
            assert len(telemetry.get_registry()) == 0

    def test_armed_can_keep_metrics(self):
        telemetry.get_registry().counter("kept").inc()
        with telemetry.armed(reset_metrics=False):
            assert telemetry.get_registry().counter("kept").value == 1
