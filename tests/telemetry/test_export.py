"""Exporters: JSONL round-trip, Chrome trace_event structure,
Prometheus text, and suffix-dispatched file writes."""

from __future__ import annotations

import json

from repro import telemetry
from repro.telemetry.export import (
    chrome_trace,
    jsonl_lines,
    load_spans,
    prometheus_text,
    write_export,
)


def _sample():
    with telemetry.armed() as tracer:
        reg = telemetry.get_registry()
        reg.counter("hits").inc(3)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat", [0.1, 1.0]).observe(0.5)
        with tracer.span("outer", field="temperature"):
            with tracer.span("inner"):
                pass
        return tracer.export_spans(), reg.snapshot()


class TestJsonl:
    def test_round_trip(self, tmp_path):
        spans, metrics = _sample()
        path = tmp_path / "run.jsonl"
        assert write_export(path, spans, metrics) == "jsonl"
        assert load_spans(path) == spans

    def test_lines_are_canonical_json(self):
        spans, metrics = _sample()
        for line in jsonl_lines(spans, metrics):
            doc = json.loads(line)
            assert line == json.dumps(doc, sort_keys=True, separators=(",", ":"))
            assert doc["type"] in ("span", "metric")

    def test_deterministic_given_same_records(self):
        spans, metrics = _sample()
        assert jsonl_lines(spans, metrics) == jsonl_lines(spans, metrics)


class TestChromeTrace:
    def test_document_shape(self):
        spans, metrics = _sample()
        doc = chrome_trace(spans, metrics)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["args"]["name"] for e in meta] == ["main"]
        assert len(complete) == 2
        for ev in complete:
            assert ev["pid"] == 1
            assert ev["ts"] >= 0.0
            assert ev["dur"] >= 0.0
        assert doc["otherData"]["metrics"] == metrics

    def test_timestamps_rebased_to_earliest_span(self):
        spans, _ = _sample()
        complete = [e for e in chrome_trace(spans)["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0.0

    def test_load_spans_from_chrome_file(self, tmp_path):
        spans, metrics = _sample()
        path = tmp_path / "run.trace.json"
        assert write_export(path, spans, metrics) == "chrome"
        loaded = load_spans(path)
        assert [s["name"] for s in loaded] == [s["name"] for s in spans]
        # Durations survive the microsecond round-trip.
        for a, b in zip(loaded, spans):
            assert abs((a["end"] - a["start"]) - (b["end"] - b["start"])) < 1e-9
            assert a["attrs"] == b["attrs"]


class TestPrometheus:
    def test_text_format(self):
        _, metrics = _sample()
        text = prometheus_text(metrics)
        assert "# TYPE depth gauge" in text
        assert "# TYPE hits counter" in text
        assert "# TYPE lat histogram" in text
        assert "hits 3.0" in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_names_sanitized(self):
        reg = telemetry.MetricsRegistry()
        reg.counter("sz.batches-total").inc()
        assert "sz_batches_total 1.0" in prometheus_text(reg.snapshot())

    def test_write_prom_suffix(self, tmp_path):
        spans, metrics = _sample()
        path = tmp_path / "metrics.prom"
        assert write_export(path, spans, metrics) == "prometheus"
        assert path.read_text() == prometheus_text(metrics)
