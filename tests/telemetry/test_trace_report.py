"""trace-report summaries: stage/field aggregation and the paper's
§4.3 overhead ratio computed from span durations."""

from __future__ import annotations

import pytest

from repro.telemetry.report import (
    field_summary,
    overhead_summary,
    render_trace_report,
    stage_summary,
)


def _span(name, start, end, **attrs):
    return {
        "span_id": 0,
        "parent_id": None,
        "name": name,
        "start": start,
        "end": end,
        "attrs": attrs,
        "track": "main",
    }


class TestStageSummary:
    def test_aggregates_sz_spans_only(self):
        spans = [
            _span("sz.quantize", 0.0, 0.2),
            _span("sz.quantize", 1.0, 1.1),
            _span("sz.entropy", 0.2, 0.5),
            _span("compress", 0.0, 2.0),  # not a stage span
        ]
        stages = stage_summary(spans)
        assert stages["quantize"] == {
            "seconds": pytest.approx(0.3),
            "count": 2,
        }
        assert stages["entropy"]["count"] == 1
        assert "compress" not in stages


class TestFieldSummary:
    def test_keyed_by_field_attr(self):
        spans = [
            _span("stream.field", 0.0, 1.0, field="temperature"),
            _span("stream.field", 1.0, 1.5, field="temperature"),
            _span("stream.field", 2.0, 2.2, field="baryon_density"),
            _span("stream.snapshot", 0.0, 3.0, snapshot=0),  # no field attr
        ]
        fields = field_summary(spans)
        assert fields["temperature"] == {
            "seconds": pytest.approx(1.5),
            "count": 2,
        }
        assert set(fields) == {"temperature", "baryon_density"}


class TestOverheadSummary:
    def test_ratio_from_span_durations(self):
        spans = [
            _span("features", 0.0, 0.01),
            _span("optimize", 0.01, 0.015),
            _span("compress", 0.015, 1.015),
        ]
        overhead = overhead_summary(spans)
        assert overhead["compress"] == pytest.approx(1.0)
        assert overhead["overhead_ratio"] == pytest.approx(0.015)

    def test_zero_when_no_compress_spans(self):
        assert overhead_summary([_span("features", 0, 1)])["overhead_ratio"] == 0.0


class TestRenderTraceReport:
    def test_all_sections_render(self):
        spans = [
            _span("sz.quantize", 0.0, 0.1),
            _span("stream.field", 0.0, 1.0, field="temperature"),
            _span("features", 0.0, 0.02),
            _span("optimize", 0.02, 0.03),
            _span("compress", 0.03, 1.0),
        ]
        text = render_trace_report(spans)
        assert "Compression stages (sz.*)" in text
        assert "Per-field wall time" in text
        assert "§4.3" in text
        assert "overhead_ratio" in text
        assert "temperature" in text

    def test_empty_trace(self):
        text = render_trace_report([])
        assert text.startswith("trace contains no spans")
        # The overhead table still renders (all zeros).
        assert "overhead_ratio" in text
