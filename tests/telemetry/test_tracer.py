"""Tracer: nesting, the disarmed null fast path, worker-span adoption,
and the module-level arm/disarm switch."""

from __future__ import annotations

import threading

from repro import telemetry


class TestNullFastPath:
    def test_disarmed_by_default(self):
        assert telemetry.enabled() is False
        assert isinstance(telemetry.get_tracer(), telemetry.NullTracer)

    def test_null_span_is_shared_singleton(self):
        tracer = telemetry.get_tracer()
        a = tracer.span("x", attr=1)
        b = tracer.span("y")
        assert a is b  # no allocation per call

    def test_null_span_noop_protocol(self):
        with telemetry.get_tracer().span("x") as span:
            span.set_attr("k", "v")
        assert telemetry.get_tracer().export_spans() == []

    def test_null_adopt_is_noop(self):
        telemetry.get_tracer().adopt([{"span_id": 0, "start": 0.0, "end": 1.0}])
        assert telemetry.get_tracer().export_spans() == []


class TestArmDisarm:
    def test_arm_installs_fresh_tracer(self):
        t1 = telemetry.arm()
        assert telemetry.enabled() is True
        assert telemetry.get_tracer() is t1
        t2 = telemetry.arm()
        assert t2 is not t1
        assert telemetry.get_tracer() is t2

    def test_disarm_restores_null(self):
        telemetry.arm()
        telemetry.disarm()
        assert telemetry.enabled() is False

    def test_armed_context_disarms_on_exception(self):
        try:
            with telemetry.armed() as tracer:
                with tracer.span("boom"):
                    raise RuntimeError("x")
        except RuntimeError:
            pass
        assert telemetry.enabled() is False
        # The span still closed and is exportable from the reference.
        assert [s["name"] for s in tracer.export_spans()] == ["boom"]


class TestNesting:
    def test_parent_links(self):
        with telemetry.armed() as tracer:
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
                with tracer.span("sibling") as sibling:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id

    def test_span_ids_unique_and_times_ordered(self):
        with telemetry.armed() as tracer:
            for i in range(5):
                with tracer.span("s", i=i):
                    pass
        records = tracer.export_spans()
        ids = [r["span_id"] for r in records]
        assert len(set(ids)) == 5
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)
        assert all(r["end"] >= r["start"] for r in records)

    def test_attrs_and_set_attr(self):
        with telemetry.armed() as tracer:
            with tracer.span("s", blocks=8) as span:
                span.set_attr("codec", "zlib")
        rec = tracer.export_spans()[0]
        assert rec["attrs"] == {"blocks": 8, "codec": "zlib"}
        assert rec["track"] == "main"

    def test_per_thread_parent_stacks(self):
        # Two threads nest independently: neither sees the other's
        # open span as a parent (ThreadBackend rank isolation).
        with telemetry.armed() as tracer:
            barrier = threading.Barrier(2)

            def rank(name):
                with tracer.span(name):
                    barrier.wait()
                    with tracer.span(f"{name}.child"):
                        pass

            threads = [
                threading.Thread(target=rank, args=(f"rank{i}",)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        by_name = {r["name"]: r for r in tracer.export_spans()}
        for i in range(2):
            assert by_name[f"rank{i}"]["parent_id"] is None
            assert (
                by_name[f"rank{i}.child"]["parent_id"]
                == by_name[f"rank{i}"]["span_id"]
            )


class TestAdopt:
    def _worker_records(self):
        worker = telemetry.Tracer(track="worker-pid")
        with worker.span("task") as task:
            with worker.span("task.step"):
                pass
        return worker.export_spans(), task

    def test_ids_reassigned_and_parents_remapped(self):
        records, _ = self._worker_records()
        with telemetry.armed() as tracer:
            with tracer.span("snapshot") as snap:
                pass
            tracer.adopt(records, parent_id=snap.span_id, track="worker")
        merged = {r["name"]: r for r in tracer.export_spans()}
        assert merged["task"]["parent_id"] == snap.span_id
        assert merged["task.step"]["parent_id"] == merged["task"]["span_id"]
        ids = [r["span_id"] for r in merged.values()]
        assert len(set(ids)) == 3
        assert merged["task"]["track"] == "worker"

    def test_rebase_shifts_batch_preserving_durations(self):
        records, _ = self._worker_records()
        durations = [r["end"] - r["start"] for r in records]
        with telemetry.armed() as tracer:
            tracer.adopt(records, rebase_to=1000.0)
        adopted = tracer.export_spans()
        assert min(r["start"] for r in adopted) == 1000.0
        assert [r["end"] - r["start"] for r in adopted] == durations

    def test_adopt_empty_batch(self):
        with telemetry.armed() as tracer:
            tracer.adopt([])
        assert tracer.export_spans() == []
