"""Telemetry threaded through the stack — and strictly out-of-band.

The armed/unarmed ledger byte-identity test here is the PR's core
guarantee: arming telemetry on a streamed run must not perturb a single
ledger byte, so replay stays bitwise-faithful whether or not anyone was
watching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.compression.sz import SZCompressor
from repro.foresight.evaluator import FieldReference
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator
from repro.stream.controller import InSituController, replay_ledger
from repro.stream.source import SnapshotSequence


@pytest.fixture(scope="module")
def sim():
    return NyxSimulator(shape=(16, 16, 16), box_size=16.0, seed=7, sigma_delta0=2.5)


@pytest.fixture(scope="module")
def dec():
    return BlockDecomposition((16, 16, 16), blocks=2)


def _stream(sim, dec, ledger_path, n_snapshots=4):
    snaps = [sim.snapshot(z=z) for z in np.linspace(2.0, 0.5, n_snapshots)]
    ctl = InSituController(dec, ledger=ledger_path, retain_results=False)
    ctl.run(SnapshotSequence(snaps))
    return ctl


class TestOutOfBand:
    def test_armed_ledger_byte_identical_to_unarmed(self, sim, dec, tmp_path):
        with telemetry.armed() as tracer:
            _stream(sim, dec, tmp_path / "armed.jsonl")
        _stream(sim, dec, tmp_path / "unarmed.jsonl")

        armed_bytes = (tmp_path / "armed.jsonl").read_bytes()
        assert armed_bytes == (tmp_path / "unarmed.jsonl").read_bytes()
        assert len(tracer.export_spans()) > 0  # telemetry actually recorded

    def test_replay_of_armed_run(self, sim, dec, tmp_path):
        with telemetry.armed():
            ctl = _stream(sim, dec, tmp_path / "run.jsonl")
        decisions = replay_ledger(ctl.ledger)
        assert {d.snapshot_index for d in decisions} == {0, 1, 2, 3}

    def test_armed_compress_payloads_identical(self, sim):
        data = sim.snapshot(z=1.0)["temperature"]
        eb = float(np.ptp(data.astype(np.float64))) * 1e-3
        comp = SZCompressor()
        plain = comp.compress(data, eb).payloads
        with telemetry.armed():
            armed = comp.compress(data, eb).payloads
        assert armed == plain


class TestStackInstrumentation:
    def test_sz_stage_spans(self, sim):
        data = sim.snapshot(z=1.0)["temperature"]
        eb = float(np.ptp(data.astype(np.float64))) * 1e-3
        comp = SZCompressor()
        with telemetry.armed() as tracer:
            comp.compress(data, eb)
        names = {s["name"] for s in tracer.export_spans()}
        assert names == {
            "sz.map",
            "sz.quantize",
            "sz.lorenzo",
            "sz.residual",
            "sz.side_channels",
            "sz.entropy",
        }

    def test_stream_spans_carry_ledger_seq_window(self, sim, dec, tmp_path):
        with telemetry.armed() as tracer:
            _stream(sim, dec, tmp_path / "run.jsonl", n_snapshots=2)
        spans = tracer.export_spans()
        snaps = [s for s in spans if s["name"] == "stream.snapshot"]
        assert len(snaps) == 2
        for rec in snaps:
            attrs = rec["attrs"]
            assert attrs["seq_last"] >= attrs["seq_first"]
        # Consecutive snapshots cover disjoint, increasing seq windows.
        assert snaps[1]["attrs"]["seq_first"] > snaps[0]["attrs"]["seq_last"]
        fields = [s for s in spans if s["name"] == "stream.field"]
        assert {s["attrs"]["field"] for s in fields} >= {"temperature"}
        # Field spans nest under their snapshot span.
        snap_ids = {s["span_id"] for s in snaps}
        assert all(s["parent_id"] in snap_ids for s in fields)

    def test_kernel_resolution_metric(self):
        from repro.compression.kernels import get_kernels

        with telemetry.armed():
            get_kernels("numpy")
            snap = {m["name"]: m for m in telemetry.get_registry().snapshot()}
        assert snap["kernels.resolve.numpy->numpy"]["value"] >= 1
        assert snap["kernels.backend_is_numba"]["value"] == 0.0

    def test_foresight_cache_counters(self, sim):
        data = sim.snapshot(z=1.0)["temperature"]
        with telemetry.armed():
            ref = FieldReference(data)
            ref.moments
            ref.moments
            snap = {m["name"]: m["value"] for m in telemetry.get_registry().snapshot()}
        assert snap["foresight.cache.moments.misses"] == 1
        assert snap["foresight.cache.moments.hits"] == 1

    def test_disarmed_records_nothing(self, sim):
        data = sim.snapshot(z=1.0)["temperature"]
        eb = float(np.ptp(data.astype(np.float64))) * 1e-3
        SZCompressor().compress(data, eb)
        assert telemetry.get_tracer().export_spans() == []
        assert telemetry.get_registry().snapshot() == []
