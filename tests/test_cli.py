"""Command-line interface round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import load_blocks, main, save_blocks
from repro.compression.sz import SZCompressor, decompress


class TestBlockContainer:
    def test_round_trip(self, snapshot, tmp_path):
        comp = SZCompressor()
        data = snapshot["temperature"]
        blocks = [comp.compress(data[:16], 10.0), comp.compress(data[16:], 20.0)]
        path = tmp_path / "blocks.npz"
        save_blocks(str(path), blocks, np.array([10.0, 20.0]), blocks_per_axis=2)
        loaded, ebs, bpa = load_blocks(str(path))
        assert bpa == 2
        assert np.array_equal(ebs, [10.0, 20.0])
        for orig, back in zip(blocks, loaded):
            assert back.shape == orig.shape
            assert back.eb == orig.eb
            assert np.array_equal(decompress(back), decompress(orig))


class TestCommands:
    @pytest.fixture()
    def snap_path(self, tmp_path):
        path = tmp_path / "snap.npz"
        rc = main(["generate", "--shape", "16", "--redshift", "1.0", "--out", str(path)])
        assert rc == 0
        return path

    def test_generate(self, snap_path):
        from repro.sim.io import load_snapshot

        snap = load_snapshot(snap_path)
        assert snap.shape == (16, 16, 16)
        assert snap.redshift == 1.0

    def test_compress_and_analyze(self, snap_path, tmp_path, capsys):
        out = tmp_path / "blocks.npz"
        rc = main(
            [
                "compress",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--blocks",
                "2",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        rc = main(
            [
                "analyze",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--compressed",
                str(out),
                "--tolerance",
                "0.5",
            ]
        )
        captured = capsys.readouterr().out
        assert "PSNR" in captured
        assert rc == 0

    def test_sweep(self, snap_path, capsys):
        rc = main(
            [
                "sweep",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--blocks",
                "2",
                "--ebs",
                "50,500",
                "--tolerance",
                "0.5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "temperature" in out

    def test_sweep_backend_flag(self, snap_path, capsys):
        rc = main(
            [
                "sweep",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--blocks",
                "2",
                "--ebs",
                "50,500",
                "--tolerance",
                "0.5",
                "--backend",
                "thread",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "temperature" in out

    def test_sweep_rate_only_estimate(self, snap_path, capsys):
        rc = main(
            [
                "sweep",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--blocks",
                "2",
                "--ebs",
                "50,500",
                "--probe-mode",
                "estimate",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        data_rows = [ln for ln in out.splitlines() if ln.startswith("temperature")]
        assert len(data_rows) == 2
        # Rate-only records carry no pass/fail verdict in the last column.
        assert all(row.split("|")[-1].strip() == "-" for row in data_rows)

    def test_compress_estimate_probe_mode(self, snap_path, tmp_path, capsys):
        out = tmp_path / "blocks-est.npz"
        rc = main(
            [
                "compress",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--blocks",
                "2",
                "--probe-mode",
                "estimate",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_compress_backend_flag(self, snap_path, tmp_path, capsys, backend):
        out = tmp_path / f"blocks-{backend}.npz"
        rc = main(
            [
                "compress",
                "--snapshot",
                str(snap_path),
                "--field",
                "temperature",
                "--blocks",
                "2",
                "--backend",
                backend,
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert f"backend {backend}" in printed
        assert "compress=" in printed  # per-phase timings are reported

    def test_backend_outputs_identical(self, snap_path, tmp_path):
        outs = {}
        for backend in ("serial", "thread"):
            out = tmp_path / f"b-{backend}.npz"
            main(
                [
                    "compress",
                    "--snapshot", str(snap_path),
                    "--field", "temperature",
                    "--blocks", "2",
                    "--backend", backend,
                    "--out", str(out),
                ]
            )
            outs[backend] = load_blocks(str(out))
        serial_blocks, serial_ebs, _ = outs["serial"]
        thread_blocks, thread_ebs, _ = outs["thread"]
        assert np.array_equal(serial_ebs, thread_ebs)
        for a, b in zip(serial_blocks, thread_blocks):
            assert a.payloads == b.payloads

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStreamCommand:
    @pytest.fixture()
    def seq_dir(self, tmp_path):
        out = tmp_path / "seq"
        rc = main(
            [
                "generate",
                "--shape", "16",
                "--redshifts", "2.0,1.0,0.5",
                "--out", str(out),
            ]
        )
        assert rc == 0
        return out

    def test_generate_redshift_schedule(self, seq_dir):
        from repro.sim.io import load_snapshot

        paths = sorted(seq_dir.glob("*.npz"))
        assert len(paths) == 3
        assert [load_snapshot(p).redshift for p in paths] == [2.0, 1.0, 0.5]

    def test_generate_refuses_stale_sequence_dir(self, seq_dir, capsys):
        """A shorter re-run must not leave a mixed-schedule directory."""
        rc = main(
            ["generate", "--shape", "16", "--redshifts", "2.0", "--out", str(seq_dir)]
        )
        assert rc == 1
        assert "refusing" in capsys.readouterr().err
        assert len(sorted(seq_dir.glob("*.npz"))) == 3  # untouched

    def test_stream_over_directory_with_ledger(self, seq_dir, tmp_path, capsys):
        ledger = tmp_path / "run.jsonl"
        rc = main(
            [
                "stream",
                "--dir", str(seq_dir),
                "--blocks", "2",
                "--fields", "temperature,velocity_x",
                "--ledger", str(ledger),
                "--budget-bytes", "500000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream: 3 snapshots" in out
        assert "budget" in out
        assert ledger.exists()

        rc = main(["stream", "--replay", str(ledger)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay verified: 6 decisions" in out

    def test_stream_simulate(self, capsys):
        rc = main(
            [
                "stream",
                "--simulate",
                "--shape", "16",
                "--redshifts", "2.0,1.0",
                "--blocks", "2",
                "--fields", "temperature",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recalibration" in out

    def test_stream_needs_a_source(self, capsys):
        rc = main(["stream"])
        assert rc == 2
        assert "need a source" in capsys.readouterr().err


class TestTelemetry:
    @pytest.fixture()
    def snap_path(self, tmp_path):
        path = tmp_path / "snap.npz"
        rc = main(["generate", "--shape", "16", "--redshift", "1.0", "--out", str(path)])
        assert rc == 0
        return path

    def test_stream_writes_trace_and_report_renders(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace = tmp_path / "run.trace.json"
        rc = main(
            [
                "stream",
                "--simulate",
                "--shape", "16",
                "--redshifts", "2.0,1.0",
                "--blocks", "2",
                "--fields", "temperature",
                "--telemetry", str(trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry: wrote chrome trace" in out
        assert trace.exists()

        rc = main(["trace-report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Compression stages (sz.*)" in out
        assert "§4.3" in out
        assert "overhead_ratio" in out
        assert "temperature" in out

    def test_telemetry_disarmed_after_command(self, tmp_path, capsys):
        from repro import telemetry

        rc = main(
            [
                "stream",
                "--simulate",
                "--shape", "16",
                "--redshifts", "2.0",
                "--blocks", "2",
                "--fields", "temperature",
                "--telemetry", str(tmp_path / "t.jsonl"),
            ]
        )
        assert rc == 0
        assert telemetry.enabled() is False

    def test_compress_telemetry_jsonl(self, snap_path, tmp_path, capsys):
        trace = tmp_path / "compress.jsonl"
        rc = main(
            [
                "compress",
                "--snapshot", str(snap_path),
                "--field", "temperature",
                "--blocks", "2",
                "--out", str(tmp_path / "blocks.npz"),
                "--telemetry", str(trace),
            ]
        )
        assert rc == 0
        assert "telemetry: wrote jsonl trace" in capsys.readouterr().out
        from repro.telemetry.export import load_spans

        spans = load_spans(trace)
        assert any(s["name"].startswith("sz.") for s in spans)

    def test_trace_report_missing_file(self, tmp_path, capsys):
        rc = main(["trace-report", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err
