"""Per-rule true-positive / false-positive coverage.

Every shipped rule has at least one snippet it must flag and one
closely-related snippet it must not; the seeded regression snippets at
the bottom pin the known hazard classes to exactly the intended rule.
"""

from __future__ import annotations

import pytest

from repro.lint import iter_rules, lint_source


def codes(source: str, path: str = "src/repro/fake/mod.py") -> list[str]:
    return [f.rule for f in lint_source(source, path=path)]


# Each case: (rule code, flagged snippet, clean sibling snippet).
CASES = [
    (
        "RL001",
        "import pathlib\nfiles = list(pathlib.Path('.').glob('*.npz'))\n",
        "import pathlib\nfiles = sorted(pathlib.Path('.').glob('*.npz'))\n",
    ),
    (
        "RL001",
        "import os\nfor name in os.listdir('.'):\n    print(name)\n",
        "import os\nfor name in sorted(os.listdir('.')):\n    print(name)\n",
    ),
    (
        "RL002",
        "fields = list({'temperature', 'baryon_density'})\n",
        "fields = sorted({'temperature', 'baryon_density'})\n",
    ),
    (
        "RL002",
        "for f in {'a', 'b'}:\n    print(f)\n",
        "ok = 'a' in {'a', 'b'}\n",  # membership is order-insensitive
    ),
    (
        "RL003",
        "import numpy as np\nnoise = np.random.normal(size=4)\n",
        "from repro.util.rng import default_rng\n"
        "noise = default_rng(0).normal(size=4)\n",
    ),
    (
        "RL003",
        "import random\nx = random.random()\n",
        "import numpy as np\n"
        "def f(seed):\n"
        "    ok = isinstance(seed, np.random.Generator)\n",  # type check, no call
    ),
    (
        "RL004",
        "import json\ns = json.dumps({'seq': 1})\n",
        "import json\ns = json.dumps({'seq': 1}, sort_keys=True)\n",
    ),
    (
        "RL005",
        "import time\nstamp = time.perf_counter()\n",
        "from repro.util.timer import Timer\nwith Timer() as t:\n    pass\n",
    ),
    (
        "RL006",
        "def mean(xs):\n    return sum(xs) / len(xs)\n",
        "import math\ndef mean(xs):\n    return math.fsum(xs) / len(xs)\n",
    ),
    (
        "RL006",
        "def total(d):\n    return sum(d.values())\n",
        "def total(blocks):\n    return sum(b.nbytes for b in blocks)\n",  # int sum
    ),
    (
        "RL007",
        "try:\n    pass\nexcept Exception:\n    pass\n",
        "try:\n    pass\nexcept (ImportError, OSError):\n    pass\n",
    ),
    (
        "RL007",
        "try:\n    pass\nexcept:\n    pass\n",
        # Broad but transparently re-raised: allowed.
        "try:\n    pass\nexcept Exception:\n    raise\n",
    ),
    (
        "RL008",
        "def run(fields=[]):\n    return fields\n",
        "def run(fields=None):\n    return [] if fields is None else fields\n",
    ),
    (
        "RL009",
        "from repro.compression.sz import SZCompressor\n"
        "comp = SZCompressor(codec='zlib')\n",
        "from repro.compression.api import resolve_compressor\n"
        "comp = resolve_compressor('sz:codec=zlib')\n",
    ),
    (
        "RL010",
        "import time\n\ndef backoff():\n    time.sleep(0.1)\n",
        "from repro.resilience import RetryPolicy\n"
        "def f(op):\n"
        "    return RetryPolicy(max_attempts=3).execute(op, site='source.load')\n",
    ),
    (
        "RL010",
        "def f(op):\n"
        "    while True:\n"
        "        try:\n"
        "            return op()\n"
        "        except Exception:\n"
        "            pass\n",
        # Typed handler with a budget that re-raises: not the
        # keep-going-no-matter-what shape.
        "def f(op, n):\n"
        "    while True:\n"
        "        try:\n"
        "            return op()\n"
        "        except OSError:\n"
        "            n -= 1\n"
        "            if n == 0:\n"
        "                raise\n",
    ),
    (
        "RL012",
        "from repro.telemetry import Counter\n"
        "RETRIES = Counter('retries')\n",
        "from repro import telemetry\n"
        "def note():\n"
        "    telemetry.get_registry().counter('retries').inc()\n",
    ),
    (
        "RL012",
        "rec = {'span_id': 1, 'parent_id': None, 'name': 'compress'}\n",
        # A metric-snapshot-shaped dict is not a span record.
        "rec = {'kind': 'counter', 'name': 'retries', 'value': 3}\n",
    ),
]


@pytest.mark.parametrize(
    "code,bad,good",
    CASES,
    ids=[f"{code}-{i}" for i, (code, _, _) in enumerate(CASES)],
)
def test_true_positive_and_false_positive(code, bad, good):
    assert code in codes(bad), f"{code} missed its true positive"
    assert code not in codes(good), f"{code} flagged its clean sibling"


class TestSeededHazardClasses:
    """The known hazard classes hit exactly the intended rule."""

    def test_unsorted_glob_is_rl001_only(self):
        snippet = (
            "from pathlib import Path\n"
            "paths = [p.name for p in Path('run').glob('snapshot_*.npz')]\n"
        )
        assert codes(snippet) == ["RL001"]

    def test_global_rng_is_rl003_only(self):
        snippet = "import numpy as np\nfield = np.random.rand(16, 16, 16)\n"
        assert codes(snippet) == ["RL003"]

    def test_noncanonical_json_is_rl004_only(self):
        snippet = (
            "import json\n"
            "def to_json(event):\n"
            "    return json.dumps({'seq': event.seq, 'data': event.data})\n"
        )
        assert codes(snippet) == ["RL004"]


class TestRuleEdges:
    def test_rl001_aliased_glob_module(self):
        assert "RL001" in codes("import glob as g\nnames = list(g.glob('*.py'))\n")

    def test_rl001_order_insensitive_consumers_ok(self):
        src = "import os\nn = len(os.listdir('.'))\nall_py = set(os.listdir('.'))\n"
        assert codes(src) == []

    def test_rl002_join_and_starred(self):
        assert "RL002" in codes("s = ','.join({'a', 'b'})\n")
        assert "RL002" in codes("def f(*a):\n    pass\nf(*{'a', 'b'})\n")

    def test_rl002_listcomp_over_set(self):
        assert "RL002" in codes("xs = [x for x in {'a', 'b'}]\n")

    def test_rl003_from_import_alias(self):
        assert "RL003" in codes("from numpy import random as nr\nx = nr.rand(3)\n")
        assert "RL003" in codes("from random import shuffle\nshuffle([1, 2])\n")

    def test_rl003_exempt_in_util_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert codes(src, path="src/repro/util/rng.py") == []
        assert codes(src) == ["RL003"]

    def test_rl004_sort_keys_must_be_literal_true(self):
        assert "RL004" in codes("import json\njson.dumps({}, sort_keys=False)\n")
        flagged = codes("import json\njson.dumps({}, sort_keys=flag)\n")
        assert "RL004" in flagged  # non-literal: cannot prove canonical

    def test_rl004_dynamic_kwargs_skipped(self):
        assert codes("import json\njson.dumps({}, **kw)\n") == []

    def test_rl005_exempt_in_util_timer(self):
        src = "import time\nt = time.perf_counter()\n"
        assert codes(src, path="src/repro/util/timer.py") == []

    def test_rl006_mean_over_attribute(self):
        src = "class A:\n    def m(self):\n        return sum(self._r) / 3\n"
        assert "RL006" in codes(src)

    def test_rl006_float_elements_in_genexp(self):
        assert "RL006" in codes("t = sum(x / 2 for x in xs)\n")
        assert codes("t = sum(len(x) for x in xs)\n") == []

    def test_rl007_tuple_containing_exception(self):
        assert "RL007" in codes(
            "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n"
        )

    def test_rl008_kwonly_and_call_defaults(self):
        assert "RL008" in codes("def f(*, xs=list()):\n    pass\n")
        assert "RL008" in codes("g = lambda xs={}: xs\n")
        assert codes("def f(xs=()):\n    pass\n") == []  # tuple is immutable

    def test_rl009_exempt_inside_compression_package(self):
        src = (
            "from repro.compression.sz import SZCompressor\n"
            "comp = SZCompressor()\n"
        )
        assert codes(src, path="src/repro/compression/api.py") == []
        assert codes(src, path="src/repro/core/selection.py") == ["RL009"]

    def test_rl009_local_class_of_same_name_ok(self):
        src = "class SZCompressor:\n    pass\ncomp = SZCompressor()\n"
        assert codes(src) == []

    def test_rl010_exempt_inside_resilience_package(self):
        src = "import time\n\ndef backoff(d):\n    time.sleep(d)\n"
        assert codes(src, path="src/repro/resilience/retry.py") == []
        assert codes(src, path="src/repro/stream/source.py") == ["RL010"]

    def test_rl010_aliased_sleep_and_bare_except_loop(self):
        assert "RL010" in codes("from time import sleep\nsleep(1)\n")
        loop = (
            "def f(op):\n"
            "    while True:\n"
            "        try:\n"
            "            return op()\n"
            "        except:\n"
            "            continue\n"
        )
        assert "RL010" in codes(loop)

    def test_rl011_only_fires_in_compression_package(self):
        src = (
            "import numpy as np\n"
            "def encode(arr, ws):\n"
            "    scratch = np.empty(arr.shape, dtype=np.int64)\n"
        )
        assert codes(src, path="src/repro/compression/sz.py") == ["RL011"]
        # Outside the compression package the arena contract doesn't apply.
        assert codes(src) == []

    def test_rl011_workspace_request_is_the_clean_form(self):
        src = (
            "import numpy as np\n"
            "def encode(arr, ws):\n"
            "    scratch = ws.request('encode_scratch', arr.shape, np.int64)\n"
        )
        assert codes(src, path="src/repro/compression/sz.py") == []

    def test_rl011_requires_workspace_param(self):
        # Decoders and one-shot helpers own their output arrays.
        src = (
            "import numpy as np\n"
            "def decompress(block):\n"
            "    return np.zeros(block.shape)\n"
        )
        assert codes(src, path="src/repro/compression/sz.py") == []

    def test_rl011_per_block_compress_loop(self):
        src = (
            "class C:\n"
            "    def compress_many(self, views, ebs, workspace=None):\n"
            "        return [self.compress(v, e) for v, e in zip(views, ebs)]\n"
        )
        assert codes(src, path="src/repro/compression/api.py") == ["RL011"]

    def test_rl011_single_dispatch_call_not_flagged(self):
        # One call outside a loop IS the batched path's entry point.
        src = (
            "class C:\n"
            "    def compress(self, data, eb, workspace=None):\n"
            "        return self._compress_checked(data, eb, workspace)\n"
        )
        assert codes(src, path="src/repro/compression/api.py") == []

    def test_rl010_bounded_while_not_flagged(self):
        # The loop condition itself bounds the attempts — not `while True`.
        src = (
            "def f(op, n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "        try:\n"
            "            return op()\n"
            "        except Exception:\n"
            "            raise\n"
        )
        assert "RL010" not in codes(src)


def test_every_rule_has_metadata_and_examples():
    rules = iter_rules()
    assert len(rules) >= 8
    for rule in rules:
        assert rule.code and rule.name and rule.summary and rule.rationale
        assert rule.__doc__ and "Bad::" in rule.__doc__ and "Good::" in rule.__doc__
