"""The repo lints itself clean with an *empty* baseline.

This is the end-state acceptance check: every rule the linter ships is
satisfied by the tree it ships in, with no carried debt.  If this test
fails, either fix the new violation or add a justified
``# repro-lint: disable=...`` on the offending line — do not grow the
baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import Baseline, run_lint
from repro.lint.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE_FILE = REPO_ROOT / ".repro-lint-baseline.json"


def test_src_is_clean_with_empty_baseline():
    result = run_lint([SRC], baseline=Baseline())
    assert result.files_checked > 50  # sanity: the walk actually found the tree
    assert result.ok, "\n" + render_text(result)
    assert result.findings == []
    assert result.stale_baseline == []


def test_committed_baseline_is_empty():
    baseline = Baseline.load(BASELINE_FILE)
    assert BASELINE_FILE.exists(), "commit .repro-lint-baseline.json"
    assert len(baseline) == 0, "baselines only shrink; this repo's end state is empty"
