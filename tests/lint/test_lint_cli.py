"""CLI contract: stable exit codes, canonical JSON, `repro lint` wiring."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

BAD = "import json\ns = json.dumps({'a': 1})\n"
CLEAN = "import json\ns = json.dumps({'a': 1}, sort_keys=True)\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD)
    (tmp_path / "ok.py").write_text(CLEAN)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == EXIT_CLEAN
        assert "ok:" in capsys.readouterr().out

    def test_findings_exit_1(self, tree, capsys):
        assert main([str(tree)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RL004" in out and "bad.py" in out

    def test_stale_baseline_exits_1(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0
        (tree / "bad.py").write_text(CLEAN)
        assert main([str(tree), "--baseline", str(baseline)]) == EXIT_FINDINGS
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path), "--select", "RL999"]) == EXIT_USAGE

    def test_write_baseline_without_file_exits_2(self, tree, capsys):
        assert main([str(tree), "--write-baseline"]) == EXIT_USAGE

    def test_malformed_baseline_exits_2(self, tree, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        assert main([str(tree), "--baseline", str(bad)]) == EXIT_USAGE


class TestBaselineFlow:
    def test_write_then_pass(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0
        payload = json.loads(baseline.read_text())
        assert len(payload["entries"]) == 1
        assert main([str(tree), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "1 baselined" in capsys.readouterr().out


class TestJsonFormat:
    def test_report_is_canonical_and_parses(self, tree, capsys):
        assert main([str(tree), "--format", "json"]) == EXIT_FINDINGS
        raw = capsys.readouterr().out.strip()
        payload = json.loads(raw)
        # Canonical bytes: sorted keys, compact separators.
        assert raw == json.dumps(payload, sort_keys=True, separators=(",", ":"))
        assert payload["ok"] is False
        assert payload["version"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL004"
        assert finding["path"].endswith("bad.py")

    def test_output_file(self, tree, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main([str(tree), "--format", "json", "--output", str(report)])
        assert code == EXIT_FINDINGS
        assert json.loads(report.read_text())["ok"] is False
        assert "report written to" in capsys.readouterr().out


class TestDiscovery:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RL001", "RL004", "RL009"):
            assert code in out

    def test_repro_cli_subcommand(self, tree, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(tree)]) == EXIT_FINDINGS
        assert "RL004" in capsys.readouterr().out

    def test_python_dash_m_entry_point(self, tree):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tree), "--format", "json"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == EXIT_FINDINGS
        assert json.loads(proc.stdout)["ok"] is False
