"""Engine behaviour: suppressions, alias resolution, parse errors, walking."""

from __future__ import annotations

import pytest

from repro.lint import (
    PARSE_ERROR,
    Finding,
    iter_python_files,
    lint_source,
    run_lint,
)
from repro.lint.engine import ModuleContext, suppressed_rules
import ast


class TestSuppressions:
    PREFIX = "import json, time\n"
    LINE = "s = json.dumps({'t': time.time()})"

    def test_without_pragma_both_rules_fire(self):
        src = self.PREFIX + self.LINE + "\n"
        assert sorted(f.rule for f in lint_source(src)) == ["RL004", "RL005"]

    def test_disable_silences_exactly_one_rule(self):
        src = self.PREFIX + self.LINE + "  # repro-lint: disable=RL005\n"
        assert [f.rule for f in lint_source(src)] == ["RL004"]

    def test_disable_list_silences_both(self):
        src = self.PREFIX + self.LINE + "  # repro-lint: disable=RL004, RL005\n"
        assert lint_source(src) == []

    def test_disable_on_other_line_does_not_apply(self):
        src = (
            "import json\n"
            "# repro-lint: disable=RL004\n"
            "s = json.dumps({'a': 1})\n"
        )
        assert [f.rule for f in lint_source(src)] == ["RL004"]

    def test_disable_other_rule_does_not_apply(self):
        src = "import json\ns = json.dumps({})  # repro-lint: disable=RL001\n"
        assert [f.rule for f in lint_source(src)] == ["RL004"]

    def test_parser(self):
        assert suppressed_rules("x = 1  # repro-lint: disable=RL001,RL002") == {
            "RL001",
            "RL002",
        }
        assert suppressed_rules("x = 1  # just a comment") == frozenset()


class TestAliasResolution:
    def _ctx(self, src: str) -> ModuleContext:
        return ModuleContext("m.py", ast.parse(src), src)

    def _resolve_last_call(self, src: str) -> "str | None":
        ctx = self._ctx(src)
        calls = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call)]
        return ctx.resolve(calls[-1].func)

    def test_import_as(self):
        assert (
            self._resolve_last_call("import numpy as np\nnp.random.rand()\n")
            == "numpy.random.rand"
        )

    def test_from_import_as(self):
        assert (
            self._resolve_last_call("from numpy import random as nr\nnr.rand()\n")
            == "numpy.random.rand"
        )

    def test_submodule_import_binds_root(self):
        assert (
            self._resolve_last_call("import os.path\nos.listdir('.')\n")
            == "os.listdir"
        )

    def test_local_names_resolve_to_none(self):
        assert self._resolve_last_call("def f(p):\n    p.glob('*')\n") is None

    def test_relative_import_never_matches_absolute(self):
        src = "from .sz import SZCompressor\nSZCompressor()\n"
        resolved = self._resolve_last_call(src)
        assert resolved == ".sz.SZCompressor"  # leading dot keeps it distinct


class TestParseErrors:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR
        assert findings[0].path == "bad.py"

    def test_parse_error_cannot_be_suppressed(self):
        findings = lint_source("def broken(:  # repro-lint: disable=E001\n")
        assert [f.rule for f in findings] == [PARSE_ERROR]


class TestFileWalking:
    def test_sorted_dedup_and_skips(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "h.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "c.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_python_files([tmp_path / "nope"])

    def test_run_lint_counts_and_sorts(self, tmp_path):
        (tmp_path / "z.py").write_text("import json\njson.dumps({})\n")
        (tmp_path / "a.py").write_text(
            "import json\njson.dumps({})  # repro-lint: disable=RL004\n"
        )
        result = run_lint([tmp_path])
        assert result.files_checked == 2
        assert result.suppressed == 1
        assert [f.rule for f in result.findings] == ["RL004"]
        assert result.findings[0].path.endswith("z.py")
        assert not result.ok


def test_unknown_select_code_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_source("x = 1\n", select=["RL999"])


def test_select_restricts_rules():
    src = "import json, time\njson.dumps({})\nt = time.time()\n"
    assert [f.rule for f in lint_source(src, select=["RL005"])] == ["RL005"]


def test_findings_are_ordered_and_located():
    src = "import json\ns = json.dumps({})\n"
    (finding,) = lint_source(src, path="p.py")
    assert isinstance(finding, Finding)
    assert finding.location() == "p.py:2:5"
    assert finding.content == "s = json.dumps({})"
