"""Baseline semantics: absorb known findings, expire loudly, round-trip."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, BaselineEntry, BaselineError, run_lint

BAD = "import json\ns = json.dumps({'a': 1})\n"
CLEAN = "import json\ns = json.dumps({'a': 1}, sort_keys=True)\n"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestApply:
    def test_baselined_finding_is_absorbed(self, tmp_path):
        _write(tmp_path, "m.py", BAD)
        first = run_lint([tmp_path])
        baseline = Baseline.from_findings(first.findings)
        result = run_lint([tmp_path], baseline=baseline)
        assert result.ok
        assert result.baselined == 1
        assert result.findings == []

    def test_new_finding_still_fails(self, tmp_path):
        module = _write(tmp_path, "m.py", BAD)
        baseline = Baseline.from_findings(run_lint([tmp_path]).findings)
        module.write_text(BAD + "t = json.dumps({'b': 2})\n")
        result = run_lint([tmp_path], baseline=baseline)
        assert not result.ok
        assert result.baselined == 1
        assert len(result.findings) == 1
        assert result.findings[0].content == "t = json.dumps({'b': 2})"

    def test_entry_expires_loudly_when_line_disappears(self, tmp_path):
        module = _write(tmp_path, "m.py", BAD)
        baseline = Baseline.from_findings(run_lint([tmp_path]).findings)
        module.write_text(CLEAN)
        result = run_lint([tmp_path], baseline=baseline)
        assert result.findings == []  # the violation is genuinely gone
        assert len(result.stale_baseline) == 1  # ...but the debt record remains
        assert not result.ok  # and that fails the run
        stale = result.stale_baseline[0]
        assert stale.rule == "RL004"
        assert "json.dumps" in stale.content

    def test_entry_survives_pure_line_drift(self, tmp_path):
        module = _write(tmp_path, "m.py", BAD)
        baseline = Baseline.from_findings(run_lint([tmp_path]).findings)
        module.write_text("# a new leading comment\n" + BAD)
        result = run_lint([tmp_path], baseline=baseline)
        assert result.ok and result.baselined == 1

    def test_count_budget(self, tmp_path):
        _write(tmp_path, "m.py", "import json\n" + "s = json.dumps({'a': 1})\n" * 2)
        findings = run_lint([tmp_path]).findings
        assert len(findings) == 2
        baseline = Baseline.from_findings(findings[:1])  # budget of one
        result = run_lint([tmp_path], baseline=baseline)
        assert result.baselined == 1
        assert len(result.findings) == 1


class TestPersistence:
    def test_round_trip(self, tmp_path):
        _write(tmp_path, "m.py", BAD)
        baseline = Baseline.from_findings(run_lint([tmp_path]).findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert len(loaded) == 1

    def test_save_is_canonical(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline(
            [
                BaselineEntry(rule="RL004", path="b.py", content="x"),
                BaselineEntry(rule="RL001", path="a.py", content="y"),
            ]
        ).save(path)
        payload = json.loads(path.read_text())
        assert [e["rule"] for e in payload["entries"]] == ["RL001", "RL004"]
        assert payload["version"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError):
            Baseline.load(bad)
        bad.write_text('{"entries": [{"rule": "RL004"}]}')
        with pytest.raises(BaselineError, match="malformed entry"):
            Baseline.load(bad)
