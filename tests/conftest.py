"""Shared fixtures: a small synthetic snapshot and its decomposition.

Session-scoped so the (moderately expensive) field synthesis happens
once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator


@pytest.fixture(scope="session")
def simulator() -> NyxSimulator:
    return NyxSimulator(shape=(32, 32, 32), box_size=32.0, seed=1234, sigma_delta0=2.5)


@pytest.fixture(scope="session")
def snapshot(simulator):
    return simulator.snapshot(z=0.5)


@pytest.fixture(scope="session")
def decomposition(snapshot) -> BlockDecomposition:
    return BlockDecomposition(snapshot.shape, blocks=2)


@pytest.fixture(scope="session")
def smooth_field() -> np.ndarray:
    """A smooth, highly compressible 3-D float32 field."""
    x = np.linspace(0.0, 4.0 * np.pi, 24)
    f = (
        np.sin(x)[:, None, None]
        * np.cos(0.5 * x)[None, :, None]
        * np.sin(0.25 * x)[None, None, :]
    )
    return (100.0 * f).astype(np.float32)


@pytest.fixture(scope="session")
def noisy_field() -> np.ndarray:
    """A hard-to-compress random field."""
    rng = np.random.default_rng(7)
    return rng.normal(0.0, 10.0, (24, 24, 24)).astype(np.float32)
