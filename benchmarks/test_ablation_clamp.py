"""Ablation — the §3.6 clamp width (eb/4 .. 4eb).

The clamp guards against partitions the models fit poorly.  clamp=1
degenerates to static; very wide clamps chase the unconstrained optimum
but expose quality to model error (wider realized bound spread).
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import StaticBaseline
from repro.core.config import OptimizerSettings
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.util.tables import format_table


def test_ablation_clamp_factor(snapshot, decomposition, rate_models, benchmark):
    field = "baryon_density"
    data = snapshot[field]
    eb_avg = 0.3
    static_ratio = StaticBaseline().run(data, decomposition, eb_avg).overall_ratio

    def run():
        rows = []
        for clamp in (1.0, 2.0, 4.0, 16.0):
            pipe = AdaptiveCompressionPipeline(
                rate_models[field].rate_model,
                settings=OptimizerSettings(clamp_factor=clamp),
            )
            res = pipe.run(data, decomposition, eb_avg=eb_avg)
            rows.append(
                [
                    clamp,
                    res.overall_ratio,
                    100.0 * (res.overall_ratio / static_ratio - 1.0),
                    float(res.ebs.max() / res.ebs.min()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["clamp factor", "ratio", "gain vs static %", "realized eb spread"],
            rows,
            title=f"Ablation: clamp width (static ratio {static_ratio:.2f})",
        )
    )
    # clamp=1 is exactly static.
    assert abs(rows[0][2]) < 0.5
    # Wider clamps can only expand the realized spread.
    spreads = [r[3] for r in rows]
    assert all(spreads[i] <= spreads[i + 1] + 1e-9 for i in range(len(spreads) - 1))
