"""Figure 8 — estimated vs measured changed-candidate-cell counts.

Paper: the Eq. 11/13 estimate (red line) tracks the measured per-
configuration cell-count changes (blue dots) across mixed per-partition
bounds.
"""

from __future__ import annotations

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.models.halo_error import boundary_cell_count, expected_fault_cells
from repro.util.rng import default_rng
from repro.util.tables import format_table


def test_fig08_estimated_vs_measured_flips(snapshot, decomposition, benchmark):
    rho = snapshot["baryon_density"].astype(np.float64)
    t_boundary = float(np.percentile(rho, 97.0))
    comp = SZCompressor()
    rng = default_rng(3)

    def run():
        rows = []
        for eb_avg in (0.25, 0.5, 1.0, 2.0):
            ebs = eb_avg * rng.uniform(0.5, 1.5, decomposition.n_partitions)
            predicted = 0.0
            recon = np.empty_like(rho)
            for p, eb in zip(decomposition, ebs):
                part = rho[p.slices]
                predicted += float(
                    expected_fault_cells(boundary_cell_count(part, t_boundary, eb))
                )
                recon[p.slices] = decompress(comp.compress(part, float(eb)))
            # Flips happen in both directions; the model counts one side.
            measured = int(np.count_nonzero((rho > t_boundary) != (recon > t_boundary)))
            rows.append([eb_avg, 2 * predicted, measured, measured / (2 * predicted)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["eb_avg", "estimated flips", "measured flips", "ratio"],
            rows,
            title=f"Fig. 8 reproduction (t_boundary={t_boundary:.2f})",
        )
    )
    for row in rows:
        assert 0.25 <= row[3] <= 2.5, "estimate must track measurement to ~2x"
    # Both series must grow with the bound.
    est = [r[1] for r in rows]
    meas = [r[2] for r in rows]
    assert est == sorted(est)
    assert meas == sorted(meas)
