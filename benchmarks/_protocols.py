"""The two end-to-end configuration protocols compared throughout §4.

- **Ours** (`run_our_method`): derive the average-bound budget from the
  rate-quality models (no compression trials), then assign per-partition
  bounds with the §3.6 optimizer (halo-capped for density fields).
- **Traditional** (`run_traditional`): Foresight-style trial-and-error
  over a factor-2 grid of static bounds — each trial pays a full
  compress + decompress + post-analysis pass, and the grid's coarseness
  makes the accepted bound conservative (the paper's §4.2 observation
  that practitioners pick "a relatively lower error-bound").

Both are validated with the *real* analyses, so the reported
improvements are at matched post-hoc quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from benchmarks.conftest import (
    HALO_RMSE_TOL,
    MIN_HALO_CELLS,
    TRADITIONAL_SAFETY,
    correlated_fraction,
    spectrum_tolerance,
)
from repro.analysis.catalog import compare_catalogs
from repro.analysis.halos import HaloCatalog, find_halos
from repro.analysis.spectrum import check_spectrum_quality, power_spectrum
from repro.core.baselines import StaticResult, TrialAndErrorSearch
from repro.core.config import HaloQualitySpec
from repro.core.pipeline import AdaptiveCompressionPipeline, SnapshotResult
from repro.models.fft_error import (
    spectrum_ratio_tolerance_to_eb,
    sub_threshold_power_estimate,
)

DENSITY_FIELDS = ("baryon_density", "dark_matter_density")


@dataclass
class ProtocolOutcome:
    eb: float
    ratio: float
    worst_spectrum_dev: float
    halo_rmse: float | None
    trials: int


def _halo_setup(data: np.ndarray) -> tuple[float, HaloCatalog]:
    tb = float(np.percentile(data, 99.5))
    return tb, find_halos(data, tb)


def quality_check_for(field: str, data: np.ndarray):
    """(original, reconstructed) -> (passed, metric) for this field."""
    tol = spectrum_tolerance(field)
    if field in DENSITY_FIELDS:
        tb, cat0 = _halo_setup(data)
        min_mass = tb * MIN_HALO_CELLS

        def check(orig, recon):
            ok_s, dev = check_spectrum_quality(orig, recon, tolerance=tol, k_max=10)
            cat1 = find_halos(recon, tb)
            rmse = compare_catalogs(cat0, cat1).mass_rmse_above(min_mass)
            ok_h = (not np.isfinite(rmse)) or rmse <= HALO_RMSE_TOL
            metric = max(dev, rmse if np.isfinite(rmse) else 0.0)
            return ok_s and ok_h, metric

        return check

    def check(orig, recon):
        return check_spectrum_quality(orig, recon, tolerance=tol, k_max=10)

    return check


def model_budget(field: str, data: np.ndarray) -> float:
    """Our method's average-bound budget, from the models alone."""
    ps = power_spectrum(data)
    return spectrum_ratio_tolerance_to_eb(
        ps,
        data.size,
        tolerance=spectrum_tolerance(field),
        k_max=10,
        sub_power_fn=lambda e: sub_threshold_power_estimate(data, e, stride=2),
        correlated_fraction=correlated_fraction(field),
    )


def run_our_method(
    field: str,
    data: np.ndarray,
    decomposition,
    rate_model,
) -> tuple[SnapshotResult, float]:
    """Model-derived budget + adaptive per-partition optimization."""
    f64 = np.asarray(data, dtype=np.float64)
    eb_avg = model_budget(field, f64)
    halo = None
    if field in DENSITY_FIELDS:
        tb, cat0 = _halo_setup(f64)
        if cat0.n_halos > 0:
            halo = HaloQualitySpec(
                t_boundary=tb,
                mass_budget=HALO_RMSE_TOL * float(cat0.masses.sum()),
                reference_eb=min(1.0, eb_avg),
            )
    pipe = AdaptiveCompressionPipeline(rate_model)
    return pipe.run(data, decomposition, eb_avg=eb_avg, halo=halo), eb_avg


def run_traditional(
    field: str,
    data: np.ndarray,
    decomposition,
    safety_factor: float = TRADITIONAL_SAFETY,
) -> tuple[StaticResult, int]:
    """The traditional protocol: trial-and-error plus a safety margin.

    The candidate grid is anchored on the field's value range (a
    practitioner has no rate-quality model); each factor-2 trial costs a
    full compress + decompress + analysis pass.  The accepted bound is
    then divided by ``safety_factor`` — the §4.2 conservatism needed so
    one early choice keeps holding across the simulation's snapshots.
    """
    f64 = np.asarray(data, dtype=np.float64)
    search = TrialAndErrorSearch(quality_check_for(field, f64))
    anchor = float(np.ptp(f64))
    grid = [anchor * 2.0**-k for k in range(1, 22)]
    accepted = search.search(data, decomposition, grid)
    trials = search.n_trials
    if safety_factor != 1.0:
        from repro.core.baselines import StaticBaseline

        applied = StaticBaseline(search.compressor).run(
            data, decomposition, accepted.eb / safety_factor
        )
        return applied, trials
    return accepted, trials


def evaluate(field: str, data: np.ndarray, decomposition, result) -> ProtocolOutcome:
    """Measure the real post-hoc quality of a compressed result."""
    f64 = np.asarray(data, dtype=np.float64)
    recon = result.reconstruct(decomposition)
    _, dev = check_spectrum_quality(f64, recon, tolerance=1.0, k_max=10)
    rmse = None
    if field in DENSITY_FIELDS:
        tb, cat0 = _halo_setup(f64)
        rmse = compare_catalogs(cat0, find_halos(recon, tb)).mass_rmse_above(
            tb * MIN_HALO_CELLS
        )
    eb = float(np.mean(result.ebs)) if hasattr(result, "ebs") else result.eb
    return ProtocolOutcome(
        eb=eb,
        ratio=result.overall_ratio,
        worst_spectrum_dev=dev,
        halo_rmse=rmse,
        trials=0,
    )
