"""Figure 10 — (a) C_m predicted from partition means; (b) rate consistency.

Paper: the fitted coefficient-vs-mean relation predicts per-partition
C_m accurately, and SZ's bit-rate/eb curves are consistent enough to
trust the estimates (unlike transform codecs).
"""

from __future__ import annotations

import numpy as np

from repro.compression.zfp_like import ZFPLikeCompressor
from repro.models.calibration import calibrate_rate_model, partition_feature
from repro.util.tables import format_table


def test_fig10a_coefficient_prediction(snapshot, decomposition, rate_models, benchmark):
    data = snapshot["baryon_density"]
    views = decomposition.partition_views(data)
    cal = rate_models["baryon_density"]

    def run():
        feats = np.array([partition_feature(v) for v in views])
        predicted = cal.rate_model.predict_coefficient(feats)
        return feats, predicted

    feats, predicted = benchmark(run)
    print()
    print(
        format_table(
            ["statistic", "value"],
            [
                ["shared exponent c", cal.shared_exponent],
                ["C-vs-mean regression R^2", cal.coef_r2],
                ["partitions sampled", len(cal.coefficients)],
                ["C spread (max/min predicted)", float(predicted.max() / predicted.min())],
            ],
            title="Fig. 10(a) reproduction: C_m estimation from partition means",
        )
    )
    assert cal.coef_r2 > 0.5


def test_fig10b_rate_consistency_sz_vs_transform(snapshot, decomposition, compressor, benchmark):
    """SZ rate curves are smooth/monotone in eb; that consistency is what
    makes Eq. 15 usable (ZFP-style codecs trade rate for unbounded error
    instead — shown alongside)."""
    data = snapshot["baryon_density"].astype(np.float64)
    view = decomposition.partition_views(data)[0]
    ebs = np.array([0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2])

    def run():
        sz_rates = [compressor.compress(view, float(e)).bit_rate for e in ebs]
        zfp = ZFPLikeCompressor(rate=4.0)
        stream = zfp.compress(view)
        zfp_err = float(np.max(np.abs(zfp.decompress(stream) - view)))
        return sz_rates, stream.bit_rate, zfp_err

    sz_rates, zfp_rate, zfp_err = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["eb", "SZ bit rate"],
            [[float(e), r] for e, r in zip(ebs, sz_rates)],
            title=(
                "Fig. 10(b) reproduction: SZ rate consistency "
                f"(ZFP-like fixed rate {zfp_rate:.2f} b/val has unbounded max err {zfp_err:.3g})"
            ),
        )
    )
    assert sz_rates == sorted(sz_rates, reverse=True), "SZ rate monotone in eb"
