"""Ablation — exact allgather optimization vs the paper's local protocol.

§3.6/§4.3: the paper's in situ protocol shares only the global mean via
one allreduce and applies Eq. 16 locally; the exact protocol allgathers
one scalar per rank and renormalizes.  Both must land near the same
configuration — this quantifies the difference.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OptimizerSettings
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.util.tables import format_table


def test_ablation_normalization_protocol(snapshot, decomposition, rate_models, benchmark):
    field = "temperature"
    data = snapshot[field]
    eb_avg = float(np.ptp(np.asarray(data, dtype=np.float64))) * 3e-3

    def run():
        out = {}
        for norm in ("exact", "local"):
            pipe = AdaptiveCompressionPipeline(
                rate_models[field].rate_model,
                settings=OptimizerSettings(normalization=norm),
            )
            res = pipe.run_insitu_spmd(data, decomposition, eb_avg=eb_avg)
            out[norm] = res
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    exact, local = out["exact"], out["local"]
    corr = float(np.corrcoef(np.log(exact.ebs), np.log(local.ebs))[0, 1])
    print()
    print(
        format_table(
            ["protocol", "mean eb", "ratio", "eb spread"],
            [
                ["exact (allgather)", float(exact.ebs.mean()), exact.stats.overall_ratio, float(exact.ebs.max() / exact.ebs.min())],
                ["local (one allreduce)", float(local.ebs.mean()), local.stats.overall_ratio, float(local.ebs.max() / local.ebs.min())],
            ],
            title=f"Ablation: optimizer normalization protocol (bound correlation {corr:.4f})",
        )
    )
    # The cheap protocol approximates the exact one closely.
    assert corr > 0.99
    assert abs(local.ebs.mean() / eb_avg - 1.0) < 0.25
    assert abs(local.stats.overall_ratio / exact.stats.overall_ratio - 1.0) < 0.1
