"""Figure 11 — per-partition optimized error-bound map.

Paper: the temperature field's 512 partitions receive visibly different
bounds tracking local compressibility, instead of one global value.  We
print the bound map summary and verify it correlates with the partition
feature (mean |value|).
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.util.tables import format_table


def test_fig11_error_bound_map(snapshot, decomposition, rate_models, benchmark):
    data = snapshot["temperature"]
    cal = rate_models["temperature"]
    eb_avg = float(np.ptp(np.asarray(data, dtype=np.float64))) * 3e-3
    pipe = AdaptiveCompressionPipeline(cal.rate_model)

    def run():
        return pipe.run(data, decomposition, eb_avg=eb_avg)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    eb_map = res.eb_map(decomposition)
    means = np.array([f.mean_abs for f in res.features])
    corr = np.corrcoef(np.log(means), np.log(res.ebs))[0, 1]
    print()
    print(
        format_table(
            ["statistic", "value"],
            [
                ["partitions", decomposition.n_partitions],
                ["eb_avg target", eb_avg],
                ["eb mean", res.ebs.mean()],
                ["eb min", res.ebs.min()],
                ["eb max", res.ebs.max()],
                ["distinct bounds", len(np.unique(np.round(res.ebs, 10)))],
                ["corr(log mean, log eb)", corr],
            ],
            title="Fig. 11 reproduction: adaptive error-bound map (temperature)",
        )
    )
    # Mid-plane of the 3-D bound map, one row per block row.
    mid = eb_map[:, :, eb_map.shape[2] // 2]
    for row in mid:
        print("  " + " ".join(f"{v:8.3g}" for v in row))
    assert len(np.unique(np.round(res.ebs, 10))) > 1, "bounds must differ per partition"
    assert res.ebs.mean() == (np.clip(res.ebs.mean(), eb_avg * 0.999, eb_avg * 1.001))
    assert corr > 0.5, "bounds must track partition compressibility"
