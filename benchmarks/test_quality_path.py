"""Quality-path wall-clock: reference-cached evaluator and batched labeling.

Measures the two performance claims of the reference-cached quality
engine against frozen copies of the seed implementation:

1. a full-quality sweep (spectrum + halo + distortion metrics) of one
   64^3 field over >= 6 error bounds — seed path re-analyzes the
   original per bound (two Nyquist-binned spectra with per-call mode-bin
   rebuilds, two halo finds with per-edge Python union loops, two error
   passes), the cached path analyzes the original once and each
   reconstruction with one rfftn, one vectorized halo find, and one
   fused error pass;
2. ``label_components`` on a dense candidate mask — per-edge Python
   ``uf.union`` loop (seed) vs the batched ``union_many`` hooking.

Reconstructions are precompressed outside the timers so both paths time
the *quality* half the PR changes (the rate half was PR 2's benchmark);
decompression is included in both since the sweep pays it either way.

Each run appends a record to ``BENCH_quality.json`` (repo root / CWD),
building a trajectory of measured speedups across commits.  Set
``REPRO_BENCH_SMOKE=1`` (as the CI does) for a reduced grid without
wall-clock assertions (shared single-core runners make one-off timing
ratios flaky; the smoke run exercises the path and uploads the
trajectory).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.catalog import compare_catalogs
from repro.analysis.halos import HaloCatalog
from repro.analysis.labeling import UnionFind, label_components
from repro.analysis.metrics import nrmse, psnr
from repro.compression.sz import SZCompressor, decompress
from repro.foresight.evaluator import QualityEvaluator
from repro.foresight.quality import QualityCriteria, QualityReport
from repro.sim.nyx import NyxSimulator
from repro.util.tables import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHAPE = (32, 32, 32) if SMOKE else (64, 64, 64)
N_EBS = 3 if SMOKE else 6
ROUNDS = 3
#: Speedup floors asserted outside smoke mode (the acceptance criteria).
MIN_SWEEP_SPEEDUP = 3.0
MIN_LABELING_SPEEDUP = 2.0
#: Candidate-cell percentile for the halo criterion: low enough that the
#: candidate set is dense (the regime where the seed's per-edge union
#: loops dominated the halo find).
HALO_PERCENTILE = 90.0
#: Peak percentile for ``t_halo``: keeps the *catalog* small so the
#: greedy halo matching — identical work in both paths — doesn't drown
#: the signal this benchmark measures.
PEAK_PERCENTILE = 99.8
#: Mask density for the labeling micro-benchmark (dense-candidate case).
LABEL_PERCENTILE = 70.0
TRAJECTORY = Path("BENCH_quality.json")


# -- frozen seed implementation, the comparison baseline ---------------------


def _seed_power_spectrum(field: np.ndarray):
    """Seed spectrum: mode bins and rfft weights rebuilt per call, every
    bin computed up to the 1-D Nyquist frequency."""
    arr = np.asarray(field, dtype=np.float64)
    arr = arr - arr.mean()
    n_total = arr.size
    fk = np.fft.rfftn(arr)
    weights = np.full(fk.shape, 2.0)
    weights[..., 0] = 1.0
    if arr.shape[2] % 2 == 0:
        weights[..., -1] = 1.0
    kx = np.fft.fftfreq(arr.shape[0]) * arr.shape[0]
    ky = np.fft.fftfreq(arr.shape[1]) * arr.shape[1]
    kz = np.fft.rfftfreq(arr.shape[2]) * arr.shape[2]
    kk = np.sqrt(
        kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
    )
    bins = np.rint(kk).astype(np.int64)
    nbins = min(s // 2 for s in arr.shape)
    power_flat = (np.abs(fk) ** 2 * weights).ravel()
    bins_flat = bins.ravel()
    keep = (bins_flat >= 1) & (bins_flat <= nbins)
    sums = np.bincount(bins_flat[keep], weights=power_flat[keep], minlength=nbins + 1)
    counts = np.bincount(
        bins_flat[keep], weights=weights.ravel()[keep], minlength=nbins + 1
    )
    k = np.arange(1, nbins + 1)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_power = np.where(counts[1:] > 0, sums[1:] / counts[1:], 0.0)
    return k, mean_power / n_total


def _seed_label_components(mask: np.ndarray, periodic: bool = True):
    """Seed labeling: vectorized edge discovery, per-edge Python unions."""
    mask = np.asarray(mask, dtype=bool)
    flat_idx = np.flatnonzero(mask.ravel())
    labels = np.zeros(mask.shape, dtype=np.int64)
    m = len(flat_idx)
    if m == 0:
        return labels, 0
    nx, ny, nz = mask.shape
    cx, cy, cz = np.unravel_index(flat_idx, mask.shape)
    uf = UnionFind(m)
    strides = (ny * nz, nz, 1)
    dims = (nx, ny, nz)
    coords = (cx, cy, cz)
    for axis in range(3):
        c = coords[axis]
        if periodic:
            neighbor_coord = (c + 1) % dims[axis]
            valid = np.ones(m, dtype=bool)
        else:
            neighbor_coord = c + 1
            valid = neighbor_coord < dims[axis]
        delta = (neighbor_coord.astype(np.int64) - c) * strides[axis]
        nbr_flat = flat_idx + delta
        pos = np.searchsorted(flat_idx, nbr_flat[valid])
        pos_clipped = np.minimum(pos, m - 1)
        hits = flat_idx[pos_clipped] == nbr_flat[valid]
        src = np.flatnonzero(valid)[hits]
        dst = pos_clipped[hits]
        for a, b in zip(src.tolist(), dst.tolist()):
            uf.union(a, b)
    roots = uf.roots()
    _, first_pos, compact = np.unique(roots, return_index=True, return_inverse=True)
    order = np.argsort(np.argsort(first_pos))
    labels.ravel()[flat_idx] = order[compact] + 1
    return labels, int(len(first_pos))


def _seed_find_halos(
    density: np.ndarray, t_boundary: float, t_halo: float | None = None
) -> HaloCatalog:
    """Seed halo find: identical reductions, loop-based labeling."""
    rho = np.asarray(density, dtype=np.float64)
    if t_halo is None:
        t_halo = 2.0 * t_boundary
    mask = rho > t_boundary
    labels, n_groups = _seed_label_components(mask, periodic=True)
    n_candidates = int(mask.sum())
    lab_flat = labels.ravel()
    member = lab_flat > 0
    lab_m = lab_flat[member]
    rho_m = rho.ravel()[member]
    sizes = np.bincount(lab_m, minlength=n_groups + 1)[1:]
    masses = np.bincount(lab_m, weights=rho_m, minlength=n_groups + 1)[1:]
    peaks = np.zeros(n_groups + 1)
    np.maximum.at(peaks, lab_m, rho_m)
    peaks = peaks[1:]
    coords = np.stack(np.unravel_index(np.flatnonzero(member), rho.shape), axis=1)
    centroids = np.stack(
        [
            np.bincount(lab_m, weights=coords[:, d], minlength=n_groups + 1)[1:]
            for d in range(3)
        ],
        axis=1,
    ) / np.maximum(sizes, 1)[:, None]
    is_halo = (peaks > t_halo) & (sizes >= 1)
    order = np.argsort(-masses[is_halo], kind="stable")
    return HaloCatalog(
        masses=masses[is_halo][order],
        positions=centroids[is_halo][order],
        sizes=sizes[is_halo][order],
        peak_densities=peaks[is_halo][order],
        t_boundary=float(t_boundary),
        t_halo=float(t_halo),
        n_candidate_cells=n_candidates,
    )


def _seed_evaluate_quality(
    original: np.ndarray, reconstructed: np.ndarray, criteria: QualityCriteria
) -> QualityReport:
    """Seed quality evaluation: every original-side analysis recomputed."""
    orig = np.asarray(original, dtype=np.float64)
    rec = np.asarray(reconstructed, dtype=np.float64)
    k, p_orig = _seed_power_spectrum(orig)
    _, p_rec = _seed_power_spectrum(rec)
    ratio = p_rec / p_orig
    mask = k < criteria.spectrum_k_max
    worst = float(np.max(np.abs(ratio[mask] - 1.0)))
    cat_o = _seed_find_halos(orig, criteria.t_boundary, criteria.t_halo)
    cat_r = _seed_find_halos(rec, criteria.t_boundary, criteria.t_halo)
    cmp = compare_catalogs(cat_o, cat_r, max_distance=criteria.halo_match_distance)
    halo_rmse = cmp.mass_rmse
    halo_ok = bool(np.isfinite(halo_rmse) and halo_rmse <= criteria.halo_mass_rmse)
    return QualityReport(
        spectrum_ok=worst <= criteria.spectrum_tolerance,
        spectrum_worst_deviation=worst,
        halo_ok=halo_ok,
        halo_mass_rmse=halo_rmse,
        halo_count_change=cmp.count_change,
        psnr_db=psnr(orig, rec),
        nrmse_value=nrmse(orig, rec),
    )


def _best_of(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_quality_path(benchmark):
    sim = NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=42, sigma_delta0=2.5)
    snap = sim.snapshot(z=0.5)
    density = snap["baryon_density"]
    f64 = density.astype(np.float64)
    tb = float(np.percentile(f64, HALO_PERCENTILE))
    th = float(np.percentile(f64, PEAK_PERCENTILE))
    crit = QualityCriteria(
        spectrum_tolerance=0.5,
        check_halos=True,
        t_boundary=tb,
        t_halo=th,
        halo_mass_rmse=0.05,
    )
    ebs = np.geomspace(0.005, 0.5, N_EBS)
    comp = SZCompressor()
    # The rate half is identical in both paths (PR 2's benchmark), so
    # compress once outside the timers; decompression stays inside.
    blocks = [comp.compress(density, float(eb)) for eb in ebs]

    def seed_sweep():
        return [
            _seed_evaluate_quality(density, decompress(b), crit) for b in blocks
        ]

    def cached_sweep():
        ev = QualityEvaluator(density, crit)
        return [ev.evaluate(decompress(b)) for b in blocks]

    label_mask = f64 > np.percentile(f64, LABEL_PERCENTILE)

    def run():
        return {
            "sweep_seed_s": _best_of(seed_sweep),
            "sweep_cached_s": _best_of(cached_sweep),
            "labeling_seed_s": _best_of(lambda: _seed_label_components(label_mask)),
            "labeling_vectorized_s": _best_of(lambda: label_components(label_mask, periodic=True)),
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)

    # Sanity: both engines agree (exact spectra/halos, fp-tolerant fused
    # metrics), and both labelings find the same components.
    for seed_rep, cached_rep in zip(seed_sweep(), cached_sweep()):
        assert cached_rep.spectrum_worst_deviation == seed_rep.spectrum_worst_deviation
        assert cached_rep.halo_mass_rmse == seed_rep.halo_mass_rmse
        assert cached_rep.halo_count_change == seed_rep.halo_count_change
        assert np.isclose(cached_rep.psnr_db, seed_rep.psnr_db, rtol=1e-9)
    _, n_seed = _seed_label_components(label_mask)
    _, n_vec = label_components(label_mask, periodic=True)
    assert n_vec == n_seed

    sweep_speedup = t["sweep_seed_s"] / t["sweep_cached_s"]
    labeling_speedup = t["labeling_seed_s"] / t["labeling_vectorized_s"]

    record = {
        "grid": list(SHAPE),
        "smoke": SMOKE,
        "n_ebs": int(N_EBS),
        "halo_percentile": HALO_PERCENTILE,
        "label_mask_density": float(label_mask.mean()),
        "n_candidate_cells": int((f64 > tb).sum()),
        "timings_s": t,
        "sweep_speedup": sweep_speedup,
        "labeling_speedup": labeling_speedup,
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    rows = [
        [
            f"quality sweep ({N_EBS} ebs)",
            t["sweep_seed_s"],
            t["sweep_cached_s"],
            sweep_speedup,
        ],
        [
            f"label_components ({label_mask.mean():.0%} dense)",
            t["labeling_seed_s"],
            t["labeling_vectorized_s"],
            labeling_speedup,
        ],
    ]
    print()
    print(
        format_table(
            ["stage", "seed (s)", "cached/vectorized (s)", "speedup"],
            rows,
            title=f"Quality path ({SHAPE[0]}^3 field)" + (" [smoke]" if SMOKE else ""),
        )
    )

    if not SMOKE:
        assert sweep_speedup >= MIN_SWEEP_SPEEDUP, (
            f"cached quality sweep only {sweep_speedup:.2f}x faster than seed"
        )
        assert labeling_speedup >= MIN_LABELING_SPEEDUP, (
            f"vectorized labeling only {labeling_speedup:.2f}x faster than seed"
        )
