"""Figure 4 — real vs estimated FFT error distribution.

Paper: inject per-partition uniform error (average bound 1.0) into the
temperature field; the FFT-coefficient error is Gaussian with the
Eq. 9/10 sigma.  We compare the empirical error quantiles against the
predicted normal and report the sigma ratio.
"""

from __future__ import annotations

import numpy as np

from repro.models.fft_error import mixed_partition_sigma
from repro.util.rng import default_rng
from repro.util.tables import format_table


def test_fig04_fft_error_distribution(snapshot, decomposition, benchmark):
    data = snapshot["temperature"].astype(np.float64)
    rng = default_rng(7)
    # Per-partition bounds spread around an average of 1.0 (paper setup).
    ebs = rng.uniform(0.5, 1.5, decomposition.n_partitions)
    ebs *= 1.0 / ebs.mean()

    def run():
        noisy = data.copy()
        for p, eb in zip(decomposition, ebs):
            noisy[p.slices] += rng.uniform(-eb, eb, p.shape)
        err_fft = np.fft.fftn(noisy) - np.fft.fftn(data)
        return err_fft.real.ravel()

    err_real = benchmark.pedantic(run, rounds=1, iterations=1)
    sigma_pred = mixed_partition_sigma(data.size, ebs, mode="paper")
    sigma_meas = float(err_real.std())

    qs = [5, 25, 50, 75, 95]
    from scipy import stats

    rows = [
        [f"{q}%", float(np.percentile(err_real, q)), float(stats.norm.ppf(q / 100, 0, sigma_pred))]
        for q in qs
    ]
    print()
    print(
        format_table(
            ["quantile", "measured", "model N(0, sqrt(N/6)eb)"],
            rows,
            title=(
                "Fig. 4 reproduction: FFT error quantiles "
                f"(sigma measured={sigma_meas:.1f}, predicted={sigma_pred:.1f}, "
                f"ratio={sigma_meas / sigma_pred:.3f})"
            ),
        )
    )
    assert sigma_meas / sigma_pred == (
        np.clip(sigma_meas / sigma_pred, 0.9, 1.1)
    ), "Eq. 9/10 sigma off by more than 10%"
