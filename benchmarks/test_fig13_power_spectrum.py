"""Figure 13 — power-spectrum ratio under adaptive vs static compression.

Paper: on baryon density, the adaptive configuration keeps P'(k)/P(k)
inside the acceptance band for all k < 10 without trial-and-error,
while a static configuration at the same average bound can poke out of
the band.  We print the per-k ratios for both.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import correlated_fraction, spectrum_tolerance
from repro.analysis.spectrum import spectrum_ratio
from repro.core.baselines import StaticBaseline
from repro.core.config import HaloQualitySpec
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.analysis.halos import find_halos
from repro.models.fft_error import (
    spectrum_ratio_tolerance_to_eb,
    sub_threshold_power_estimate,
)
from repro.analysis.spectrum import power_spectrum
from repro.util.tables import format_table


def test_fig13_spectrum_quality_band(snapshot, decomposition, rate_models, benchmark):
    field = "baryon_density"
    data = snapshot[field].astype(np.float64)
    tol = spectrum_tolerance(field)
    ps = power_spectrum(data)
    eb_avg = spectrum_ratio_tolerance_to_eb(
        ps,
        data.size,
        tolerance=tol,
        k_max=10,
        sub_power_fn=lambda e: sub_threshold_power_estimate(data, e, stride=2),
        correlated_fraction=correlated_fraction(field),
    )
    tb = float(np.percentile(data, 99.5))
    cat = find_halos(data, tb)
    halo = HaloQualitySpec(
        t_boundary=tb,
        mass_budget=0.01 * float(cat.masses.sum()),
        reference_eb=min(1.0, eb_avg),
    )
    pipe = AdaptiveCompressionPipeline(rate_models[field].rate_model)

    def run():
        adaptive = pipe.run(snapshot[field], decomposition, eb_avg=eb_avg, halo=halo)
        static = StaticBaseline().run(snapshot[field], decomposition, eb_avg)
        k, r_adaptive = spectrum_ratio(data, adaptive.reconstruct(decomposition))
        _, r_static = spectrum_ratio(data, static.reconstruct(decomposition))
        return adaptive, static, k, r_adaptive, r_static

    adaptive, static, k, r_a, r_s = benchmark.pedantic(run, rounds=1, iterations=1)
    mask = k < 10
    print()
    rows = [
        [int(kk), ra, rs]
        for kk, ra, rs in zip(k[mask], r_a[mask], r_s[mask])
    ]
    print(
        format_table(
            ["k", "P'/P adaptive", "P'/P static (same avg eb)"],
            rows,
            title=(
                f"Fig. 13 reproduction: band 1±{tol:g}; model budget eb_avg={eb_avg:.4g} "
                f"(halo-capped mean {adaptive.ebs.mean():.4g}); "
                f"ratios: adaptive {adaptive.overall_ratio:.1f}x, static {static.overall_ratio:.1f}x"
            ),
        )
    )
    worst_adaptive = float(np.max(np.abs(r_a[mask] - 1)))
    worst_static = float(np.max(np.abs(r_s[mask] - 1)))
    print(f"worst deviation: adaptive={worst_adaptive:.4f} static={worst_static:.4f}")
    assert worst_adaptive <= tol * 1.2, "adaptive must stay inside the band"
