"""Resilience plumbing must cost (approximately) nothing when idle.

The fault points, the per-field retry wrapper and the ledger's
crash-safety path stay in production builds; their disarmed cost is the
price every run pays for fault tolerance.  This bench streams the same
schedule through a bare controller and a fully armored one (retry
policy, fallback compressor, recovery-capable ledger — but no faults),
and asserts:

1. **Determinism**: both ledgers replay to identical decisions — the
   resilience layer is invisible in the output (holds in every mode).
2. **Overhead**: the armored run's wall clock stays within
   ``MAX_OVERHEAD`` of the bare run (asserted outside smoke mode).

Each run appends a record to ``BENCH_resilience.json``, building an
overhead trajectory across commits.  Set ``REPRO_BENCH_SMOKE=1`` (as CI
does) for a reduced grid without wall-clock assertions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.parallel.decomposition import BlockDecomposition
from repro.resilience import RetryPolicy
from repro.sim.nyx import NyxSimulator
from repro.stream import InSituController, SnapshotSequence, replay_ledger

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHAPE = (16, 16, 16) if SMOKE else (32, 32, 32)
N_SNAPSHOTS = 4 if SMOKE else 8
REDSHIFTS = [4.0, 3.0, 2.2, 1.6, 1.2, 0.8, 0.5, 0.3][:N_SNAPSHOTS]
FIELDS = ("baryon_density", "temperature")
BLOCKS = 2
ROUNDS = 3  # best-of: one stream run is short; timer noise is not
#: Disarmed fault points + retry closures are a few native calls per
#: field; anything beyond this bound means the hot path grew real work.
MAX_OVERHEAD = 0.25
TRAJECTORY = Path("BENCH_resilience.json")


def _stream(sim):
    return SnapshotSequence([sim.snapshot(z=z) for z in REDSHIFTS], fields=FIELDS)


def _timed_run(dec, stream, path, *, resilient: bool) -> float:
    kwargs = {}
    if resilient:
        kwargs = {
            "retry": RetryPolicy(max_attempts=3),
            "fallback_compressor": "sz:codec=zlib",
        }
    ctl = InSituController(dec, ledger=path, retain_results=False, **kwargs)
    start = time.perf_counter()
    ctl.run(stream)
    elapsed = time.perf_counter() - start
    ctl.ledger.close()
    return elapsed


def test_resilience_overhead(benchmark, tmp_path):
    sim = NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=42, sigma_delta0=2.5)
    dec = BlockDecomposition(SHAPE, blocks=BLOCKS)
    stream = _stream(sim)

    # Warm-up (numpy/FFT caches, codec tables) outside the timers.
    _timed_run(dec, stream, tmp_path / "warm.jsonl", resilient=False)

    def run():
        bare = [float("inf")] * ROUNDS
        armored = [float("inf")] * ROUNDS
        for i in range(ROUNDS):
            bare[i] = _timed_run(
                dec, stream, tmp_path / f"bare_{i}.jsonl", resilient=False
            )
            armored[i] = _timed_run(
                dec, stream, tmp_path / f"armored_{i}.jsonl", resilient=True
            )
        return min(bare), min(armored)

    t_bare, t_armored = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = t_armored / t_bare - 1.0

    # Determinism holds in every mode: the armored run's decisions are
    # bitwise identical to the bare run's.
    assert replay_ledger(tmp_path / "armored_0.jsonl") == replay_ledger(
        tmp_path / "bare_0.jsonl"
    )

    print(
        f"\nresilience overhead: bare {t_bare * 1e3:.1f} ms, "
        f"armored {t_armored * 1e3:.1f} ms ({overhead:+.1%})"
    )
    if not SMOKE:
        assert overhead < MAX_OVERHEAD

    record = {
        "grid": list(SHAPE),
        "smoke": SMOKE,
        "n_snapshots": N_SNAPSHOTS,
        "n_fields": len(FIELDS),
        "t_bare_s": t_bare,
        "t_armored_s": t_armored,
        "overhead": overhead,
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
