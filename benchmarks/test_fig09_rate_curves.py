"""Figure 9 — per-partition bit-rate vs error-bound curves.

Paper: 16 sampled partitions; on log-log axes each partition's curve is
a power law (Eq. 15), with a shared slope and per-partition offsets
spanning the compressibility spread the optimizer exploits.
"""

from __future__ import annotations

import numpy as np

from repro.models.rate_model import fit_power_law
from repro.util.tables import format_table


def test_fig09_per_partition_power_laws(snapshot, decomposition, compressor, benchmark):
    data = snapshot["baryon_density"]
    views = decomposition.partition_views(data)
    sample = views[:: max(1, len(views) // 16)][:16]
    probe_ebs = np.array([0.1, 0.2, 0.4, 0.8, 1.6])

    def run():
        rows = []
        for i, v in enumerate(sample):
            rates = np.array([compressor.compress(v, float(e)).bit_rate for e in probe_ebs])
            coef, c, r2 = fit_power_law(probe_ebs, rates)
            rows.append([i, *rates.tolist(), c, r2])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    headers = ["part"] + [f"b(eb={e:g})" for e in probe_ebs] + ["exponent c", "R^2"]
    print(format_table(headers, rows, title="Fig. 9 reproduction: rate curves"))

    exps = np.array([r[-2] for r in rows])
    r2s = np.array([r[-1] for r in rows])
    informative = r2s > 0.8
    assert informative.sum() >= len(rows) // 2, "most partitions follow a power law"
    # Shared exponent: informative slopes cluster (std well below |median|).
    med = np.median(exps[informative])
    assert med < -0.2
    assert np.std(exps[informative]) < abs(med)
    # Compressibility spread across partitions (different C_m offsets).
    mid_rates = np.array([r[3] for r in rows])
    assert mid_rates.max() / max(mid_rates.min(), 1e-9) > 2.0
