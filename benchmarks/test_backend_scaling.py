"""Execution-backend throughput: serial vs thread-SPMD vs process pool.

Context for §4.3 and the cuSZ-style scaling studies: the paper's in situ
deployment runs one rank per partition; here we sweep the same snapshot
over backends × rank counts and record end-to-end adaptive-compression
throughput (features + optimize + compress, as the deployment pays it).
On a single-core container the parallel backends cannot beat the serial
loop — what this bench establishes is the *accounting*: identical
payloads, per-phase timings on every path, and the scatter/dispatch
overhead each backend adds at laptop scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.rate_model import RateModel
from repro.parallel.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.decomposition import BlockDecomposition
from repro.util.tables import format_table

#: Ranks per axis to sweep — 8 and 64 total ranks at the session scale.
BLOCK_SWEEP = (2, 4)


def test_backend_scaling(snapshot, benchmark):
    data = snapshot["temperature"]
    eb_avg = float(np.ptp(data.astype(np.float64))) * 3e-3
    model = RateModel(exponent=-0.8, coef_alpha=0.0, coef_beta=0.3)
    nbytes = data.nbytes

    backends = [SerialBackend(), ThreadBackend(), ProcessBackend(max_workers=2)]

    def run():
        rows = []
        reference: dict[int, np.ndarray] = {}
        try:
            for blocks in BLOCK_SWEEP:
                dec = BlockDecomposition(data.shape, blocks=blocks)
                for backend in backends:
                    pipe = AdaptiveCompressionPipeline(model, backend=backend)
                    start = time.perf_counter()
                    res = pipe.run_insitu_spmd(data, dec, eb_avg=eb_avg)
                    wall = time.perf_counter() - start
                    ref = reference.setdefault(blocks, res.ebs)
                    assert np.array_equal(ref, res.ebs), "backends disagree"
                    rows.append(
                        [
                            backend.name,
                            dec.n_partitions,
                            nbytes / wall / 1e6,
                            res.timings.overhead_ratio("features", "compress"),
                            res.overall_ratio,
                        ]
                    )
        finally:
            for backend in backends:
                backend.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["backend", "ranks", "MB/s", "feature overhead", "ratio"],
            rows,
            title="Backend scaling (single-field adaptive compression, end to end)",
        )
    )
    covered = {(r[0], r[1]) for r in rows}
    for name in ("serial", "thread", "process"):
        rank_counts = {ranks for b, ranks in covered if b == name}
        assert len(rank_counts) >= 2, f"{name} must be swept at >= 2 rank counts"
    for row in rows:
        assert row[2] > 0.1, "every backend must sustain usable throughput"
