"""Telemetry overhead: the instrumentation must not move the numbers it
reports.

Two bounds on the 64^3 compress hot path (the most span-dense loop in
the stack — six ``sz.*`` stage spans per batched pass):

1. **Disarmed (no-op) overhead < 1%**: the permanent instrumentation —
   ``with tracer.span(...)`` against the null tracer plus the
   ``telemetry.enabled()`` guards — costed directly: the per-dispatch
   price of the null path is micro-benchmarked in a tight loop,
   multiplied by the span count one compress pass actually emits, and
   expressed as a fraction of the disarmed compress time.  (An A/B
   wall-clock diff cannot resolve this — run-to-run noise on a ~50 ms
   compress is larger than the entire null path.)
2. **Armed overhead < 5%**: a live tracer recording every stage span
   versus the disarmed baseline, measured A/B best-of-ROUNDS.

Each run appends a record to ``BENCH_telemetry.json`` (CWD), building
the overhead trajectory across commits.  Wall-clock assertions are
skipped under ``REPRO_BENCH_SMOKE=1`` (shared single-core CI runners
make one-off ratios flaky); the smoke run still exercises both paths
and uploads the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.compression.sz import SZCompressor
from repro.util.tables import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHAPE = (32, 32, 32) if SMOKE else (64, 64, 64)
ROUNDS = 3 if SMOKE else 7
MAX_NOOP_OVERHEAD = 0.01
MAX_ARMED_OVERHEAD = 0.05
TRAJECTORY = Path("BENCH_telemetry.json")


def _best_of(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _null_dispatch_cost(n_ops: int = 200_000) -> float:
    """Seconds per disarmed instrumentation point: one null ``span()``
    context plus one ``enabled()`` guard (the hot-loop idiom)."""
    telemetry.disarm()
    tracer = telemetry.get_tracer()
    start = time.perf_counter()
    for _ in range(n_ops):
        with tracer.span("x"):
            pass
        telemetry.enabled()
    return (time.perf_counter() - start) / n_ops


def test_telemetry_overhead(benchmark):
    data, eb = _field()
    comp = SZCompressor()
    comp.compress(data, eb)  # warm workspace/caches

    def run():
        telemetry.disarm()
        t_disarmed = _best_of(lambda: comp.compress(data, eb))
        with telemetry.armed(track="bench") as tracer:
            t_armed = _best_of(lambda: comp.compress(data, eb))
        return {
            "disarmed_s": t_disarmed,
            "armed_s": t_armed,
            "null_dispatch_s": _null_dispatch_cost(),
            # The armed window ran ROUNDS passes; per-pass span count.
            "spans_per_pass": len(tracer.export_spans()) / ROUNDS,
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)

    base = t["disarmed_s"]
    noop_overhead = t["null_dispatch_s"] * t["spans_per_pass"] / base
    armed_overhead = t["armed_s"] / base - 1.0
    record = {
        "grid": list(SHAPE),
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "timings_s": t,
        "noop_overhead": noop_overhead,
        "armed_overhead": armed_overhead,
    }
    _append_trajectory(record)

    print()
    print(
        format_table(
            ["path", "best-of (s)", "overhead"],
            [
                ["disarmed (baseline)", base, 0.0],
                [
                    f"null dispatch x{t['spans_per_pass']:.0f}",
                    t["null_dispatch_s"] * t["spans_per_pass"],
                    noop_overhead,
                ],
                ["armed", t["armed_s"], armed_overhead],
            ],
            title=f"Telemetry overhead ({SHAPE[0]}^3 compress)"
            + (" [smoke]" if SMOKE else ""),
        )
    )

    assert t["spans_per_pass"] > 0, "armed compress recorded no spans"
    # The no-op dispatch bound is hardware-independent enough to hold in
    # smoke mode too: microseconds of null calls against milliseconds of
    # compression.
    assert noop_overhead < MAX_NOOP_OVERHEAD, (
        f"no-op telemetry costs {noop_overhead:.3%} (gate {MAX_NOOP_OVERHEAD:.0%})"
    )
    if not SMOKE:
        assert armed_overhead < MAX_ARMED_OVERHEAD, (
            f"armed telemetry costs {armed_overhead:.2%} (gate {MAX_ARMED_OVERHEAD:.0%})"
        )


def _field():
    from repro.sim.nyx import NyxSimulator

    sim = NyxSimulator(
        shape=SHAPE, box_size=float(SHAPE[0]), seed=42, sigma_delta0=2.5
    )
    data = sim.snapshot(z=0.5)["temperature"]
    eb = float(np.ptp(data.astype(np.float64))) * 3e-3
    return data, eb


def _append_trajectory(record: dict) -> None:
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")
