"""Ablation — entropy stage: Huffman vs zlib vs raw.

The SZ stack entropy-codes quantization integers; this bench quantifies
what each backend contributes on real cosmology data (the raw backend
shows the Lorenzo+quantization stage alone caps at ~2x for fp32).
"""

from __future__ import annotations

from repro.compression.sz import SZCompressor, decompress
import numpy as np

from repro.util.tables import format_table


def test_ablation_entropy_codec(snapshot, benchmark):
    data = snapshot["baryon_density"]
    eb = 0.3

    def run():
        rows = []
        for codec in ("raw", "zlib", "huffman"):
            comp = SZCompressor(codec=codec)
            block = comp.compress(data, eb)
            recon = decompress(block)
            rows.append(
                [
                    codec,
                    block.ratio,
                    block.bit_rate,
                    float(np.abs(recon - data.astype(np.float64)).max()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["codec", "ratio", "bit rate", "max err"],
            rows,
            title=f"Ablation: entropy stage on baryon density (eb={eb})",
        )
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["zlib"][1] > by_name["raw"][1]
    assert by_name["huffman"][1] > by_name["raw"][1]
    for r in rows:
        assert r[3] <= eb + 1e-9
