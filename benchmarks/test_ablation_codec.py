"""Ablation — the compression stack's two codec axes.

1. **Entropy stage** (within the SZ family): Huffman vs zlib vs raw on
   real cosmology data (the raw backend shows the Lorenzo+quantization
   stage alone caps at ~2x for fp32).
2. **Compressor family** (across the registry): per field, every
   registered candidate is scored exactly as
   :func:`repro.core.selection.select_compressor` scores it — the
   §2.2 SZ-over-ZFP argument as a measured selection verdict, plus the
   achieved ratio / bitrate / max error of each family at the field's
   admissible bound.

Each family-ablation run appends a record to ``BENCH_codec.json``
(repo root / CWD); CI runs it in smoke mode (subset of fields) and
uploads the artifact next to the other bench trajectories.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.compression.api import CompressorSpec, capabilities_of, resolve_compressor
from repro.compression.sz import SZCompressor, decompress
from repro.core.config import FieldSpec
from repro.core.selection import select_compressor
from repro.models.calibration import RateModelBank
from repro.util.tables import format_table

from benchmarks.conftest import correlated_fraction, spectrum_tolerance

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
TRAJECTORY = Path("BENCH_codec.json")

#: The candidate slate the family ablation scores per field.
FAMILIES = (
    CompressorSpec.sz(),
    CompressorSpec.sz(codec="huffman"),
    CompressorSpec.zfp_like(rate=8.0),
    CompressorSpec.make("sz_adaptive"),
)

SMOKE_FIELDS = ("baryon_density", "temperature")


def test_ablation_entropy_codec(snapshot, benchmark):
    data = snapshot["baryon_density"]
    eb = 0.3

    def run():
        rows = []
        for codec in ("raw", "zlib", "huffman"):
            comp = SZCompressor(codec=codec)
            block = comp.compress(data, eb)
            recon = decompress(block)
            rows.append(
                [
                    codec,
                    block.ratio,
                    block.bit_rate,
                    float(np.abs(recon - data.astype(np.float64)).max()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["codec", "ratio", "bit rate", "max err"],
            rows,
            title=f"Ablation: entropy stage on baryon density (eb={eb})",
        )
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["zlib"][1] > by_name["raw"][1]
    assert by_name["huffman"][1] > by_name["raw"][1]
    for r in rows:
        assert r[3] <= eb + 1e-9


def test_ablation_compressor_family(snapshot, decomposition, benchmark):
    fields = (
        SMOKE_FIELDS if SMOKE else tuple(snapshot.fields)
    )
    bank = RateModelBank(max_partitions=8 if SMOKE else 16)

    def run():
        per_field: dict[str, dict] = {}
        for name in fields:
            data = snapshot[name]
            field_spec = FieldSpec(
                spectrum_tolerance=spectrum_tolerance(name),
                correlated_fraction=correlated_fraction(name),
            )
            selection = select_compressor(
                data,
                decomposition,
                candidates=list(FAMILIES),
                field_spec=field_spec,
                field=name,
                bank=bank,
            )
            families: dict[str, dict] = {}
            for spec in FAMILIES:
                comp = resolve_compressor(spec)
                block = comp.compress(data, selection.eb_avg)
                recon = comp.decompress(block)
                max_err = float(np.abs(recon - data.astype(np.float64)).max())
                # Verdicts are recorded in candidate order.
                verdict = selection.verdicts[FAMILIES.index(spec)]
                families[spec.label] = {
                    "ratio": float(block.ratio),
                    "bit_rate": float(block.bit_rate),
                    "max_abs_error": max_err,
                    "error_bounded": capabilities_of(comp).error_bounded,
                    "selected": verdict.spec == selection.chosen,
                    "verdict": verdict.reason,
                    "eb_violation": verdict.eb_violation,
                }
            per_field[name] = {
                "eb_avg": selection.eb_avg,
                "chosen": selection.chosen.label,
                "families": families,
            }
        return per_field

    per_field = benchmark.pedantic(run, rounds=1, iterations=1)

    record = {
        "smoke": SMOKE,
        "grid": list(snapshot.shape),
        "candidates": [spec.label for spec in FAMILIES],
        "fields": per_field,
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    rows = []
    for name, entry in per_field.items():
        for label, fam in entry["families"].items():
            rows.append(
                [
                    name,
                    label,
                    fam["ratio"],
                    fam["bit_rate"],
                    fam["max_abs_error"],
                    "SELECTED" if fam["selected"] else (
                        "ok" if fam["eb_violation"] is None or fam["eb_violation"] <= 1
                        else f"violates eb {fam['eb_violation']:.1f}x"
                    ),
                ]
            )
    print()
    print(
        format_table(
            ["field", "family", "ratio", "bit rate", "max err", "selection"],
            rows,
            title="Ablation: compressor families at each field's admissible bound"
            + (" [smoke]" if SMOKE else ""),
        )
    )

    for name, entry in per_field.items():
        # The §2.2 claim as data: an SZ-family candidate wins everywhere...
        assert entry["chosen"].startswith("sz"), (name, entry["chosen"])
        zfp = entry["families"]["zfp_like(rate=8.0)"]
        # ...the fixed-rate comparator overshoots the bound, quantified...
        assert not zfp["selected"]
        assert zfp["eb_violation"] is not None and zfp["eb_violation"] > 1.0
        assert zfp["max_abs_error"] > entry["eb_avg"]
        # ...and every error-bounded family honours the bound exactly.
        for label, fam in entry["families"].items():
            if fam["error_bounded"]:
                assert fam["max_abs_error"] <= entry["eb_avg"] + 1e-9, (name, label)
