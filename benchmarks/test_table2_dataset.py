"""Table 2 — dataset inventory: fields, sizes, value ranges.

The paper lists the Nyx datasets (512³/1024³/2048³; 6 fields with the
value ranges below).  We synthesize the scaled-down equivalent and print
the same table; the range *bands* (densities positive with long tails,
temperature 1e2-1e7, velocities symmetric about 0) must match.
"""

from __future__ import annotations

import numpy as np

from repro.sim.nyx import FIELD_NAMES, FIELD_RANGES
from repro.util.tables import format_table


def test_table2_dataset_inventory(snapshot, benchmark):
    def summarize():
        rows = []
        for name in FIELD_NAMES:
            arr = snapshot[name]
            rows.append(
                [
                    name,
                    f"{arr.shape[0]}^3",
                    arr.nbytes / 1e6,
                    float(arr.min()),
                    float(arr.max()),
                ]
            )
        return rows

    rows = benchmark(summarize)
    print()
    print(
        format_table(
            ["Field", "Dimension", "Size (MB)", "Min", "Max"],
            rows,
            title="Table 2 reproduction (synthetic Nyx snapshot)",
        )
    )
    for name in FIELD_NAMES:
        lo, hi = FIELD_RANGES[name]
        arr = snapshot[name]
        assert arr.min() >= lo and arr.max() <= hi
