"""Table 1 — mass difference per changed cell on a large halo.

Paper's finding: across error bounds 1e-2..1e1, a large halo's mass
change divided by its changed-cell count lands near ``t_boundary``
(their threshold 88.16; measured 80.7-92.2).  This is the observation
Eq. 11 is built on: flipped edge cells each move ~one threshold-mass.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.catalog import match_halos
from repro.analysis.halos import find_halos
from repro.compression.sz import SZCompressor, decompress
from repro.util.tables import format_table


def test_table1_mass_diff_per_changed_cell(snapshot, benchmark):
    rho = snapshot["baryon_density"].astype(np.float64)
    t_boundary = float(np.percentile(rho, 99.5))
    cat0 = find_halos(rho, t_boundary)
    assert cat0.n_halos > 0
    comp = SZCompressor()

    def run():
        rows = [["original", int(cat0.sizes[0]), cat0.masses[0], "-", "-"]]
        for eb in (1e-2, 1e-1, 1e0):
            recon = decompress(comp.compress(rho, eb))
            cat1 = find_halos(recon, t_boundary)
            oi, ri = match_halos(cat0, cat1, max_distance=3.0)
            if 0 not in oi.tolist():
                rows.append([f"{eb:g}", "-", "-", "-", "(large halo unmatched)"])
                continue
            j = ri[oi.tolist().index(0)]
            dcells = int(cat1.sizes[j]) - int(cat0.sizes[0])
            dmass = float(cat1.masses[j] - cat0.masses[0])
            per_cell = dmass / dcells if dcells != 0 else float("nan")
            rows.append([f"{eb:g}", int(cat1.sizes[j]), cat1.masses[j], dmass, per_cell])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Error Bound", "Cells", "Mass", "Mass Diff", "Diff per cell"],
            rows,
            title=f"Table 1 reproduction (largest halo; t_boundary={t_boundary:.2f})",
        )
    )
    # Shape check: where cells changed, mass-diff-per-cell ~ t_boundary.
    per_cells = [r[4] for r in rows[1:] if isinstance(r[4], float) and np.isfinite(r[4])]
    if per_cells:
        for pc in per_cells:
            assert 0.3 * t_boundary <= abs(pc) <= 3.0 * t_boundary
