"""Figure 3 — SZ compression error distribution is uniform.

Paper: temperature field, eb = 10, 100-bin histogram — flat across
[-eb, eb].  We print the decile histogram and the measured std in units
of eb (uniform: 1/sqrt(3) = 0.577).
"""

from __future__ import annotations

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.models.error_distribution import empirical_error_model
from repro.util.tables import format_table


def test_fig03_error_histogram_uniform(snapshot, compressor, benchmark):
    data = snapshot["temperature"].astype(np.float64)
    eb = 10.0

    def run():
        block = compressor.compress(data, eb)
        recon = decompress(block)
        err = (recon - data) / eb
        counts, edges = np.histogram(err, bins=10, range=(-1, 1))
        mean, std = empirical_error_model(data, recon, eb)
        return counts, edges, mean, std

    counts, edges, mean, std = benchmark.pedantic(run, rounds=1, iterations=1)
    frac = counts / counts.sum()
    print()
    print(
        format_table(
            ["bin", "fraction"],
            [[f"[{edges[i]:+.1f},{edges[i + 1]:+.1f})", frac[i]] for i in range(10)],
            title=f"Fig. 3 reproduction: error/eb histogram (mean={mean:.4f}, std={std:.4f}, uniform std=0.5774)",
        )
    )
    # Uniformity: all deciles populated within 2x of each other.
    assert counts.min() > 0
    assert counts.max() / counts.min() < 2.0
    assert abs(std - 1 / np.sqrt(3)) < 0.06
