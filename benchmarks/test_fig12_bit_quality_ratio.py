"""Figure 12 — bit-quality ratios equalized by the optimization.

Paper: with one static bound the per-partition marginal bit cost
(d bitrate / d eb, the "bit-quality ratio") is disorganized; after
optimization every partition sits at a similar marginal cost — the
stationarity condition of Eq. 16.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import extract_features
from repro.core.optimizer import optimize_for_spectrum
from repro.util.tables import format_table


def test_fig12_marginal_cost_equalization(snapshot, decomposition, rate_models, benchmark):
    data = snapshot["temperature"]
    cal = rate_models["temperature"]
    model = cal.rate_model
    eb_avg = float(np.ptp(np.asarray(data, dtype=np.float64))) * 3e-3

    def run():
        feats = [
            extract_features(v, rank=i)
            for i, v in enumerate(decomposition.partition_views(data))
        ]
        means = np.array([f.mean_abs for f in feats])
        static_marginal = np.abs(model.marginal_bit_cost(means, eb_avg))
        opt = optimize_for_spectrum(feats, model, eb_avg)
        adaptive_marginal = np.abs(model.marginal_bit_cost(means, opt.ebs))
        return static_marginal, adaptive_marginal, opt

    static_m, adaptive_m, opt = benchmark(run)

    def spread(x):
        return float(x.max() / x.min())

    clamped = (opt.ebs <= opt.eb_avg_target / 3.99) | (opt.ebs >= opt.eb_avg_target * 3.99)
    free = ~clamped
    print()
    print(
        format_table(
            ["configuration", "marginal-cost spread (max/min)", "normalized std"],
            [
                ["traditional (one bound)", spread(static_m), float(static_m.std() / static_m.mean())],
                ["ours (optimized)", spread(adaptive_m), float(adaptive_m.std() / adaptive_m.mean())],
                [
                    "ours, unclamped partitions only",
                    spread(adaptive_m[free]) if free.any() else float("nan"),
                    float(adaptive_m[free].std() / adaptive_m[free].mean()) if free.any() else float("nan"),
                ],
            ],
            title="Fig. 12 reproduction: bit-quality ratio before/after optimization",
        )
    )
    # Optimization must tighten the marginal-cost spread dramatically.
    assert adaptive_m[free].std() / adaptive_m[free].mean() < 0.1 * (
        static_m.std() / static_m.mean()
    ) or spread(adaptive_m[free]) < 1.2
