"""Figure 5 — real vs estimated FFT-error variance across error bounds.

Paper: the Eq. 9/10 variance prediction tracks the measured variance
over a range of (per-partition) bounds.  We sweep the average bound,
print measured vs predicted sigma for injected uniform error (the
model's premise) and for the real compressor (showing where the
§3.5 revision matters — used to calibrate ``correlated_fraction``).
"""

from __future__ import annotations

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.models.fft_error import mixed_partition_sigma
from repro.util.rng import default_rng
from repro.util.tables import format_table


def test_fig05_variance_tracking(snapshot, decomposition, compressor, benchmark):
    data = snapshot["temperature"].astype(np.float64)
    rng = default_rng(11)
    spread = rng.uniform(0.5, 1.5, decomposition.n_partitions)
    spread *= 1.0 / spread.mean()

    def run():
        rows = []
        for eb_avg in (0.5, 1.0, 2.0, 5.0, 10.0):
            ebs = eb_avg * spread
            pred = mixed_partition_sigma(data.size, ebs, mode="paper")
            # Injected uniform error (the model's premise).
            noisy = data.copy()
            for p, eb in zip(decomposition, ebs):
                noisy[p.slices] += rng.uniform(-eb, eb, p.shape)
            meas_inj = float((np.fft.fftn(noisy) - np.fft.fftn(data)).real.std())
            # Real compressor at the same per-partition bounds.
            recon = np.empty_like(data)
            for p, eb in zip(decomposition, ebs):
                recon[p.slices] = decompress(compressor.compress(data[p.slices], eb))
            meas_sz = float((np.fft.fftn(recon) - np.fft.fftn(data)).real.std())
            rows.append([eb_avg, pred, meas_inj, meas_inj / pred, meas_sz, meas_sz / pred])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["eb_avg", "predicted", "injected", "inj/pred", "SZ", "SZ/pred"],
            rows,
            title="Fig. 5 reproduction: FFT error sigma, model vs measured",
        )
    )
    for row in rows:
        assert 0.9 <= row[3] <= 1.1, "injected-noise sigma must match Eq. 10"
        # The real compressor's error is bounded by the model within ~2x
        # (deterministic quantization correlates; §3.5 revision).
        assert row[5] <= 2.0
