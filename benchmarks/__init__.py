# Makes the benchmark suite importable (shared protocol helpers).
