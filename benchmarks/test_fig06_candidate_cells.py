"""Figure 6 — halo-candidate cells before/after compression.

Paper: in a 64³ partition at a deliberately high bound (eb=10),
candidacy changes only on halo edges — a small fraction of candidate
cells, concentrated at the boundary of existing structures.
"""

from __future__ import annotations

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.util.tables import format_table


def test_fig06_candidate_cell_changes(snapshot, decomposition, benchmark):
    rho = snapshot["baryon_density"].astype(np.float64)
    t_boundary = float(np.percentile(rho, 99.0))
    comp = SZCompressor()

    def run():
        rows = []
        for eb in (0.1, 1.0, 10.0):
            recon = decompress(comp.compress(rho, eb))
            before = rho > t_boundary
            after = recon > t_boundary
            added = int(np.count_nonzero(after & ~before))
            dropped = int(np.count_nonzero(before & ~after))
            # Are changed cells on structure edges?  An edge candidate has
            # at least one non-candidate face neighbour.
            changed = after ^ before
            rows.append(
                [eb, int(before.sum()), int(after.sum()), added, dropped,
                 (added + dropped) / max(int(before.sum()), 1)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["eb", "candidates before", "after", "added", "dropped", "changed frac"],
            rows,
            title=f"Fig. 6 reproduction: candidate mask stability (t_boundary={t_boundary:.2f})",
        )
    )
    # Small bound: candidacy nearly unchanged; high bound: still a minor
    # fraction of the candidate population (edge effect only).
    assert rows[0][5] < 0.05
    assert rows[-1][5] < 1.0
