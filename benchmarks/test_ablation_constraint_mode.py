"""Ablation — Eq. 10's linear-average constraint vs the exact RMS form.

The paper combines per-partition bounds by their linear average
(Eq. 10); the exact FFT-variance combination uses the RMS.  At the same
*measured* spectrum damage the two modes trade a small amount of ratio;
this bench quantifies both sides.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spectrum import check_spectrum_quality
from repro.core.config import OptimizerSettings
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.util.tables import format_table


def test_ablation_constraint_mode(snapshot, decomposition, rate_models, benchmark):
    field = "baryon_density"
    data = snapshot[field]
    f64 = data.astype(np.float64)
    eb_avg = 0.3

    def run():
        rows = []
        for mode in ("paper", "rms"):
            pipe = AdaptiveCompressionPipeline(
                rate_models[field].rate_model,
                settings=OptimizerSettings(constraint_mode=mode),
            )
            res = pipe.run(data, decomposition, eb_avg=eb_avg)
            recon = res.reconstruct(decomposition)
            _, dev = check_spectrum_quality(f64, recon, tolerance=1.0)
            rows.append(
                [
                    mode,
                    float(res.ebs.mean()),
                    float(np.sqrt(np.mean(res.ebs**2))),
                    res.overall_ratio,
                    dev,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["constraint", "mean eb", "rms eb", "ratio", "measured P(k) dev"],
            rows,
            title="Ablation: Eq. 10 linear-average vs exact RMS constraint",
        )
    )
    paper_row, rms_row = rows
    # RMS mode holds the RMS at target; paper mode holds the mean.
    assert paper_row[1] == (np.clip(paper_row[1], eb_avg * 0.999, eb_avg * 1.001))
    assert rms_row[2] == (np.clip(rms_row[2], eb_avg * 0.999, eb_avg * 1.001))
    # Hence RMS mode is the (slightly) more conservative configuration.
    assert rms_row[1] <= paper_row[1] + 1e-12