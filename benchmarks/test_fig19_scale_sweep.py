"""Figure 19 — improvement is consistent across simulation scales.

Paper: 56.0% (512³) and 51.9% (1024³) average improvement — the method
does not depend on one lucky grid size.  We run the full two-protocol
comparison on baryon density at three scaled-down grid sizes.
"""

from __future__ import annotations

import numpy as np

from benchmarks._protocols import evaluate, model_budget, run_our_method, run_traditional
from repro.models.calibration import calibrate_rate_model
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator
from repro.util.tables import format_table

SCALES = [48, 64, 96]


def test_fig19_scale_sweep(benchmark):
    field = "baryon_density"

    def run():
        rows = []
        for n in SCALES:
            sim = NyxSimulator(shape=(n, n, n), box_size=float(n), seed=42, sigma_delta0=2.5)
            snap = sim.snapshot(z=0.5)
            dec = BlockDecomposition(snap.shape, blocks=4)
            data = snap[field]
            cal = calibrate_rate_model(
                dec.partition_views(data), eb_scale=0.3, max_partitions=16, seed=0
            )
            ours, eb_model = run_our_method(field, data, dec, cal.rate_model)
            trad, trials = run_traditional(field, data, dec)
            o = evaluate(field, data, dec, ours)
            t = evaluate(field, data, dec, trad)
            rows.append([n, t.ratio, o.ratio, 100.0 * (o.ratio / t.ratio - 1.0)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["scale (dim)", "traditional ratio", "our ratio", "improvement %"],
            rows,
            title="Fig. 19 reproduction: improvement across simulation scales",
        )
    )
    imps = np.array([r[3] for r in rows])
    # Consistency claim: positive improvement at every scale.
    assert (imps > 0).all()
