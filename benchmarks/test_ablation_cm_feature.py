"""Ablation — C_m predictor feature: mean value vs histogram entropy.

§3.5: the paper found entropy predictive but chose the mean for its
negligible cost.  We fit the coefficient regression with each feature
and report R² plus extraction cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.features import histogram_entropy
from repro.models.calibration import calibrate_rate_model, partition_feature
from repro.util.tables import format_table


def test_ablation_coefficient_feature(snapshot, decomposition, compressor, benchmark):
    data = snapshot["baryon_density"]
    views = decomposition.partition_views(data)
    cal = calibrate_rate_model(views, eb_scale=0.3, max_partitions=len(views), seed=0)

    def run():
        # True per-partition coefficients from the calibration...
        y = np.log(cal.coefficients)
        feats_cal_idx = cal.features  # mean |value| of the sampled partitions
        # ...regressed against each candidate feature.
        out = []
        for name, extractor in (
            ("mean |value| (paper)", partition_feature),
            ("histogram entropy", histogram_entropy),
        ):
            t0 = time.perf_counter()
            x_all = [extractor(v) for v in views]
            cost = time.perf_counter() - t0
            x = np.array([extractor(v) for v in views])
            # Guard logs for entropy (can be ~0 in empty partitions).
            x = np.log(np.maximum(np.abs(x), 1e-6))
            beta, alpha = np.polyfit(x, y, 1)
            pred = beta * x + alpha
            ss = 1 - np.sum((y - pred) ** 2) / max(np.sum((y - y.mean()) ** 2), 1e-12)
            out.append([name, float(ss), cost * 1e3])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["feature", "R^2 vs true C_m", "extraction ms (all partitions)"],
            rows,
            title="Ablation: coefficient predictor feature (Fig. 10a context)",
        )
    )
    mean_r2 = rows[0][1]
    assert mean_r2 > 0.5, "the paper's cheap feature must stay predictive"
