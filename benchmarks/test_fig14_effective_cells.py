"""Figure 14 — histogram of effective (boundary) cell counts per partition.

Paper: the per-partition effective-cell count spans orders of magnitude
(log-scaled histogram) — dispersed feature density is what lets the
halo-aware optimizer trade bounds between partitions.
"""

from __future__ import annotations

import numpy as np

from repro.models.halo_error import effective_cell_rate
from repro.util.tables import format_table


def test_fig14_effective_cell_histogram(snapshot, decomposition, benchmark):
    rho = snapshot["baryon_density"].astype(np.float64)
    t_boundary = float(np.percentile(rho, 99.0))

    def run():
        return np.array(
            [
                effective_cell_rate(v, t_boundary, reference_eb=1.0)
                for v in decomposition.partition_views(rho)
            ]
        )

    rates = benchmark(run)
    nonzero = rates[rates > 0]
    edges = np.logspace(0, np.log10(max(nonzero.max(), 10)), 7) if nonzero.size else []
    counts, _ = np.histogram(nonzero, bins=edges) if nonzero.size else (np.array([]), None)
    print()
    rows = [["0 (no boundary cells)", int((rates == 0).sum())]]
    for i, c in enumerate(counts):
        rows.append([f"[{edges[i]:.3g}, {edges[i + 1]:.3g})", int(c)])
    print(
        format_table(
            ["effective cells per unit eb", "partitions"],
            rows,
            title=f"Fig. 14 reproduction (t_boundary={t_boundary:.2f}, {decomposition.n_partitions} partitions)",
        )
    )
    # Dispersion claim: some partitions carry no features at all while
    # others carry many (ratio across nonzero partitions > 10x).
    assert (rates == 0).sum() > 0 or nonzero.min() < 0.1 * nonzero.max()
    assert nonzero.size > 0
