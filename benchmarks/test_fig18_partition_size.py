"""Figure 18 — adaptive improvement vs partition size.

Paper: improvement over the traditional method grows as partitions
shrink (27.1% at partition dim 512 -> 56.0% at 64): big partitions
average out the quality-ratio differences the optimizer exploits.  We
sweep the block count at fixed grid size and report the redistribution
gain and bound spread per partition size.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import StaticBaseline
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.calibration import calibrate_rate_model
from repro.parallel.decomposition import BlockDecomposition
from repro.util.tables import format_table


def test_fig18_partition_size_sweep(snapshot, benchmark):
    field = "baryon_density"
    data = snapshot[field]
    eb_avg = 0.3

    def run():
        rows = []
        for blocks in (1, 2, 4):
            dec = BlockDecomposition(snapshot.shape, blocks=blocks)
            cal = calibrate_rate_model(
                dec.partition_views(data), eb_scale=eb_avg, max_partitions=24, seed=0
            )
            pipe = AdaptiveCompressionPipeline(cal.rate_model)
            adaptive = pipe.run(data, dec, eb_avg=eb_avg)
            static = StaticBaseline().run(data, dec, eb_avg)
            imp = 100.0 * (adaptive.overall_ratio / static.overall_ratio - 1.0)
            rows.append(
                [
                    dec.partition_shape[0],
                    dec.n_partitions,
                    static.overall_ratio,
                    adaptive.overall_ratio,
                    imp,
                    float(adaptive.ebs.max() / adaptive.ebs.min()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "partition dim",
                "partitions",
                "static ratio",
                "adaptive ratio",
                "improvement %",
                "eb spread",
            ],
            rows,
            title="Fig. 18 reproduction: redistribution gain vs partition size (eb_avg fixed)",
        )
    )
    # One partition: adaptive degenerates to static (improvement ~0).
    assert abs(rows[0][4]) < 1.0
    # Finer partitions expose more heterogeneity: the optimizer's bound
    # spread must grow monotonically with partition count (the mechanism
    # behind the paper's 27.1% -> 56.0% trend; at this reduced scale the
    # realized gain itself is small — see EXPERIMENTS.md).
    spreads = [r[5] for r in rows]
    assert all(spreads[i] < spreads[i + 1] for i in range(len(spreads) - 1))
    assert rows[-1][4] >= rows[0][4] - 1.0
