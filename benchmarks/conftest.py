"""Shared state for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4).  Grids are scaled from the paper's 512³-2048³ down to
64³-128³ (laptop scale) with the same partition structure; the claims
being reproduced are *shapes* (who wins, by what factor, where
crossovers fall), not absolute numbers — EXPERIMENTS.md records both.

The snapshot, decomposition and calibrated rate models are session-
scoped: synthesized once, reused by every bench.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.sz import SZCompressor
from repro.models.calibration import calibrate_rate_model
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator

#: Default experiment scale: 64^3 grid, 64 partitions of 16^3 (the paper
#: uses 512^3 with 512 partitions of 64^3 — same partition-count order).
SHAPE = (64, 64, 64)
BLOCKS = 4
SEED = 42
SIGMA = 2.5
REDSHIFT = 0.5

#: The paper's quality thresholds (§2.1), with the spectrum tolerance for
#: density-derived fields relaxed to 0.02 to account for the much smaller
#: box (fewer k<10 modes of relatively lower power — see EXPERIMENTS.md).
SPECTRUM_TOL = {"default": 0.01, "baryon_density": 0.02, "dark_matter_density": 0.02}
HALO_RMSE_TOL = 0.01
MIN_HALO_CELLS = 27  # "mid/large" halos per the paper's stated preference

#: §3.5-revision parameter (signal-correlated quantization error) per
#: field family, calibrated offline against the fig05 bench: lognormal
#: density/temperature fields correlate strongly; the smoother Gaussian
#: velocity fields much less.
CORRELATED_FRACTION = {
    "default": 0.5,
    "velocity_x": 0.05,
    "velocity_y": 0.05,
    "velocity_z": 0.05,
}

#: The traditional protocol's safety margin: the paper's §4.2 notes that
#: "to guarantee the unpredictable post-hoc analysis error within
#: acceptable for multiple snapshots, simulation users usually choose a
#: relatively lower error-bound ... compared to the optimized solution".
TRADITIONAL_SAFETY = 2.0


@pytest.fixture(scope="session")
def simulator() -> NyxSimulator:
    return NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=SEED, sigma_delta0=SIGMA)


@pytest.fixture(scope="session")
def snapshot(simulator):
    return simulator.snapshot(z=REDSHIFT)


@pytest.fixture(scope="session")
def decomposition(snapshot) -> BlockDecomposition:
    return BlockDecomposition(snapshot.shape, blocks=BLOCKS)


@pytest.fixture(scope="session")
def compressor() -> SZCompressor:
    return SZCompressor()


@pytest.fixture(scope="session")
def rate_models(snapshot, decomposition):
    """Calibrated rate model per field (offline step, §3.5)."""
    models = {}
    for name, data in snapshot.fields.items():
        scale = _default_eb(name, data)
        models[name] = calibrate_rate_model(
            decomposition.partition_views(data), eb_scale=scale, max_partitions=24, seed=0
        )
    return models


def _default_eb(name: str, data: np.ndarray) -> float:
    """A mid-curve probe bound per field (value-range scaled)."""
    vrange = float(np.ptp(np.asarray(data, dtype=np.float64)))
    return max(vrange * 3e-3, 1e-12)


def spectrum_tolerance(field: str) -> float:
    return SPECTRUM_TOL.get(field, SPECTRUM_TOL["default"])


def correlated_fraction(field: str) -> float:
    return CORRELATED_FRACTION.get(field, CORRELATED_FRACTION["default"])
