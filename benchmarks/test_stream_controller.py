"""Streaming-controller wall-clock: warm starts + drift-gated recalibration.

The in situ deployment processes ~200 dumps per run; what matters is the
steady-state per-snapshot cost.  This benchmark streams an 8-snapshot
Nyx redshift schedule through two controllers sharing one total-run byte
budget:

1. **drift-gated** (the subsystem under test): rate models and budget
   inversions are warm-started snapshot to snapshot and re-fit only when
   the per-field drift detector fires;
2. **full recalibration**: the naive online baseline re-fits every
   field's rate model and re-inverts its quality budget on every
   snapshot (``recalibrate="always"``).

Both produce a complete run ledger; the drift-gated run's ledger is
replayed (:func:`repro.stream.controller.replay_ledger`) and must
reproduce every per-partition bound byte-for-byte without reading any
field data.  Asserted outside smoke mode: the drift-gated path is
>= 2x faster end-to-end, cumulative compressed bytes land within 5% of
the budget, and the recalibration counts are pinned (the always-path
count exactly, the drift-path count by a ceiling).

Each run appends a record to ``BENCH_stream.json`` (repo root / CWD),
building a trajectory of measured speedups across commits.  Set
``REPRO_BENCH_SMOKE=1`` (as the CI does) for a reduced grid without
wall-clock assertions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import FIELD_NAMES, NyxSimulator
from repro.stream import InSituController, SnapshotSequence, replay_ledger
from repro.util.tables import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHAPE = (16, 16, 16) if SMOKE else (32, 32, 32)
REDSHIFTS = [4.0, 3.0, 2.2, 1.6, 1.2, 0.8, 0.5, 0.3]
N_SNAPSHOTS = 4 if SMOKE else 8
BLOCKS = 2
MAX_PARTITIONS = 8
#: Acceptance floors (asserted outside smoke mode).
MIN_SPEEDUP = 2.0
BUDGET_TOLERANCE = 0.05
#: The budget forces genuine governor action: 15% below the natural spend.
BUDGET_FRACTION = 0.85
#: Drift-gated recalibrations must stay well below the always-path count
#: for the warm-start claim to mean anything.
MAX_DRIFT_RECALS = N_SNAPSHOTS * len(FIELD_NAMES) // 4
TRAJECTORY = Path("BENCH_stream.json")


def _run_controller(dec, snaps, recalibrate, budget):
    ctl = InSituController(
        dec,
        byte_budget=budget,
        recalibrate=recalibrate,
        max_partitions=MAX_PARTITIONS,
    )
    start = time.perf_counter()
    report = ctl.run(SnapshotSequence(snaps))
    elapsed = time.perf_counter() - start
    return ctl, report, elapsed


def test_stream_controller(benchmark):
    zs = REDSHIFTS[:N_SNAPSHOTS]
    sim = NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=42, sigma_delta0=2.5)
    # Pre-generate the stream: snapshot synthesis is the simulation's
    # cost, not the controller's, so it stays outside the timers.
    snaps = [sim.snapshot(z=z) for z in zs]
    dec = BlockDecomposition(SHAPE, blocks=BLOCKS)

    # Untimed probe run: establishes the natural (ungoverned) spend the
    # byte budget is derived from, and warms every numpy/FFT path.
    _, probe_report, _ = _run_controller(dec, snaps, "drift", None)
    natural_bytes = probe_report.compressed_bytes
    budget = int(BUDGET_FRACTION * natural_bytes)

    def run():
        ctl_drift, rep_drift, t_drift = _run_controller(dec, snaps, "drift", budget)
        _, rep_full, t_full = _run_controller(dec, snaps, "always", budget)
        return {
            "t_drift_s": t_drift,
            "t_full_s": t_full,
            "ctl_drift": ctl_drift,
            "rep_drift": rep_drift,
            "rep_full": rep_full,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rep_drift, rep_full = out["rep_drift"], out["rep_full"]
    speedup = out["t_full_s"] / out["t_drift_s"]
    budget_error = abs(rep_drift.compressed_bytes - budget) / budget

    # Deterministic invariants hold in every mode, smoke included.
    # Pinned recalibration counts: the always-path refits every field of
    # every post-initial snapshot; the drift path refits only on drift.
    assert rep_full.n_recalibrations == (N_SNAPSHOTS - 1) * len(FIELD_NAMES)
    assert rep_drift.n_recalibrations <= MAX_DRIFT_RECALS
    # Ledger replay: byte-identical bounds, no field data touched.
    decisions = replay_ledger(out["ctl_drift"].ledger)
    assert len(decisions) == len(rep_drift.outcomes)
    for replayed, live in zip(decisions, rep_drift.outcomes):
        assert (
            np.asarray(replayed.ebs, dtype=np.float64).tobytes()
            == live.result.ebs.tobytes()
        )

    record = {
        "grid": list(SHAPE),
        "smoke": SMOKE,
        "n_snapshots": N_SNAPSHOTS,
        "n_fields": len(FIELD_NAMES),
        "blocks": BLOCKS,
        "natural_bytes": int(natural_bytes),
        "budget_bytes": int(budget),
        "spent_bytes": int(rep_drift.compressed_bytes),
        "budget_error": budget_error,
        "t_drift_s": out["t_drift_s"],
        "t_full_s": out["t_full_s"],
        "speedup": speedup,
        "recalibrations_drift": rep_drift.n_recalibrations,
        "recalibrations_full": rep_full.n_recalibrations,
        "replayed_decisions": len(decisions),
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    print()
    print(
        format_table(
            ["path", "time (s)", "recalibrations", "budget use"],
            [
                [
                    "drift-gated + warm start",
                    out["t_drift_s"],
                    rep_drift.n_recalibrations,
                    rep_drift.budget_utilization,
                ],
                [
                    "full recalibration",
                    out["t_full_s"],
                    rep_full.n_recalibrations,
                    rep_full.budget_utilization,
                ],
            ],
            title=(
                f"Streaming controller ({SHAPE[0]}^3, {N_SNAPSHOTS} snapshots, "
                f"budget {budget} B)" + (" [smoke]" if SMOKE else "")
            ),
        )
    )
    print(f"speedup {speedup:.2f}x, budget error {100 * budget_error:.2f}%")

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"drift-gated streaming only {speedup:.2f}x faster than "
            f"per-snapshot full recalibration"
        )
        assert budget_error <= BUDGET_TOLERANCE, (
            f"cumulative bytes missed the budget by {100 * budget_error:.1f}%"
        )
