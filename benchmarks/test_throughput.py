"""Compression/decompression throughput per codec backend.

Context for §4.3: the paper quotes 31.6 GB/s for cuSZ on a V100; our
substrate is pure NumPy on CPU, so the absolute numbers differ by
orders of magnitude — what matters for the reproduction is that the
*relative* overhead accounting (sec43 bench) is measured against this
real compression speed.  This bench records it per entropy backend.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.util.tables import format_table


def test_throughput_per_codec(snapshot, benchmark):
    data = snapshot["temperature"]
    eb = float(np.ptp(data.astype(np.float64))) * 3e-3
    nbytes = data.nbytes

    def run():
        rows = []
        for codec in ("zlib", "huffman", "raw"):
            comp = SZCompressor(codec=codec)
            t0 = time.perf_counter()
            block = comp.compress(data, eb)
            t_c = time.perf_counter() - t0
            t0 = time.perf_counter()
            decompress(block)
            t_d = time.perf_counter() - t0
            rows.append(
                [
                    codec,
                    block.ratio,
                    nbytes / t_c / 1e6,
                    nbytes / t_d / 1e6,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["codec", "ratio", "compress MB/s", "decompress MB/s"],
            rows,
            title="Throughput (pure NumPy on CPU; paper's cuSZ: ~31.6 GB/s on V100)",
        )
    )
    for row in rows:
        assert row[2] > 1.0, "compression must run at usable speed"
        assert row[3] > 1.0
