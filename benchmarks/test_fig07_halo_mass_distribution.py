"""Figure 7 — halo mass distribution is stable across error bounds.

Paper: the halo mass histogram barely moves even at high bounds; only
the small-halo end is affected, and the detected-halo count is nearly
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.halos import find_halos
from repro.compression.sz import SZCompressor, decompress
from repro.util.tables import format_table


def test_fig07_mass_function_stability(snapshot, benchmark):
    rho = snapshot["baryon_density"].astype(np.float64)
    t_boundary = float(np.percentile(rho, 99.5))
    cat0 = find_halos(rho, t_boundary)
    bins = np.logspace(
        np.log10(max(cat0.masses.min(), 1e-3)), np.log10(cat0.masses.max() * 1.01), 6
    )
    comp = SZCompressor()

    def run():
        rows = [["original", cat0.n_halos, *np.histogram(cat0.masses, bins)[0].tolist()]]
        for eb in (1e-2, 1e-1, 1e0):
            cat1 = find_halos(decompress(comp.compress(rho, eb)), t_boundary)
            rows.append([f"eb={eb:g}", cat1.n_halos, *np.histogram(cat1.masses, bins)[0].tolist()])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    headers = ["config", "n_halos"] + [f"bin{i}" for i in range(len(bins) - 1)]
    print(
        format_table(
            headers, rows, title="Fig. 7 reproduction: halo mass function across eb"
        )
    )
    n0 = rows[0][1]
    for row in rows[1:]:
        # Count change stays small even at the highest bound; the largest
        # mass bins (big halos) must be identical at small bounds.
        assert abs(row[1] - n0) <= max(3, int(0.2 * n0))
    assert rows[1][-1] == rows[0][-1], "large halos must survive small bounds"
