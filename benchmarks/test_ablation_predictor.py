"""Ablation — Lorenzo-only vs SZ2-style adaptive predictor selection.

SZ's adaptive stage (§2.2) picks per block between the Lorenzo predictor
and a fitted hyperplane.  This bench measures what the second predictor
buys on the six cosmology fields at a mid-curve bound.
"""

from __future__ import annotations

import numpy as np

from repro.compression.regression import AdaptiveSZCompressor
from repro.compression.sz import SZCompressor
from repro.sim.nyx import FIELD_NAMES
from repro.util.tables import format_table


def test_ablation_adaptive_predictor(snapshot, benchmark):
    plain = SZCompressor()
    adaptive = AdaptiveSZCompressor(block=8)

    def run():
        rows = []
        for field in FIELD_NAMES:
            data = snapshot[field]
            eb = float(np.ptp(data.astype(np.float64))) * 3e-3
            b_plain = plain.compress(data, eb)
            s_adapt = adaptive.compress(data, eb)
            recon = adaptive.decompress(s_adapt)
            max_err = float(np.max(np.abs(recon - data.astype(np.float64))))
            rows.append(
                [
                    field,
                    b_plain.ratio,
                    s_adapt.ratio,
                    100.0 * (s_adapt.ratio / b_plain.ratio - 1.0),
                    max_err <= eb * (1 + 1e-9),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["field", "Lorenzo-only ratio", "adaptive ratio", "delta %", "bound holds"],
            rows,
            title="Ablation: SZ2-style adaptive predictor vs Lorenzo-only",
        )
    )
    for row in rows:
        assert row[4], "error bound must hold for the adaptive predictor"
        # Global Lorenzo is strong on these fields; the per-block scheme
        # must stay within a reasonable band and win where slopes dominate.
        assert row[3] > -35.0