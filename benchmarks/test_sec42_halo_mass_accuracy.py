"""§4.2 — halo-mass accuracy: adaptive vs traditional at equal budget.

Paper: the halo-aware optimization provides 29.8% higher halo-mass
accuracy than the traditional method (at comparable rate), because
feature-dense partitions receive tighter bounds.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import MIN_HALO_CELLS
from repro.analysis.catalog import compare_catalogs
from repro.analysis.halos import find_halos
from repro.core.baselines import StaticBaseline
from repro.core.config import HaloQualitySpec
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.halo_error import FAULT_PROBABILITY, effective_cell_rate
from repro.util.tables import format_table


def test_sec42_halo_mass_accuracy(snapshot, decomposition, rate_models, benchmark):
    field = "baryon_density"
    data = snapshot[field].astype(np.float64)
    tb = float(np.percentile(data, 99.5))
    cat0 = find_halos(data, tb)
    eb_static = 0.5
    # Budget the halo-aware optimizer to exactly the *predicted* damage of
    # the static configuration, so rate is comparable by construction.
    rates = np.array(
        [
            effective_cell_rate(v, tb, reference_eb=min(1.0, eb_static))
            for v in decomposition.partition_views(data)
        ]
    )
    budget = tb * FAULT_PROBABILITY * float(np.sum(rates * eb_static))
    halo = HaloQualitySpec(t_boundary=tb, mass_budget=budget, reference_eb=min(1.0, eb_static))
    pipe = AdaptiveCompressionPipeline(rate_models[field].rate_model)

    def run():
        adaptive = pipe.run(snapshot[field], decomposition, eb_avg=eb_static, halo=halo)
        static = StaticBaseline().run(snapshot[field], decomposition, eb_static)
        out = {}
        for name, result in (("adaptive", adaptive), ("static", static)):
            recon = result.reconstruct(decomposition)
            cmp = compare_catalogs(cat0, find_halos(recon, tb))
            out[name] = (
                result.overall_ratio,
                cmp.mass_rmse_above(tb * MIN_HALO_CELLS),
                cmp.mass_rmse,
                cmp.count_change,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["method", "ratio", "mass RMSE (mid/large)", "mass RMSE (all)", "count change"],
            [[k, *v] for k, v in out.items()],
            title=f"§4.2 reproduction: halo-mass accuracy at matched budget (t_boundary={tb:.2f})",
        )
    )
    rmse_a = out["adaptive"][2]
    rmse_s = out["static"][2]
    if np.isfinite(rmse_a) and np.isfinite(rmse_s) and rmse_s > 0:
        gain = 100.0 * (1.0 - rmse_a / rmse_s)
        print(f"halo-mass accuracy gain: {gain:.1f}%  (paper: 29.8%)")
        # The adaptive method must not be less accurate at matched budget.
        assert rmse_a <= rmse_s * 1.25
