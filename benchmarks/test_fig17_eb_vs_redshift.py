"""Figure 17 — optimized error-bound maps, early vs late redshift.

Paper: early (smooth) snapshots yield near-uniform optimized bounds;
late snapshots, with stronger partition contrast, yield strongly
heterogeneous maps — the reason static-adaptive configurations decay
(Fig. 16).
"""

from __future__ import annotations

import numpy as np

from repro.core.features import extract_features
from repro.core.optimizer import optimize_for_spectrum
from repro.util.tables import format_table


def test_fig17_eb_maps_early_vs_late(simulator, decomposition, rate_models, benchmark):
    field = "baryon_density"
    cal = rate_models[field]
    eb_avg = 0.3

    def bounds_at(z: float) -> np.ndarray:
        snap = simulator.snapshot(z=z)
        feats = [
            extract_features(v, rank=i)
            for i, v in enumerate(decomposition.partition_views(snap[field]))
        ]
        return optimize_for_spectrum(feats, cal.rate_model, eb_avg).ebs

    def run():
        return bounds_at(4.0), bounds_at(0.2)

    early, late = benchmark.pedantic(run, rounds=1, iterations=1)

    def stats(ebs):
        return [float(ebs.min()), float(ebs.max()), float(ebs.max() / ebs.min()), float(ebs.std() / ebs.mean())]

    print()
    print(
        format_table(
            ["snapshot", "eb min", "eb max", "spread", "cv"],
            [["early (z=4.0)", *stats(early)], ["late (z=0.2)", *stats(late)]],
            title="Fig. 17 reproduction: optimized bound maps early vs late",
        )
    )
    # Late-time bounds must be more heterogeneous than early-time bounds.
    assert late.std() / late.mean() > early.std() / early.mean()
    assert late.max() / late.min() > early.max() / early.min()
    # And the maps must genuinely differ (static reuse is suboptimal).
    assert not np.allclose(early, late, rtol=0.05)
