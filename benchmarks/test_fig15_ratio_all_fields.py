"""Figure 15 — compression-ratio comparison on all six Nyx fields.

Paper: at matched post-hoc quality, the adaptive method beats the
traditional static configuration on every field — 56% on average, up to
73% — with density fields gaining from both effects (redistribution +
exact budget) and velocity gaining mainly from the accurate error-bound
estimation.
"""

from __future__ import annotations

import numpy as np

from benchmarks._protocols import evaluate, model_budget, run_our_method, run_traditional
from repro.sim.nyx import FIELD_NAMES
from repro.util.tables import format_table


def test_fig15_all_fields(snapshot, decomposition, rate_models, benchmark):
    def run():
        rows = []
        improvements = {}
        for field in FIELD_NAMES:
            data = snapshot[field]
            ours, eb_model = run_our_method(
                field, data, decomposition, rate_models[field].rate_model
            )
            trad, trials = run_traditional(field, data, decomposition)
            o = evaluate(field, data, decomposition, ours)
            t = evaluate(field, data, decomposition, trad)
            imp = 100.0 * (o.ratio / t.ratio - 1.0)
            improvements[field] = imp
            rows.append(
                [
                    field,
                    t.eb,
                    t.ratio,
                    o.eb,
                    o.ratio,
                    imp,
                    o.worst_spectrum_dev,
                    trials,
                ]
            )
        return rows, improvements

    rows, improvements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "field",
                "trad eb",
                "trad ratio",
                "our mean eb",
                "our ratio",
                "improvement %",
                "our spec dev",
                "trad trials",
            ],
            rows,
            title="Fig. 15 reproduction: ratio at matched post-hoc quality",
        )
    )
    imps = np.array(list(improvements.values()))
    print(f"average improvement: {imps.mean():.1f}%  (paper: 56.0% avg, 73% max)")
    # Shape claims: the average improvement is solidly positive and no
    # field loses badly (small-box noise allows slight per-field dips).
    assert (imps > -25.0).all(), "no field may lose materially"
    assert imps.mean() > 3.0, "average improvement must be positive and material"
    assert imps.max() < 250.0, "gains should stay in a plausible band"
