"""Ablation — dual (cuSZ) vs classic (CPU-SZ) quantization ordering.

DESIGN.md §5: both orderings must satisfy the bound and produce the
uniform error distribution (§3.2 claims they coincide); the dual engine
is the vectorized default.
"""

from __future__ import annotations

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.util.tables import format_table


def test_ablation_quantization_order(snapshot, benchmark):
    data = snapshot["temperature"].astype(np.float64)[:16, :16, :16]
    eb = 10.0

    def run():
        rows = []
        for engine in ("dual", "classic"):
            comp = SZCompressor(engine=engine)
            block = comp.compress(data, eb)
            recon = decompress(block)
            err = (recon - data) / eb
            rows.append(
                [
                    engine,
                    block.ratio,
                    float(np.abs(recon - data).max()),
                    float(err.mean()),
                    float(err.std()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["engine", "ratio", "max err", "err mean/eb", "err std/eb"],
            rows,
            title="Ablation: quantization ordering (uniform std = 0.577)",
        )
    )
    for row in rows:
        assert row[2] <= eb + 1e-9
        assert abs(row[4] - 0.577) < 0.12, "both engines give uniform-like error"
