"""§4.3 — in situ overhead of the adaptive machinery.

Paper: per-partition mean extraction costs ~1-1.5% of compression time
on CPUs; effective-cell counting adds up to 5% (density field only); the
optimization itself is negligible.  We measure the same ratios.
"""

from __future__ import annotations

import numpy as np

from repro.core.overhead import measure_overhead
from repro.util.tables import format_table


def test_sec43_overhead(snapshot, decomposition, benchmark):
    data = snapshot["baryon_density"]
    tb = float(np.percentile(data.astype(np.float64), 99.0))

    def run():
        return measure_overhead(
            data, decomposition, eb=0.3, t_boundary=tb, repeats=3
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["phase", "seconds", "% of compression"],
            [
                ["mean extraction", report.feature_time, 100 * report.feature_overhead],
                ["boundary-cell count", report.boundary_time, 100 * report.boundary_overhead],
                ["optimization", report.optimize_time, 100 * report.optimize_time / report.compress_time],
                ["compression", report.compress_time, 100.0],
                ["total overhead", report.feature_time + report.boundary_time + report.optimize_time, 100 * report.total_overhead],
            ],
            title="§4.3 reproduction: in situ overhead (paper: ~1% mean, <=5% boundary)",
        )
    )
    # NumPy-vectorized features on laptop-scale data: the claim is that
    # overhead stays a small fraction of compression time.
    assert report.feature_overhead < 0.15
    assert report.total_overhead < 0.35
