"""Validation + speedup of the closed-form ratio-quality (R-Q) engine.

Three claims, all on the session Nyx snapshot (64^3, every field):

1. **Prediction accuracy** — one codec-free quantization probe predicts
   each field's PSNR within ~1 dB and its ratio within ~10% of the real
   compress -> decompress measurement at the field's mid-curve bound.
2. **Selection parity at >= 10x fewer compressor invocations** —
   ``select_compressor(probe_mode="model")`` reaches the same chosen
   spec and per-candidate eligibility as exact mode on every field,
   while the counted ``compress`` calls drop by >= 10x (calibration and
   quality gating both run on the batched quantization probe; only the
   fixed-rate candidate's measured sample remains).
3. **Sweep fast path** — a quality sweep under ``probe_mode="model"``
   returns the same per-(field, eb) verdicts as the exact sweep and is
   wall-clock faster (the >= 10x floor is asserted outside smoke mode).

Both parity checks are deterministic, so they assert in smoke mode too;
only the wall-clock floor is gated on ``REPRO_BENCH_SMOKE`` (shared CI
runners make one-off timing ratios flaky).  Each run appends a record to
``BENCH_rq.json``, building a trajectory of predicted-vs-measured deltas
and speedups across commits.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import _default_eb, correlated_fraction, spectrum_tolerance
from repro.analysis.metrics import error_summary
from repro.compression.sz import SZCompressor
from repro.compression.zfp_like import ZFPLikeCompressor
from repro.core.config import FieldSpec
from repro.core.selection import select_compressor
from repro.foresight.quality import QualityCriteria
from repro.foresight.sweep import run_sweep
from repro.util.tables import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_EBS = 3 if SMOKE else 6
ROUNDS = 1 if SMOKE else 3
#: Acceptance tolerances for claim 1 (the ISSUE's validation targets).
MAX_PSNR_DELTA_DB = 1.0
MAX_RATIO_REL_ERR = 0.10
#: Floors for claims 2 (deterministic, always asserted) and 3
#: (wall-clock, asserted outside smoke mode).  The >= 10x acceptance
#: criterion is the invocation count; the wall-clock *target* is also
#: 10x (measured ~10x cold; ~4.5x once claims 1-2 have warmed every
#: cache in-process — the trajectory records the actual figure), so the
#: asserted floor only guards against the fast path regressing outright.
MIN_INVOCATION_REDUCTION = 10.0
MIN_SWEEP_SPEEDUP = 3.0
TRAJECTORY = Path("BENCH_rq.json")


def _best_of(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


class _CompressCounter:
    """Count every ``compress`` call on the candidate compressor classes."""

    CLASSES = (SZCompressor, ZFPLikeCompressor)

    def __init__(self, monkeypatch) -> None:
        self.calls = 0
        for cls in self.CLASSES:
            original = cls.compress

            def counted(comp, *args, _original=original, **kwargs):
                self.calls += 1
                return _original(comp, *args, **kwargs)

            monkeypatch.setattr(cls, "compress", counted)


def test_rq_model(benchmark, snapshot, decomposition, monkeypatch):
    # -- claim 1: predicted vs measured PSNR/ratio, every field -------------
    comp = SZCompressor()
    accuracy_rows = []
    accuracy = {}
    for name, data in snapshot.fields.items():
        eb = _default_eb(name, data)
        est = comp.estimate(data, eb)
        block = comp.compress(data, eb)
        measured = error_summary(data, comp.decompress(block))
        psnr_delta = est.predicted_psnr_db - measured.psnr_db
        ratio_rel = est.ratio / block.ratio - 1.0
        accuracy[name] = {
            "eb": eb,
            "predicted_psnr_db": est.predicted_psnr_db,
            "measured_psnr_db": measured.psnr_db,
            "psnr_delta_db": psnr_delta,
            "predicted_ratio": est.ratio,
            "measured_ratio": block.ratio,
            "ratio_rel_err": ratio_rel,
        }
        accuracy_rows.append(
            [name, est.predicted_psnr_db, measured.psnr_db, psnr_delta,
             est.ratio, block.ratio, ratio_rel]
        )
        assert abs(psnr_delta) <= MAX_PSNR_DELTA_DB, (
            f"{name}: predicted PSNR off by {psnr_delta:+.2f} dB"
        )
        assert abs(ratio_rel) <= MAX_RATIO_REL_ERR, (
            f"{name}: predicted ratio off by {ratio_rel:+.1%}"
        )

    # -- claim 2: selection parity + invocation reduction, every field ------
    def select_all(mode: str):
        results = {}
        for name, data in snapshot.fields.items():
            spec = FieldSpec(
                spectrum_tolerance=spectrum_tolerance(name),
                correlated_fraction=correlated_fraction(name),
            )
            # No eb_avg: both modes derive the admissible bound from the
            # field spec's budget inversion, so the model-mode quality
            # gate judges candidates at a bound the spectrum model deems
            # acceptable — the production decision being reproduced.
            results[name] = select_compressor(
                data,
                decomposition,
                field_spec=spec,
                field=name,
                probe_mode=mode,
            )
        return results

    with monkeypatch.context() as mp:
        counter = _CompressCounter(mp)
        exact_sel = select_all("exact")
        exact_calls = counter.calls
    with monkeypatch.context() as mp:
        counter = _CompressCounter(mp)
        model_sel = select_all("model")
        model_calls = counter.calls

    selection = {}
    for name in snapshot.fields:
        ex, mo = exact_sel[name], model_sel[name]
        assert str(mo.chosen) == str(ex.chosen), (
            f"{name}: model mode chose {mo.chosen}, exact chose {ex.chosen}"
        )
        assert [(str(v.spec), v.eligible) for v in mo.verdicts] == [
            (str(v.spec), v.eligible) for v in ex.verdicts
        ], f"{name}: candidate eligibility differs between modes"
        selection[name] = {
            "chosen": str(ex.chosen),
            "eligibility": [(str(v.spec), v.eligible) for v in ex.verdicts],
        }
    invocation_reduction = exact_calls / max(model_calls, 1)
    assert invocation_reduction >= MIN_INVOCATION_REDUCTION, (
        f"model-mode selection only cut compressor invocations by "
        f"{invocation_reduction:.1f}x ({exact_calls} -> {model_calls})"
    )

    # -- claim 3: sweep verdict parity + wall-clock fast path ---------------
    fields = dict(snapshot.fields)
    crit = {
        name: QualityCriteria(
            spectrum_tolerance=spectrum_tolerance(name), spectrum_k_max=10
        )
        for name in fields
    }
    max_eb = max(_default_eb(name, data) for name, data in fields.items())
    ebs = np.geomspace(max_eb / 30.0, max_eb, N_EBS)

    def exact_sweep():
        return run_sweep(fields, ebs, crit, decomposition=decomposition)

    def model_sweep():
        return run_sweep(
            fields, ebs, crit, decomposition=decomposition, probe_mode="model"
        )

    def run():
        return {
            "sweep_exact_s": _best_of(exact_sweep),
            "sweep_model_s": _best_of(model_sweep),
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    sweep_speedup = t["sweep_exact_s"] / t["sweep_model_s"]

    exact_records = exact_sweep()
    model_records = model_sweep()
    assert [r.passed for r in model_records] == [r.passed for r in exact_records], (
        "model-mode sweep verdicts differ from exact mode"
    )
    for re_, rm in zip(exact_records, model_records):
        assert abs(rm.quality.psnr_db - re_.quality.psnr_db) <= MAX_PSNR_DELTA_DB
        assert abs(rm.ratio / re_.ratio - 1.0) <= MAX_RATIO_REL_ERR

    record = {
        "smoke": SMOKE,
        "n_ebs": int(N_EBS),
        "accuracy": accuracy,
        "selection": selection,
        "compress_calls": {"exact": exact_calls, "model": model_calls},
        "invocation_reduction": invocation_reduction,
        "timings_s": t,
        "sweep_speedup": sweep_speedup,
        "max_abs_psnr_delta_db": max(
            abs(a["psnr_delta_db"]) for a in accuracy.values()
        ),
        "max_abs_ratio_rel_err": max(
            abs(a["ratio_rel_err"]) for a in accuracy.values()
        ),
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    print()
    print(
        format_table(
            ["field", "pred PSNR", "meas PSNR", "delta dB",
             "pred ratio", "meas ratio", "rel err"],
            accuracy_rows,
            title="R-Q prediction vs measurement (one probe, no codec)"
            + (" [smoke]" if SMOKE else ""),
        )
    )
    print(
        format_table(
            ["stage", "exact", "model", "factor"],
            [
                ["selection compress calls", exact_calls, model_calls,
                 invocation_reduction],
                [f"quality sweep s ({N_EBS} ebs)", t["sweep_exact_s"],
                 t["sweep_model_s"], sweep_speedup],
            ],
            title="Ratio-quality fast path",
        )
    )

    if not SMOKE:
        assert sweep_speedup >= MIN_SWEEP_SPEEDUP, (
            f"model-mode sweep only {sweep_speedup:.1f}x faster than exact"
        )
