"""Figure 16 — compression ratio across redshifts, three configurations.

Paper: (a) per-snapshot adaptive optimization wins consistently; (b) a
*static-adaptive* configuration (bounds optimized once on the earliest
snapshot and reused) loses ratio as the simulation evolves; (c) the
traditional single bound trails both.  The adaptive advantage grows as
redshift drops (sparser formation, more partition contrast).
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import StaticBaseline
from repro.core.features import extract_features
from repro.core.optimizer import optimize_for_spectrum
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.util.tables import format_table

REDSHIFTS = [3.0, 2.0, 1.0, 0.5, 0.2]


def test_fig16_redshift_sweep(simulator, decomposition, rate_models, benchmark):
    field = "baryon_density"
    cal = rate_models[field]
    pipe = AdaptiveCompressionPipeline(cal.rate_model)
    eb_avg = 0.3  # fixed quality budget across snapshots

    def run():
        # Static-adaptive bounds frozen at the earliest snapshot.
        early = simulator.snapshot(z=REDSHIFTS[0])
        early_feats = [
            extract_features(v, rank=i)
            for i, v in enumerate(decomposition.partition_views(early[field]))
        ]
        frozen_ebs = optimize_for_spectrum(early_feats, cal.rate_model, eb_avg).ebs

        rows = []
        for z in REDSHIFTS:
            snap = simulator.snapshot(z=z)
            data = snap[field]
            adaptive = pipe.run(data, decomposition, eb_avg=eb_avg)
            frozen_blocks = [
                pipe.compressor.compress(v, float(eb))
                for v, eb in zip(decomposition.partition_views(data), frozen_ebs)
            ]
            frozen_bytes = sum(b.nbytes for b in frozen_blocks)
            n = data.size
            frozen_ratio = 4.0 * n / frozen_bytes
            trad = StaticBaseline().run(data, decomposition, eb_avg)
            rows.append(
                [
                    z,
                    adaptive.overall_ratio,
                    frozen_ratio,
                    trad.overall_ratio,
                    frozen_ratio / adaptive.overall_ratio,
                    trad.overall_ratio / adaptive.overall_ratio,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "redshift",
                "adaptive ratio",
                "static-adaptive",
                "traditional",
                "static/adaptive",
                "trad/adaptive",
            ],
            rows,
            title="Fig. 16 reproduction: per-snapshot vs frozen configurations (eb_avg=0.3)",
        )
    )
    for row in rows:
        # Per-snapshot adaptive never loses to the frozen configuration.
        assert row[1] >= row[2] * 0.99
        assert row[1] >= row[3] * 0.99
    # At the snapshot where the frozen bounds were fit, the two coincide.
    assert rows[0][4] > 0.999
