"""Hot-path wall-clock: fused kernels and codec-free calibration.

Measures the two performance claims of the zero-copy/estimator layer:

1. the fused compress kernel (workspace-backed quantize -> in-place
   Lorenzo -> residual encode) against a frozen copy of the seed
   implementation (per-call temporaries, ``np.diff`` chain, allocating
   residual encode), kernel-only and end-to-end;
2. ``calibrate_rate_model(probe_mode="estimate")`` against
   ``probe_mode="exact"`` on the benchmark grid at two partition sizes
   (32^3 — the closest laptop-scale stand-in for the paper's 64^3
   partitions — and 16^3), asserting the >= 3x speedup on the 32^3
   grid and that the two fits predict bit rates within 10% of each
   other.

Each run appends a record to ``BENCH_hotpath.json`` (repo root / CWD),
building a trajectory of measured speedups across commits.  Set
``REPRO_BENCH_SMOKE=1`` (as the CI does) for a reduced grid.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.compression.codecs import get_codec
from repro.compression.kernels import available_kernels
from repro.compression.quantizer import DEFAULT_RADIUS
from repro.compression.sz import SZCompressor, _zigzag
from repro.models.calibration import calibrate_rate_model
from repro.telemetry.report import stage_summary
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator
from repro.util.tables import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHAPE = (32, 32, 32) if SMOKE else (64, 64, 64)
#: Field sizes for the batched compress_many comparison; each is cut
#: into 32^3 blocks (the paper-scale partition the batch path targets).
BATCH_GRIDS = ((32, 32, 32),) if SMOKE else ((64, 64, 64), (128, 128, 128))
#: Wall-clock floors for the batched path, asserted only on real
#: multi-core hardware (see the gate in test_batched_compress): the
#: prange numba backend must win >= 5x end-to-end, the pure-NumPy
#: batch >= 1.2x, both vs. a Python loop of single-block compresses.
MIN_NUMBA_BATCH_SPEEDUP = 5.0
MIN_NUMPY_BATCH_SPEEDUP = 1.2
#: Partition counts per axis for the calibration comparison; the first
#: entry is the primary grid the >= 3x acceptance is asserted on.
CALIBRATION_BLOCKS = (2,) if SMOKE else (2, 4)
ROUNDS = 3
#: The speedup floor on the paper-realistic partitions.  Wall-clock
#: assertions are skipped entirely in smoke mode: single-core shared CI
#: runners make one-off timing ratios flaky, and the smoke run's job is
#: to exercise the path and upload the trajectory, not to gate on it.
MIN_CALIBRATION_SPEEDUP = 3.0
TRAJECTORY = Path("BENCH_hotpath.json")


# -- frozen seed implementation (pre-workspace), the comparison baseline ----


def _seed_kernel(arr: np.ndarray, eb: float, radius: int = DEFAULT_RADIUS):
    """Quantize -> Lorenzo -> residual encode exactly as the seed did:
    float64 upcast copy, fresh rint/divide temporaries, per-axis
    ``np.diff`` outputs, ``np.where`` + ``astype`` residual encode."""
    work = np.asarray(arr, dtype=np.float64)
    if not np.isfinite(work).all():
        raise ValueError("non-finite")
    with np.errstate(over="ignore"):
        q = np.rint(work / (2.0 * eb))
    q = q.astype(np.int64)
    out = q
    for axis in range(out.ndim):
        shape = list(out.shape)
        shape[axis] = 1
        out = np.diff(out, axis=axis, prepend=np.zeros(shape, dtype=out.dtype))
    res = out.ravel().astype(np.int64)
    codes = res + radius
    fits = (codes >= 1) & (codes <= 2 * radius - 1)
    out_pos = np.flatnonzero(~fits)
    out_val = res[out_pos].copy()
    codes = np.where(fits, codes, 0).astype(np.int64)
    return codes, out_pos, out_val


def _seed_compress(arr: np.ndarray, eb: float, codec) -> dict[str, bytes]:
    codes, out_pos, out_val = _seed_kernel(arr, eb)
    return {
        "codes": codec.encode(codes),
        "outlier_pos": zlib.compress(out_pos.astype(np.int64).tobytes(), 6),
        "outlier_val": zlib.compress(_zigzag(out_val).tobytes(), 6),
    }


def _best_of(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_hotpath(benchmark):
    sim = NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=42, sigma_delta0=2.5)
    snap = sim.snapshot(z=0.5)
    data = snap["temperature"]
    eb = float(np.ptp(data.astype(np.float64))) * 3e-3
    comp = SZCompressor()
    codec = get_codec("zlib")
    comp.compress(data, eb)  # warm the workspace / caches

    def run():
        ws = comp.workspace
        t = {
            "kernel_seed_s": _best_of(lambda: _seed_kernel(data, eb)),
            "kernel_fused_s": _best_of(lambda: comp._quantize_encode(data, eb, ws)),
            "compress_seed_s": _best_of(lambda: _seed_compress(data, eb, codec)),
            "compress_fused_s": _best_of(lambda: comp.compress(data, eb)),
        }
        for blocks in CALIBRATION_BLOCKS:
            views = BlockDecomposition(data.shape, blocks=blocks).partition_views(data)
            for mode in ("exact", "estimate"):
                t[f"calibration_{mode}_b{blocks}_s"] = _best_of(
                    lambda m=mode, v=views: calibrate_rate_model(
                        v, eb_scale=eb, max_partitions=24, seed=0, probe_mode=m
                    )
                )
        return t

    t = benchmark.pedantic(run, rounds=1, iterations=1)

    # Fit agreement: estimate-mode calibration must predict the same
    # bit rates as exact-mode to within 10% across the probe range.
    primary = CALIBRATION_BLOCKS[0]
    views = BlockDecomposition(data.shape, blocks=primary).partition_views(data)
    fit_exact = calibrate_rate_model(
        views, eb_scale=eb, max_partitions=24, seed=0, probe_mode="exact"
    )
    fit_est = calibrate_rate_model(
        views, eb_scale=eb, max_partitions=24, seed=0, probe_mode="estimate"
    )
    means = np.array([float(np.mean(np.abs(v))) for v in views])
    fit_dev = max(
        float(
            np.max(
                np.abs(
                    fit_est.rate_model.predict_bitrate(means, f * eb)
                    / fit_exact.rate_model.predict_bitrate(means, f * eb)
                    - 1.0
                )
            )
        )
        for f in (0.25, 1.0, 4.0)
    )

    kernel_speedup = t["kernel_seed_s"] / t["kernel_fused_s"]
    compress_speedup = t["compress_seed_s"] / t["compress_fused_s"]
    calibration_speedups = {
        blocks: t[f"calibration_exact_b{blocks}_s"] / t[f"calibration_estimate_b{blocks}_s"]
        for blocks in CALIBRATION_BLOCKS
    }
    primary_speedup = calibration_speedups[primary]

    record = {
        "grid": list(SHAPE),
        "smoke": SMOKE,
        "timings_s": t,
        "kernel_speedup": kernel_speedup,
        "compress_speedup": compress_speedup,
        "calibration_speedups": {
            f"{SHAPE[0] // b}^3_partitions": s for b, s in calibration_speedups.items()
        },
        "calibration_fit_max_rel_dev": fit_dev,
        "fit_exact": {
            "c": fit_exact.shared_exponent,
            "alpha": fit_exact.rate_model.coef_alpha,
            "beta": fit_exact.rate_model.coef_beta,
        },
        "fit_estimate": {
            "c": fit_est.shared_exponent,
            "alpha": fit_est.rate_model.coef_alpha,
            "beta": fit_est.rate_model.coef_beta,
        },
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    rows = [
        ["compress kernel", t["kernel_seed_s"], t["kernel_fused_s"], kernel_speedup],
        ["compress end-to-end", t["compress_seed_s"], t["compress_fused_s"], compress_speedup],
    ]
    for blocks in CALIBRATION_BLOCKS:
        rows.append(
            [
                f"calibration ({SHAPE[0] // blocks}^3 parts)",
                t[f"calibration_exact_b{blocks}_s"],
                t[f"calibration_estimate_b{blocks}_s"],
                calibration_speedups[blocks],
            ]
        )
    print()
    print(
        format_table(
            ["stage", "seed/exact (s)", "fused/estimate (s)", "speedup"],
            rows,
            title=f"Hot path ({SHAPE[0]}^3 field)" + (" [smoke]" if SMOKE else ""),
        )
    )

    assert fit_dev < 0.10, f"estimate-mode fit deviates {fit_dev:.1%} from exact"
    if not SMOKE:
        assert primary_speedup >= MIN_CALIBRATION_SPEEDUP, (
            f"estimate-mode calibration only {primary_speedup:.2f}x faster"
        )
        # The kernel fusion must not regress; the recorded speedup is
        # the trajectory metric (codec time dominates end-to-end, so the
        # end-to-end ratio is close to 1 by construction).
        assert kernel_speedup > 1.0, (
            f"fused kernel slower than seed ({kernel_speedup:.2f}x)"
        )
        assert compress_speedup > 0.9, "fused end-to-end compress regressed"


# -- batched block-parallel compression (PR 8) -------------------------------

_STAGES = ("map", "quantize", "lorenzo", "residual", "entropy", "side_channels")


def _stage_times(comp: SZCompressor, views, eb: float) -> dict[str, float]:
    """Best-of-ROUNDS per-stage breakdown of one batched compress pass.

    Runs the *real* ``compress_many`` under an armed tracer and reads
    the ``sz.*`` stage spans the batched path emits (eb-space mapping,
    batched quantize, batched Lorenzo, batched residual encode, the
    outlier side channels, and per-block entropy coding).  Measuring
    the production spans instead of a hand-rolled re-implementation
    means the breakdown cannot drift from the pipeline it describes;
    the span overhead itself is bounded by
    ``benchmarks/test_telemetry_overhead.py``.
    """
    ebs = [eb] * len(views)
    best = dict.fromkeys(_STAGES, float("inf"))
    for _ in range(ROUNDS):
        with telemetry.armed(track="bench") as tracer:
            comp.compress_many(views, ebs)
            stages = stage_summary(tracer.export_spans())
        for stage in _STAGES:
            seconds = float(stages.get(stage, {}).get("seconds", 0.0))
            best[stage] = min(best[stage], seconds)
    return best


def test_batched_compress(benchmark):
    """Loop-of-compress vs. batched compress_many per kernel backend.

    Byte-identity between the two paths is asserted unconditionally;
    the wall-clock floors only on real multi-core hardware (single-core
    runners can't show a parallel win and shared CI timing is flaky).
    """
    cores = os.cpu_count() or 1
    backends = list(available_kernels())
    grids = {}
    table_rows = []
    for grid in BATCH_GRIDS:
        sim = NyxSimulator(
            shape=grid, box_size=float(grid[0]), seed=42, sigma_delta0=2.5
        )
        data = sim.snapshot(z=0.5)["temperature"]
        eb = float(np.ptp(data.astype(np.float64))) * 3e-3
        views = BlockDecomposition(data.shape, blocks=grid[0] // 32).partition_views(
            data
        )
        ebs = [eb] * len(views)
        grid_record = {"n_blocks": len(views), "block": 32, "backends": {}}
        for backend in backends:
            comp = SZCompressor(kernels=backend)
            comp.compress_many(views[:2], ebs[:2])  # warm workspace + JIT
            batched = comp.compress_many(views, ebs)
            singles = [comp.compress(v, eb) for v in views]
            assert [b.payloads for b in batched] == [s.payloads for s in singles]

            def run_loop(c=comp, v=views, e=eb):
                return [c.compress(x, e) for x in v]

            t_loop = _best_of(run_loop)
            t_batch = _best_of(lambda c=comp, v=views, e=ebs: c.compress_many(v, e))
            speedup = t_loop / t_batch
            grid_record["backends"][backend] = {
                "loop_s": t_loop,
                "batch_s": t_batch,
                "speedup": speedup,
                "stages_s": _stage_times(comp, views, eb),
            }
            table_rows.append(
                [f"{grid[0]}^3 / {backend}", t_loop, t_batch, speedup]
            )
        grids[f"{grid[0]}^3"] = grid_record
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    record = {
        "kind": "batched_compress",
        "smoke": SMOKE,
        "cpu_count": cores,
        "numba_available": "numba" in backends,
        "grids": grids,
    }
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    print()
    print(
        format_table(
            ["grid / kernels", "loop (s)", "compress_many (s)", "speedup"],
            table_rows,
            title=f"Batched compress ({cores} core(s))"
            + (" [smoke]" if SMOKE else ""),
        )
    )
    largest = grids[f"{BATCH_GRIDS[-1][0]}^3"]["backends"]
    for backend, stats in largest.items():
        stages = stats["stages_s"]
        total = sum(stages.values())
        breakdown = ", ".join(
            f"{s}={stages[s] * 1e3:.1f}ms" for s in _STAGES
        )
        print(f"stages[{backend}] ({total * 1e3:.1f}ms total): {breakdown}")

    if not SMOKE and cores >= 4:
        if "numba" in largest:
            assert largest["numba"]["speedup"] >= MIN_NUMBA_BATCH_SPEEDUP, (
                f"numba batch only {largest['numba']['speedup']:.2f}x"
            )
        assert largest["numpy"]["speedup"] >= MIN_NUMPY_BATCH_SPEEDUP, (
            f"numpy batch only {largest['numpy']['speedup']:.2f}x"
        )
