"""Lightweight wall-clock timing used for overhead accounting.

The paper's §4.3 claims the adaptive machinery adds ~1% overhead relative
to compression itself (mean extraction 1-1.5%, effective-cell counting up
to 5%).  :class:`TimingBreakdown` accumulates named phases so the in situ
pipeline can report exactly that ratio.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["Timer", "TimingBreakdown", "monotonic"]


def monotonic() -> float:
    """The repo's one true monotonic clock (seconds, arbitrary epoch).

    Every timing consumer — :class:`Timer`, :class:`TimingBreakdown`,
    ``repro.telemetry`` spans — reads wall time through this function so
    lint rule RL005 (wall-clock calls confined to ``util.timer``) stays
    authoritative over the whole stack.
    """
    return time.perf_counter()


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is not reentrant: __enter__ called while running")
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:
            raise RuntimeError("Timer.__exit__ called without a matching __enter__")
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class TimingBreakdown:
    """Accumulate wall-clock time per named phase.

    Phases can be entered repeatedly; durations add up.  ``fraction`` and
    ``overhead_ratio`` provide the two summaries the experiments print.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] += time.perf_counter() - start
            self.counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against ``name`` without timing anything."""
        if seconds < 0:
            raise ValueError(f"cannot record negative duration {seconds!r}")
        self.totals[name] += seconds
        self.counts[name] += 1

    @property
    def total(self) -> float:
        # fsum: exactly rounded, so the total is independent of the
        # order ranks/phases merged in — sum() would drift by an ulp.
        return math.fsum(self.totals.values())

    def fraction(self, name: str) -> float:
        """Share of total time spent in ``name`` (0 if nothing recorded)."""
        total = self.total
        return self.totals.get(name, 0.0) / total if total > 0 else 0.0

    def overhead_ratio(self, overhead_phase: str, base_phase: str) -> float:
        """Time in ``overhead_phase`` relative to ``base_phase``.

        This is the paper's headline metric: feature-extraction time as a
        percentage of compression time.
        """
        base = self.totals.get(base_phase, 0.0)
        if base <= 0:
            raise ValueError(f"no time recorded for base phase {base_phase!r}")
        return self.totals.get(overhead_phase, 0.0) / base

    def merge(self, other: "TimingBreakdown") -> None:
        """Fold another breakdown (e.g. from a different rank) into this one."""
        for name, seconds in other.totals.items():
            self.totals[name] += seconds
        for name, count in other.counts.items():
            self.counts[name] += count

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)

    def phase_stats(self) -> dict[str, dict[str, float | int]]:
        """Counts-preserving export: ``{phase: {"seconds", "count"}}``.

        ``as_dict()`` keeps its historical seconds-only shape for existing
        consumers; reports that also want the number of times each phase
        ran (per-snapshot call counts, amortized cost) use this one.
        """
        return {
            name: {"seconds": self.totals[name], "count": self.counts.get(name, 0)}
            for name in self.totals
        }
