"""Argument validation helpers shared across the library.

These raise early, with messages naming the offending argument, so that
misconfiguration surfaces at the public API boundary instead of deep in a
vectorized kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_3d", "check_finite", "check_positive", "check_probability"]


def check_3d(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Require a 3-D float array; return it as contiguous float64 view/copy."""
    arr = np.asarray(data)
    if arr.ndim != 3:
        raise ValueError(f"{name} must be a 3-D array, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return np.ascontiguousarray(arr, dtype=np.float64)


def check_finite(data: np.ndarray, name: str = "data") -> None:
    """Reject NaN/Inf — the compressor's error-bound contract assumes finite input."""
    if not np.isfinite(data).all():
        raise ValueError(f"{name} contains non-finite values (NaN or Inf)")


def check_positive(value: float, name: str) -> float:
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value
