"""Shared utilities: RNG handling, timers, ascii tables, validation."""

from repro.util.rng import default_rng, spawn_rngs
from repro.util.timer import Timer, TimingBreakdown, monotonic
from repro.util.tables import format_table
from repro.util.validation import (
    check_3d,
    check_finite,
    check_positive,
    check_probability,
)

__all__ = [
    "default_rng",
    "spawn_rngs",
    "Timer",
    "TimingBreakdown",
    "monotonic",
    "format_table",
    "check_3d",
    "check_finite",
    "check_positive",
    "check_probability",
]
