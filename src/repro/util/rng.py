"""Deterministic random-number-generator helpers.

All stochastic components of the library (field synthesis, particle
sampling, noise injection in tests) accept either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: the same seed always yields the same snapshot,
partition layout, and compressed bitstream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rngs"]


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing
        generator (returned unchanged so callers can thread one RNG
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used by the SPMD executor to hand every simulated MPI rank its own
    statistically independent stream while staying reproducible from a
    single root seed.
    """
    if n < 0:
        raise ValueError(f"number of child RNGs must be non-negative, got {n}")
    root = default_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]
