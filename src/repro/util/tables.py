"""Plain-text table rendering for benchmark output.

Every benchmark prints the rows/series of its paper table or figure; this
helper keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned ascii table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each row must have ``len(headers)`` entries.
    float_fmt:
        ``format`` spec applied to floats.
    title:
        Optional title line printed above the table.
    """
    ncol = len(headers)
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != ncol:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {ncol}")
        rendered.append([_render_cell(v, float_fmt) for v in row])

    widths = [max(len(r[i]) for r in rendered) for i in range(ncol)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for row in rendered[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
