"""Command-line interface: generate, compress, analyze, report.

A small operational layer over the library for shell-driven workflows::

    python -m repro.cli generate --shape 64 --redshift 0.5 --out snap.npz
    python -m repro.cli compress --snapshot snap.npz --field temperature \
        --blocks 4 --eb-avg 500 --out blocks.npz
    python -m repro.cli analyze --snapshot snap.npz --field temperature \
        --compressed blocks.npz
    python -m repro.cli sweep --snapshot snap.npz --field baryon_density \
        --ebs 0.1,0.2,0.4
    python -m repro.cli generate --shape 32 --redshifts 4,2,1,0.5 --out run/
    python -m repro.cli stream --dir run/ --budget-bytes 2000000 \
        --ledger run.jsonl
    python -m repro.cli stream --replay run.jsonl
    python -m repro.cli list-compressors
    python -m repro.cli sweep --snapshot snap.npz --field temperature \
        --ebs 100,200 --compressor sz --compressor zfp_like:rate=8
    python -m repro.cli lint src --format json

Compressors are named by registry specs ``family[:key=value,...]``
(``list-compressors`` shows the families).  The legacy ``--codec`` flag
selects SZ's *entropy* stage (zlib/huffman/raw) — one parameter of the
``sz`` family, not a compressor family — and is folded into the spec.

Compressed containers are ``.npz`` archives holding every partition's
payloads plus layout metadata, loadable back into
:class:`repro.compression.sz.CompressedBlock` objects.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.compression.api import (
    REGISTRY,
    CompressorSpec,
    UnsupportedCapabilityError,
    decompress_any,
)
from repro.compression.sz import CompressedBlock
from repro.core.pipeline import AdaptiveCompressionPipeline
from repro.models.calibration import calibrate_rate_model
from repro.parallel.backends import BACKENDS, get_backend
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.io import load_snapshot, save_snapshot
from repro.sim.nyx import NyxSimulator
from repro.util.tables import format_table

__all__ = ["main", "save_blocks", "load_blocks"]


def save_blocks(path: str, blocks: list[CompressedBlock], ebs: np.ndarray, blocks_per_axis: int) -> None:
    """Persist compressed partitions to an ``.npz`` container."""
    payload: dict[str, np.ndarray] = {
        "__ebs": np.asarray(ebs, dtype=np.float64),
        "__blocks_per_axis": np.array(blocks_per_axis),
        "__meta": np.array(
            [
                (
                    ",".join(map(str, b.shape)),
                    b.source_itemsize,
                    b.eb,
                    b.mode,
                    b.engine,
                    b.codec_name,
                    b.radius,
                    b.n_outliers,
                )
                for b in blocks
            ],
            dtype=object,
        ),
    }
    for i, b in enumerate(blocks):
        for name, blob in b.payloads.items():
            payload[f"p{i}_{name}"] = np.frombuffer(blob, dtype=np.uint8)
    np.savez_compressed(path, **payload, allow_pickle=True)


def load_blocks(path: str) -> tuple[list[CompressedBlock], np.ndarray, int]:
    """Inverse of :func:`save_blocks`."""
    with np.load(path, allow_pickle=True) as data:
        meta = data["__meta"]
        ebs = data["__ebs"]
        bpa = int(data["__blocks_per_axis"])
        blocks = []
        for i, row in enumerate(meta):
            shape_s, itemsize, eb, mode, engine, codec, radius, n_out = row
            payloads = {}
            for key in data.files:
                prefix = f"p{i}_"
                if key.startswith(prefix):
                    payloads[key[len(prefix) :]] = data[key].tobytes()
            blocks.append(
                CompressedBlock(
                    shape=tuple(int(s) for s in shape_s.split(",")),
                    source_itemsize=int(itemsize),
                    eb=float(eb),
                    mode=str(mode),
                    engine=str(engine),
                    codec_name=str(codec),
                    radius=int(radius),
                    n_outliers=int(n_out),
                    payloads=payloads,
                )
            )
    return blocks, ebs, bpa


def _cmd_generate(args: argparse.Namespace) -> int:
    sim = NyxSimulator(
        shape=(args.shape,) * 3, box_size=float(args.shape), seed=args.seed
    )
    if args.redshifts is not None:
        # Snapshot sequence mode: --out names a directory; the zero-padded
        # index prefix keeps the schedule order under DirectoryStream's
        # sorted-filename replay.
        schedule = [float(z) for z in args.redshifts.split(",")]
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        stale = sorted(out_dir.glob("snapshot_*.npz"))
        if stale:
            # A shorter schedule would overwrite a prefix and leave the
            # tail behind; DirectoryStream would then silently mix two
            # schedules into one stream.
            print(
                f"refusing to write into {out_dir}: {len(stale)} snapshot "
                "file(s) already present (remove them or use a fresh "
                "directory)",
                file=sys.stderr,
            )
            return 1
        for i, z in enumerate(schedule):
            path = out_dir / f"snapshot_{i:04d}.npz"
            save_snapshot(sim.snapshot(z=z), path)
            print(f"wrote {path}: z={z:g}")
        print(f"wrote {len(schedule)} snapshots to {out_dir}")
        return 0
    snap = sim.snapshot(z=args.redshift)
    save_snapshot(snap, args.out)
    print(f"wrote {args.out}: shape {snap.shape}, z={snap.redshift}")
    return 0


def _resolve_spec(
    compressor: str | None, codec: str | None
) -> CompressorSpec:
    """Fold the legacy ``--codec`` alias into the ``--compressor`` spec.

    ``--codec`` names SZ's *entropy* stage (zlib/huffman/raw), one
    parameter of the ``sz`` family — not a compressor family.  It
    therefore only composes with (implicit or explicit) ``sz`` specs.
    """
    spec = CompressorSpec.parse(compressor) if compressor else CompressorSpec("sz")
    if codec is not None:
        if spec.family != "sz":
            raise SystemExit(
                f"--codec selects SZ's entropy stage and cannot apply to the "
                f"{spec.family!r} family; parameterize the family instead "
                f"(e.g. --compressor {spec.family}:...)"
            )
        spec = CompressorSpec.make("sz", **{**spec.options, "codec": codec})
    return spec


def _cmd_compress(args: argparse.Namespace) -> int:
    snap = load_snapshot(args.snapshot)
    data = snap[args.field]
    dec = BlockDecomposition(data.shape, blocks=args.blocks)
    eb_avg = args.eb_avg
    if eb_avg is None:
        eb_avg = float(np.ptp(data.astype(np.float64))) * 3e-3
    spec = _resolve_spec(args.compressor, args.codec)
    if spec.family in REGISTRY and not (
        REGISTRY.block_type(spec.family) is None
        or issubclass(REGISTRY.block_type(spec.family), CompressedBlock)
    ):
        # Fail before calibrating/compressing anything: the .npz block
        # container only stores SZ-family blocks.
        print(
            f"compress: the .npz block container stores SZ-family blocks "
            f"only; {spec.label} produces "
            f"{REGISTRY.block_type(spec.family).__name__} streams (use the "
            "library API to handle them)",
            file=sys.stderr,
        )
        return 2
    try:
        compressor = REGISTRY.create(spec)
        cal = calibrate_rate_model(
            dec.partition_views(data),
            compressor=compressor,
            eb_scale=eb_avg,
            seed=0,
            probe_mode=args.probe_mode,
        )
    except (UnsupportedCapabilityError, ValueError) as exc:
        print(f"compress: {exc}", file=sys.stderr)
        return 2
    backend = get_backend(args.backend)
    pipe = AdaptiveCompressionPipeline(
        cal.rate_model, compressor=compressor, backend=backend
    )
    try:
        result = pipe.run_insitu_spmd(data, dec, eb_avg=eb_avg)
    finally:
        backend.close()
    save_blocks(args.out, result.blocks, result.ebs, args.blocks)
    phases = " ".join(
        f"{name}={seconds:.3f}s" for name, seconds in result.timings.as_dict().items()
    )
    print(
        f"wrote {args.out}: {dec.n_partitions} partitions, "
        f"ratio {result.overall_ratio:.2f}x, bit rate {result.overall_bit_rate:.3f}, "
        f"bounds {result.ebs.min():.4g}..{result.ebs.max():.4g}"
    )
    print(f"backend {backend.name}: {phases}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import nrmse, psnr
    from repro.analysis.spectrum import check_spectrum_quality

    snap = load_snapshot(args.snapshot)
    data = snap[args.field].astype(np.float64)
    blocks, ebs, bpa = load_blocks(args.compressed)
    dec = BlockDecomposition(data.shape, blocks=bpa)
    recon = dec.assemble([decompress_any(b) for b in blocks])
    ok, dev = check_spectrum_quality(data, recon, tolerance=args.tolerance)
    rows = [
        ["max abs error", float(np.max(np.abs(recon - data)))],
        ["largest bound", float(ebs.max())],
        ["PSNR (dB)", psnr(data, recon)],
        ["NRMSE", nrmse(data, recon)],
        ["P(k) worst deviation (k<10)", dev],
        ["P(k) within band", "yes" if ok else "NO"],
    ]
    print(format_table(["metric", "value"], rows, title=f"analysis: {args.field}"))
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.foresight import QualityCriteria, records_to_table, run_sweep

    snap = load_snapshot(args.snapshot)
    data = snap[args.field]
    dec = BlockDecomposition(data.shape, blocks=args.blocks)
    ebs = [float(e) for e in args.ebs.split(",")]
    specs = [CompressorSpec.parse(c) for c in (args.compressor or [])]
    single = specs[0] if len(specs) == 1 else None
    try:
        records = run_sweep(
            {args.field: data},
            ebs,
            {args.field: QualityCriteria(spectrum_tolerance=args.tolerance)},
            decomposition=dec,
            compressor=single,
            compressors=specs if len(specs) > 1 else None,
            rate_only=args.rate_only,
            probe_mode=args.probe_mode,
            backend=args.backend,
        )
    except UnsupportedCapabilityError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    print(records_to_table(records, title=f"sweep: {args.field}"))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.core.config import FieldSpec
    from repro.resilience import RetryPolicy
    from repro.stream import (
        DirectoryStream,
        DriftConfig,
        InSituController,
        RunLedger,
        SimulatorStream,
        replay_ledger,
    )

    if args.replay is not None:
        # recover=True tolerates (and reports) a torn final line without
        # modifying the file — replaying a crashed run's ledger works.
        source = RunLedger.load(args.replay, recover=True)
        if source.recovered_tail is not None:
            tail = source.recovered_tail
            print(
                f"torn final line ignored: {tail['truncated_bytes']} bytes "
                f"after byte offset {tail['valid_bytes']} "
                f"({tail['valid_events']} valid events kept)"
            )
        decisions = replay_ledger(source)
        rows = [
            [d.snapshot_index, d.redshift, d.field, d.eb_avg, min(d.ebs), max(d.ebs)]
            for d in decisions
        ]
        print(
            format_table(
                ["snap", "z", "field", "eb_avg", "eb_min", "eb_max"],
                rows,
                title=f"replayed ledger: {args.replay}",
            )
        )
        print(
            f"replay verified: {len(decisions)} decisions reproduced from "
            "the ledger alone (no field data read)"
        )
        return 0

    retry = (
        None
        if args.max_retries is None
        else RetryPolicy(max_attempts=args.max_retries)
    )
    fields = args.fields.split(",") if args.fields else None
    if args.simulate:
        sim = NyxSimulator(
            shape=(args.shape,) * 3, box_size=float(args.shape), seed=args.seed
        )
        schedule = [float(z) for z in args.redshifts.split(",")]
        stream = SimulatorStream(sim, schedule, fields=fields)
        shape = sim.shape
    elif args.dir is not None:
        stream = DirectoryStream(args.dir, fields=fields, retry=retry)
        shape = stream.shape
    else:
        print("stream: need a source (--dir or --simulate) or --replay", file=sys.stderr)
        return 2

    if args.resume:
        if not args.ledger:
            print("stream: --resume requires --ledger", file=sys.stderr)
            return 2
        # Run settings (drift, budget, compressor, candidates, ...) come
        # from the ledger's run_start event, not from the flags above;
        # only process-local choices are taken from the command line.
        controller = InSituController.resume(
            args.ledger,
            backend=args.backend,
            default_spec=FieldSpec(spectrum_tolerance=args.tolerance),
            retry=retry,
            fallback_compressor=args.fallback_compressor,
            fsync_ledger=args.fsync_ledger,
            seed=args.seed,
            retain_results=False,
        )
        done = controller.report.n_snapshots
        print(f"resuming at snapshot {done}/{len(stream)} (ledger: {args.ledger})")
    else:
        specs = [CompressorSpec.parse(c) for c in (args.compressor or [])]
        controller = InSituController(
            BlockDecomposition(shape, blocks=args.blocks),
            backend=args.backend,
            compressor=specs[0] if len(specs) == 1 else None,
            candidates=specs if len(specs) > 1 else None,
            ledger=args.ledger,
            byte_budget=args.budget_bytes,
            drift=DriftConfig(
                z_threshold=args.z_threshold,
                window=args.drift_window,
                min_points=args.drift_min_points,
            ),
            recalibrate=args.recalibrate,
            probe_mode=args.probe_mode,
            default_spec=FieldSpec(spectrum_tolerance=args.tolerance),
            retain_results=False,  # stream accounting only: O(1) memory
            retry=retry,
            fallback_compressor=args.fallback_compressor,
            fsync_ledger=args.fsync_ledger,
        )
    try:
        report = controller.run(stream)
    except (UnsupportedCapabilityError, ValueError) as exc:
        # e.g. a fixed-rate --compressor hitting calibration, or a
        # candidate slate with no eligible member for some field.
        print(f"stream: {exc}", file=sys.stderr)
        return 2
    finally:
        controller.close()
    print(report.to_table(title=f"stream: {len(stream)} snapshots"))
    if controller.selections:
        for name, sel in controller.selections.items():
            rejected = "; ".join(
                f"{v.spec.label}: {v.reason}" for v in sel.rejected
            )
            line = f"selected {sel.chosen.label} for {name}"
            print(line + (f" ({rejected})" if rejected else ""))
    print(
        f"total {report.compressed_bytes} bytes "
        f"({report.overall_ratio:.2f}x vs raw), "
        f"{report.n_recalibrations} recalibration(s)"
    )
    if report.byte_budget is not None:
        print(
            f"budget {report.byte_budget} bytes: "
            f"{100.0 * report.budget_utilization:.1f}% used"
        )
    if report.n_retries or report.n_recoveries or report.n_degradations:
        degraded = (
            f" (degraded: {','.join(report.degraded_fields)})"
            if report.degraded_fields
            else ""
        )
        print(
            f"resilience: {report.n_retries} retrie(s), "
            f"{report.n_recoveries} ledger recover(ies), "
            f"{report.n_degradations} degradation(s){degraded}"
        )
    if args.ledger:
        print(f"ledger: {args.ledger} ({len(controller.ledger)} events)")
    return 0


def _cmd_list_compressors(args: argparse.Namespace) -> int:
    default_family = REGISTRY.default().family
    flag_names = (
        "error_bounded",
        "fixed_rate",
        "supports_estimate",
        "supports_workspace",
    )
    rows = []
    for family in REGISTRY.families():
        caps = REGISTRY.capabilities(family)
        flags = ",".join(n for n in flag_names if getattr(caps, n)) or "-"
        defaults = (
            ",".join(f"{k}={v}" for k, v in sorted(REGISTRY.defaults(family).items()))
            or "-"
        )
        name = family + (" *" if family == default_family else "")
        rows.append([name, flags, defaults, REGISTRY.describe(family)])
    print(
        format_table(
            ["family", "capabilities", "defaults", "description"],
            rows,
            title="registered compressor families (* = default)",
        )
    )
    print(
        "spec grammar: family[:key=value,...], e.g. sz:codec=huffman or "
        "zfp_like:rate=8 (note: 'codec' is SZ's entropy stage, not a family)"
    )
    from repro.compression.kernels import available_kernels, get_kernels

    print(
        f"kernel backends: {','.join(available_kernels())} "
        f"(kernels=auto resolves to {get_kernels('auto').name})"
    )
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.telemetry.export import load_spans
    from repro.telemetry.report import render_trace_report

    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        print(f"trace-report: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    print(render_trace_report(spans))
    return 0


@contextmanager
def _telemetry_sink(path: str | None):
    """Arm telemetry for one command and export the trace at the end.

    The export format follows the suffix (``.trace.json``/``.chrome.json``
    → Chrome trace, ``.prom``/``.txt`` → Prometheus text, else canonical
    JSONL); the trace is written even when the command fails, so crashed
    runs keep their spans for post-mortems.
    """
    if path is None:
        yield
        return
    from repro import telemetry
    from repro.telemetry.export import write_export

    with telemetry.armed() as tracer:
        try:
            yield
        finally:
            fmt = write_export(
                path, tracer.export_spans(), telemetry.get_registry().snapshot()
            )
            print(f"telemetry: wrote {fmt} trace to {path}")


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the lint engine is pure stdlib-AST and must stay
    # usable even while the rest of the package is being refactored.
    from repro.lint.cli import run as lint_run

    return lint_run(
        paths=args.paths,
        fmt=args.format,
        select=args.select,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        output=args.output,
        list_rules=args.list_rules,
    )


def _add_telemetry_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="arm tracing/metrics for this command and write the trace to "
        "PATH on exit (suffix selects the format: .trace.json/.chrome.json "
        "for a Perfetto-loadable Chrome trace, .prom/.txt for Prometheus "
        "text, anything else for canonical JSON lines); telemetry is "
        "out-of-band — ledgers and outputs are byte-identical either way",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Adaptive in situ lossy compression toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a Nyx-like snapshot")
    g.add_argument("--shape", type=int, default=64)
    g.add_argument("--redshift", type=float, default=0.5)
    g.add_argument(
        "--redshifts",
        default=None,
        help="comma-separated dump schedule; --out then names a directory "
        "receiving one snapshot_NNNN.npz per redshift (a stream source)",
    )
    g.add_argument("--seed", type=int, default=42)
    g.add_argument("--out", required=True)
    g.set_defaults(fn=_cmd_generate)

    c = sub.add_parser("compress", help="adaptively compress one field")
    c.add_argument("--snapshot", required=True)
    c.add_argument("--field", required=True)
    c.add_argument("--blocks", type=int, default=4)
    c.add_argument("--eb-avg", type=float, default=None)
    c.add_argument(
        "--compressor",
        default=None,
        help="compressor family spec, family[:key=value,...] (see the "
        "list-compressors subcommand); default sz",
    )
    c.add_argument(
        "--codec",
        default=None,
        choices=["zlib", "huffman", "raw"],
        help="SZ's *entropy* codec (an alias for --compressor "
        "sz:codec=...); not a compressor family — use --compressor "
        "to switch families",
    )
    c.add_argument(
        "--backend",
        default="serial",
        choices=sorted(BACKENDS),
        help="execution backend (serial rank loop, thread-SPMD, process pool)",
    )
    c.add_argument(
        "--probe-mode",
        default="exact",
        choices=["exact", "estimate", "model"],
        help="rate-model calibration probes: run the full codec (exact), "
        "predict rates from code histograms (estimate, faster), or the "
        "closed-form ratio-quality model (model)",
    )
    c.add_argument("--out", required=True)
    _add_telemetry_flag(c)
    c.set_defaults(fn=_cmd_compress)

    a = sub.add_parser("analyze", help="verify a compressed field")
    a.add_argument("--snapshot", required=True)
    a.add_argument("--field", required=True)
    a.add_argument("--compressed", required=True)
    a.add_argument("--tolerance", type=float, default=0.01)
    a.set_defaults(fn=_cmd_analyze)

    s = sub.add_parser("sweep", help="trial-and-error sweep over bounds")
    s.add_argument("--snapshot", required=True)
    s.add_argument("--field", required=True)
    s.add_argument("--blocks", type=int, default=4)
    s.add_argument("--ebs", required=True, help="comma-separated error bounds")
    s.add_argument(
        "--compressor",
        action="append",
        default=None,
        help="compressor spec family[:key=value,...]; repeat the flag to "
        "fan the sweep over several families (records then carry the "
        "spec per row)",
    )
    s.add_argument("--tolerance", type=float, default=0.01)
    s.add_argument(
        "--rate-only",
        action="store_true",
        help="skip decompression and quality evaluation (rate curves only)",
    )
    s.add_argument(
        "--probe-mode",
        default="exact",
        choices=["exact", "estimate", "model"],
        help="estimate rates from code histograms (estimate, implies "
        "--rate-only) or predict rate AND quality analytically with the "
        "ratio-quality model (model) instead of running the codec",
    )
    s.add_argument(
        "--backend",
        default="serial",
        choices=sorted(BACKENDS),
        help="execution backend fanning out the per-(field, eb) quality "
        "evaluations (rate probing always runs inline)",
    )
    _add_telemetry_flag(s)
    s.set_defaults(fn=_cmd_sweep)

    st = sub.add_parser(
        "stream",
        help="run the online in-situ streaming controller over a snapshot "
        "sequence (or replay a run ledger)",
    )
    st.add_argument(
        "--dir", default=None, help="directory of snapshot .npz files (sorted order)"
    )
    st.add_argument(
        "--simulate",
        action="store_true",
        help="stream snapshots straight from the Nyx-like simulator",
    )
    st.add_argument("--shape", type=int, default=32, help="grid size (--simulate)")
    st.add_argument("--seed", type=int, default=42, help="simulator seed (--simulate)")
    st.add_argument(
        "--redshifts",
        default="4.0,3.0,2.0,1.5,1.0,0.7,0.5,0.3",
        help="comma-separated dump schedule (--simulate)",
    )
    st.add_argument("--fields", default=None, help="comma-separated field subset")
    st.add_argument(
        "--compressor",
        action="append",
        default=None,
        help="compressor spec family[:key=value,...]; one flag pins every "
        "field to that configuration, repeating it builds a candidate "
        "slate from which each field's compressor is *selected* at "
        "calibration time (rejections are quantified in the ledger)",
    )
    st.add_argument("--blocks", type=int, default=4)
    st.add_argument(
        "--backend",
        default="serial",
        choices=sorted(BACKENDS),
        help="execution backend for every per-field compression",
    )
    st.add_argument(
        "--probe-mode",
        default="exact",
        choices=["exact", "estimate", "model"],
        help="rate-model (re)calibration probes: full codec, codec-free "
        "histogram estimates, or the closed-form ratio-quality model",
    )
    st.add_argument(
        "--budget-bytes",
        type=int,
        default=None,
        help="total-run compressed-byte budget enforced by the governor",
    )
    st.add_argument("--tolerance", type=float, default=0.01, help="P(k) tolerance")
    st.add_argument(
        "--z-threshold",
        type=float,
        default=4.0,
        help="standardized-residual threshold triggering recalibration",
    )
    st.add_argument("--drift-window", type=int, default=4)
    st.add_argument("--drift-min-points", type=int, default=2)
    st.add_argument(
        "--recalibrate",
        default="drift",
        choices=["drift", "always"],
        help="refit models only on drift (default) or on every snapshot",
    )
    st.add_argument(
        "--ledger", default=None, help="append-only JSONL run ledger to write"
    )
    st.add_argument(
        "--replay",
        default=None,
        help="replay+verify an existing ledger instead of streaming "
        "(reads no field data; tolerates and reports a torn final line)",
    )
    st.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --ledger: a torn final line "
        "is truncated, completed snapshots are skipped, and the rest of "
        "the stream produces decisions identical to an uninterrupted run",
    )
    st.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry transient failures (worker crashes, snapshot-load "
        "errors, ledger-append errors) up to N attempts per site with "
        "exponential backoff; default is fail-fast",
    )
    st.add_argument(
        "--fallback-compressor",
        default=None,
        help="compressor spec a field degrades to when its retries are "
        "exhausted (the field is quarantined onto it and the stream "
        "continues); default is to abort the run",
    )
    st.add_argument(
        "--fsync-ledger",
        action="store_true",
        help="fsync every ledger append (crash-safety against power loss, "
        "one disk sync per event)",
    )
    _add_telemetry_flag(st)
    st.set_defaults(fn=_cmd_stream)

    tr = sub.add_parser(
        "trace-report",
        help="render per-stage/per-field summaries and the paper's §4.3 "
        "overhead ratio from a --telemetry trace file",
    )
    tr.add_argument("trace", help="trace file (JSONL or Chrome trace) to summarize")
    tr.set_defaults(fn=_cmd_trace_report)

    lc = sub.add_parser(
        "list-compressors",
        help="list registered compressor families, capabilities and defaults",
    )
    lc.set_defaults(fn=_cmd_list_compressors)

    ln = sub.add_parser(
        "lint",
        help="determinism & contract static analysis (see docs/lint-rules.md)",
    )
    ln.add_argument("paths", nargs="*", default=["src"])
    ln.add_argument("--format", choices=("text", "json"), default="text")
    ln.add_argument("--select", action="append", metavar="RULE")
    ln.add_argument("--baseline", metavar="FILE")
    ln.add_argument("--write-baseline", action="store_true")
    ln.add_argument("--output", metavar="FILE")
    ln.add_argument("--list-rules", action="store_true")
    ln.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with _telemetry_sink(getattr(args, "telemetry", None)):
        return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
