"""``python -m repro.lint`` — the determinism lint front end.

Stable exit codes (the CI gate keys on them):

- ``0`` — clean: no findings, no stale baseline entries,
- ``1`` — violations found, or baseline entries whose flagged lines no
  longer exist (remove them; baselines only shrink),
- ``2`` — usage error (unknown rule, missing path, bad flags).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import iter_rules, run_lint
from repro.lint.reporters import render_json, render_text

__all__ = ["build_parser", "main", "run"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="determinism & contract static analysis for this repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is canonical: sorted keys, compact)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted findings (missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report here instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.code}  {rule.name:<20} {rule.summary}")
    return "\n".join(lines)


def run(
    paths: "list[str] | None" = None,
    fmt: str = "text",
    select: "list[str] | None" = None,
    baseline: "str | None" = None,
    write_baseline: bool = False,
    output: "str | None" = None,
    list_rules: bool = False,
) -> int:
    """Programmatic entry point shared by ``repro lint`` and ``-m``."""
    if list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    paths = paths or ["src"]
    if write_baseline and not baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return EXIT_USAGE
    try:
        loaded = Baseline.load(baseline) if baseline else None
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if write_baseline:
            result = run_lint(paths, select=select, baseline=None)
            Baseline.from_findings(result.findings).save(baseline)
            print(
                f"wrote {baseline}: {len(result.findings)} accepted finding(s) "
                f"from {result.files_checked} files"
            )
            return EXIT_CLEAN
        result = run_lint(paths, select=select, baseline=loaded)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report = render_json(result) if fmt == "json" else render_text(result)
    if output:
        Path(output).write_text(report + "\n", encoding="utf-8")
        summary = "ok" if result.ok else f"{len(result.findings)} finding(s)"
        print(f"{summary}; report written to {output}")
    else:
        print(report)
    return EXIT_CLEAN if result.ok else EXIT_FINDINGS


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        paths=args.paths,
        fmt=args.format,
        select=args.select,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        output=args.output,
        list_rules=args.list_rules,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
