"""Committed lint baseline for incremental adoption.

A baseline file records the violations a repo has *agreed to carry* so
the CI gate can fail on new ones only.  Entries key on
``(rule, path, stripped line content)`` — stable under pure line-number
drift, but the moment the flagged line is edited or deleted the entry
stops matching and **expires loudly**: a stale entry fails the run until
it is removed (``--write-baseline`` regenerates the file).  Baselines
therefore only ever shrink; the end state is the empty baseline this
repo ships.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.lint.engine import Finding

__all__ = ["Baseline", "BaselineEntry", "BaselineError"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """A malformed baseline file."""


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One accepted violation: rule + file + the flagged line's content."""

    rule: str
    path: str
    content: str
    count: int = 1

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.content)


class Baseline:
    """A set of accepted findings, loadable from / savable to JSON."""

    def __init__(self, entries: "list[BaselineEntry] | None" = None) -> None:
        self.entries: list[BaselineEntry] = sorted(entries or [])

    def __len__(self) -> int:
        return sum(e.count for e in self.entries)

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            obj = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(obj, dict) or not isinstance(obj.get("entries"), list):
            raise BaselineError(f"{path}: expected an object with an 'entries' list")
        entries = []
        for raw in obj["entries"]:
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        content=str(raw["content"]),
                        count=int(raw.get("count", 1)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"{path}: malformed entry {raw!r}") from exc
        return cls(entries)

    def save(self, path: "str | Path") -> None:
        """Write the baseline canonically (sorted entries, sorted keys)."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "content": e.content,
                    "count": e.count,
                }
                for e in sorted(self.entries)
            ],
        }
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        Path(path).write_text(text, encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        counts = Counter((f.rule, f.path, f.content) for f in findings)
        return cls(
            [
                BaselineEntry(rule=rule, path=path, content=content, count=n)
                for (rule, path, content), n in counts.items()
            ]
        )

    # -- application -----------------------------------------------------

    def apply(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], int, list[BaselineEntry]]:
        """Split findings into (new, n_baselined, stale entries).

        Each entry absorbs up to ``count`` matching findings; findings
        beyond the budget are new.  Entries with leftover budget are
        stale — their flagged lines no longer exist — and returned with
        the unmatched remainder as their ``count``.
        """
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + entry.count
        new: list[Finding] = []
        baselined = 0
        for finding in sorted(findings):
            key = (finding.rule, finding.path, finding.content)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale = [
            BaselineEntry(rule=rule, path=path, content=content, count=left)
            for (rule, path, content), left in sorted(budget.items())
            if left > 0
        ]
        return new, baselined, stale
