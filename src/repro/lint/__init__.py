"""repro.lint — determinism & contract static analysis for this repo.

The system's headline guarantees (byte-for-byte ledger replay, bitwise
backend equivalence, payloads byte-identical across refactors) have each
been broken by the same small class of Python hazards: unsorted
filesystem iteration, set order escaping into output, global RNG state,
non-canonical JSON, ad-hoc wall-clock reads, order-sensitive float
accumulation, swallowed exceptions, mutable defaults, and compressor
construction that bypasses the capability-checked registry.  This
package catches those at review time with AST-level rules instead of at
replay time:

- :mod:`repro.lint.engine` — per-rule :class:`ast.NodeVisitor` passes
  over a shared :class:`ModuleContext` (import/alias resolution, parent
  links), ``# repro-lint: disable=RULE`` line suppressions,
- :mod:`repro.lint.rules` — the rule catalog (``RL001``..``RL009``),
- :mod:`repro.lint.baseline` — a committed baseline for incremental
  adoption whose entries expire loudly once the flagged line is gone,
- :mod:`repro.lint.reporters` — text and canonical-JSON reports,
- :mod:`repro.lint.cli` — ``python -m repro.lint`` / ``repro lint``
  with stable exit codes (0 clean, 1 findings or stale baseline,
  2 usage error).
"""

from repro.lint.baseline import Baseline, BaselineEntry, BaselineError
from repro.lint.engine import (
    PARSE_ERROR,
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    iter_python_files,
    iter_rules,
    lint_source,
    register_rule,
    run_lint,
)
from repro.lint.reporters import render_json, render_text

# Importing the catalog registers every built-in rule with the engine.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "LintResult",
    "ModuleContext",
    "PARSE_ERROR",
    "Rule",
    "iter_python_files",
    "iter_rules",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
]
