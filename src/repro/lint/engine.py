"""Rule-registry AST analysis engine.

One :class:`ModuleContext` is built per file (parsed tree, parent links,
import-alias resolution); every registered :class:`Rule` is a focused
:class:`ast.NodeVisitor` that walks the tree once and records
:class:`Finding`\\ s.  Findings are filtered through per-line
``# repro-lint: disable=RULE`` suppressions before they are reported,
and optionally through a committed :class:`~repro.lint.baseline.
Baseline` for incremental adoption.

The engine is deliberately self-hosting-clean: it iterates directories
in sorted order, serializes canonically, and narrows every exception it
catches — the linter passes its own rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.baseline import Baseline, BaselineEntry

__all__ = [
    "PARSE_ERROR",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "RULES",
    "iter_python_files",
    "iter_rules",
    "lint_source",
    "register_rule",
    "run_lint",
]

#: Pseudo-rule code attached to findings for files that fail to parse.
#: Not a registered rule (it cannot be disabled or baselined away — a
#: file the engine cannot read is a file no rule has vetted).
PARSE_ERROR = "E001"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position.

    ``content`` is the stripped source line the finding sits on; the
    baseline keys on it so entries survive pure line-number drift but
    expire when the flagged code itself changes or disappears.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    content: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


# -- suppressions ------------------------------------------------------------

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def suppressed_rules(line_text: str) -> frozenset[str]:
    """Rule codes disabled by a ``# repro-lint: disable=...`` comment.

    The comment silences exactly the listed rules on exactly its own
    physical line (the line a finding anchors to); it is not a block or
    file pragma.
    """
    match = _DISABLE_RE.search(line_text)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip()
    )


# -- per-module semantic context ---------------------------------------------


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted import path they are bound to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as nr`` maps ``nr -> numpy.random``; ``import os.path`` binds
    the root name ``os``.  Relative imports resolve package-locally and
    are recorded with their leading dots so absolute-path rules never
    match them by accident.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{module}.{name.name}"
    return aliases


class ModuleContext:
    """Everything the rules share about one module: tree, parents, aliases."""

    def __init__(self, path: str, tree: ast.AST, source: str) -> None:
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.aliases = _collect_aliases(tree)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted import path of a ``Name``/``Attribute`` chain, or ``None``.

        ``np.random.rand`` resolves to ``"numpy.random.rand"`` under
        ``import numpy as np``; a chain rooted at a local variable (or
        anything that is not a plain name chain) resolves to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


# -- rule base + registry ----------------------------------------------------


class Rule(ast.NodeVisitor):
    """One determinism/contract check: visits a module, records findings.

    Subclasses set the class metadata (``code``, ``name``, ``summary``,
    ``rationale``) and implement ``visit_*`` methods that call
    :meth:`flag`.  ``exempt`` lists path patterns the rule never applies
    to — a trailing ``/`` matches a package prefix anywhere in the path,
    otherwise the pattern is a path suffix (the sanctioned wrapper
    modules exempt themselves this way).  ``only``, when non-empty,
    restricts the rule to paths matching one of its patterns (same
    matcher semantics); ``exempt`` still subtracts from that set.
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    exempt: ClassVar[tuple[str, ...]] = ()
    only: ClassVar[tuple[str, ...]] = ()

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @staticmethod
    def _matches(posix: str, pattern: str) -> bool:
        if pattern.endswith("/"):
            return pattern in posix or posix.startswith(pattern)
        return posix.endswith(pattern)

    @classmethod
    def applies_to(cls, path: str) -> bool:
        posix = path.replace("\\", "/")
        if cls.only and not any(cls._matches(posix, p) for p in cls.only):
            return False
        return not any(cls._matches(posix, p) for p in cls.exempt)

    def flag(self, node: ast.AST, message: str | None = None) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                rule=self.code,
                message=message or self.summary,
                content=self.ctx.line_text(line).strip(),
            )
        )


RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Register a :class:`Rule` subclass under its ``code``."""
    if not (isinstance(cls, type) and issubclass(cls, Rule)):
        raise TypeError(f"expected a Rule subclass, got {cls!r}")
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define code and name")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULES[cls.code] = cls
    return cls


def iter_rules() -> list[type[Rule]]:
    """Registered rules in code order (stable for reports and docs)."""
    return [RULES[code] for code in sorted(RULES)]


def _select_rules(select: "list[str] | None") -> list[type[Rule]]:
    if select is None:
        return iter_rules()
    unknown = [code for code in select if code not in RULES]
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {unknown}; registered: {sorted(RULES)}"
        )
    return [RULES[code] for code in sorted(select)]


# -- linting one module ------------------------------------------------------


def _lint_module(
    source: str, path: str, rules: list[type[Rule]]
) -> tuple[list[Finding], int]:
    """All findings for one module plus the count suppressed by pragmas."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        finding = Finding(
            path=path,
            line=line,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR,
            message=f"file does not parse: {exc.msg}",
        )
        return [finding], 0
    ctx = ModuleContext(path, tree, source)
    findings: list[Finding] = []
    for rule_cls in rules:
        if not rule_cls.applies_to(path):
            continue
        rule = rule_cls(ctx)
        rule.visit(tree)
        findings.extend(rule.findings)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if finding.rule in suppressed_rules(ctx.line_text(finding.line)):
            suppressed += 1
        else:
            kept.append(finding)
    return sorted(kept), suppressed


def lint_source(
    source: str, path: str = "<memory>", select: "list[str] | None" = None
) -> list[Finding]:
    """Lint a source string; the unit-test entry point.

    Returns the findings that survive line suppressions, sorted by
    position.  ``select`` restricts the run to the given rule codes.
    """
    findings, _ = _lint_module(source, path, _select_rules(select))
    return findings


# -- walking the tree --------------------------------------------------------


def iter_python_files(paths: "list[str | Path]") -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated module list.

    Directories are walked recursively in sorted order (the engine obeys
    its own RL001); hidden directories and ``__pycache__`` are skipped.
    """
    files: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                files.setdefault(candidate, None)
        elif path.is_file():
            files.setdefault(path, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    findings: list[Finding]
    suppressed: int
    baselined: int
    stale_baseline: list["BaselineEntry"]
    files_checked: int

    @property
    def ok(self) -> bool:
        """Clean run: nothing new to report and no stale baseline debt."""
        return not self.findings and not self.stale_baseline


def run_lint(
    paths: "list[str | Path]",
    select: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> LintResult:
    """Lint every module under ``paths`` and fold in the baseline."""
    rules = _select_rules(select)
    files = iter_python_files(paths)
    findings: list[Finding] = []
    suppressed = 0
    for path in files:
        source = path.read_text(encoding="utf-8")
        module_findings, module_suppressed = _lint_module(
            source, path.as_posix(), rules
        )
        findings.extend(module_findings)
        suppressed += module_suppressed
    if baseline is not None:
        findings, baselined, stale = baseline.apply(findings)
    else:
        baselined, stale = 0, []
    return LintResult(
        findings=sorted(findings),
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files_checked=len(files),
    )
