"""Lint reporters: human text and canonical machine JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["render_json", "render_text"]

#: Version of the JSON report schema (CI artifacts key on it).
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """``path:line:col: CODE message`` lines plus a one-line summary."""
    lines = [
        f"{f.location()}: {f.rule} {f.message}" for f in result.findings
    ]
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.path}: stale baseline entry {entry.rule} "
            f"(x{entry.count}) — flagged line {entry.content!r} no longer "
            "exists; remove it from the baseline (or --write-baseline)"
        )
    noise = []
    if result.suppressed:
        noise.append(f"{result.suppressed} suppressed")
    if result.baselined:
        noise.append(f"{result.baselined} baselined")
    tail = f" ({', '.join(noise)})" if noise else ""
    if result.ok:
        lines.append(f"ok: {result.files_checked} files clean{tail}")
    else:
        lines.append(
            f"FAILED: {len(result.findings)} finding(s), "
            f"{len(result.stale_baseline)} stale baseline entr(y/ies) "
            f"in {result.files_checked} files{tail}"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Canonical JSON report (sorted keys — the linter lints itself)."""
    payload = {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "content": f.content,
            }
            for f in result.findings
        ],
        "stale_baseline": [
            {
                "rule": e.rule,
                "path": e.path,
                "content": e.content,
                "count": e.count,
            }
            for e in result.stale_baseline
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
