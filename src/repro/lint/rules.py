"""The rule catalog: repo-specific determinism & contract checks.

Every rule documents its rationale (why the pattern threatens
byte-for-byte replay, bitwise backend equivalence, or the compressor
registry contract) plus a minimal bad/good pair; ``docs/lint-rules.md``
is the narrative version of the same catalog.  Rules deliberately err
on the side of few false positives — when one does fire wrongly, a
``# repro-lint: disable=RLxxx`` comment on that line is the escape
hatch, with the comment doubling as the justification record.
"""

from __future__ import annotations

import ast

from repro.lint.engine import ModuleContext, Rule, register_rule

__all__ = [
    "UnsortedFsIterationRule",
    "SetOrderRule",
    "GlobalRngRule",
    "CanonicalJsonRule",
    "WallClockRule",
    "FloatSumRule",
    "BroadExceptRule",
    "MutableDefaultRule",
    "CompressorContractRule",
    "HandRolledRetryRule",
    "HotPathAllocationRule",
    "AdHocTelemetryRule",
]

#: Builtins that consume an iterable without depending on its order;
#: wrapping an unordered producer in one of these is fine.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)


def _is_set_expr(node: ast.AST) -> bool:
    """Set literal / set comprehension / ``set(...)`` or ``frozenset(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _has_order_insensitive_parent(ctx: ModuleContext, node: ast.AST) -> bool:
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INSENSITIVE
        and node in parent.args
    )


@register_rule
class UnsortedFsIterationRule(Rule):
    """RL001 — filesystem iteration order must be pinned with ``sorted``.

    ``glob``/``iterdir``/``listdir`` return entries in arbitrary,
    filesystem-dependent order; feeding that order into snapshot
    schedules or reports makes two runs of the same campaign diverge.

    Bad::

        for path in out_dir.glob("snapshot_*.npz"): ...

    Good::

        for path in sorted(out_dir.glob("snapshot_*.npz")): ...
    """

    code = "RL001"
    name = "unsorted-glob"
    summary = "filesystem iteration without sorted() — entry order is OS-dependent"
    rationale = (
        "glob/iterdir/listdir order depends on the filesystem; DirectoryStream "
        "schedules and CLI batch jobs must pin it with sorted()."
    )

    _MODULE_CALLS = frozenset(
        {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    )
    _METHODS = frozenset({"glob", "rglob", "iterdir"})

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve(node.func)
        hit = target in self._MODULE_CALLS
        if (
            not hit
            and target is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._METHODS
        ):
            # A `.glob(...)`-shaped method on some object; pathlib in
            # practice.  Objects that merely share the name are rare and
            # can disable the rule on that line.
            hit = True
        if hit and not _has_order_insensitive_parent(self.ctx, node):
            call = target or f"<obj>.{node.func.attr}"  # type: ignore[union-attr]
            self.flag(node, f"{call}() result used without sorted(); {self.summary}")
        self.generic_visit(node)


@register_rule
class SetOrderRule(Rule):
    """RL002 — set iteration order must not escape into ordered output.

    Sets iterate in hash order, which varies with insertion history (and
    with ``PYTHONHASHSEED`` for strings); materializing one into a list,
    loop, or joined string bakes that order into reports and payloads.

    Bad::

        fields = list({"temperature", "baryon_density"})

    Good::

        fields = sorted({"temperature", "baryon_density"})
    """

    code = "RL002"
    name = "set-order"
    summary = "set iteration order escapes into ordered output; wrap in sorted()"
    rationale = (
        "set order is hash-order and PYTHONHASHSEED-dependent; anything "
        "serialized, reduced or reported from it must go through sorted()."
    )

    _ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "reversed"})

    def _flag_set(self, node: ast.AST, how: str) -> None:
        self.flag(node, f"set {how}; {self.summary}")

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self._ORDER_SENSITIVE_CALLS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._flag_set(node.args[0], f"materialized via {node.func.id}()")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._flag_set(node.args[0], "joined into a string")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag_set(node.iter, "iterated by a for loop")
        self.generic_visit(node)

    def _check_comprehension(
        self, node: "ast.ListComp | ast.DictComp"
    ) -> None:
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self._flag_set(gen.iter, "iterated by an ordered comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if _is_set_expr(node.value):
            self._flag_set(node.value, "unpacked positionally")
        self.generic_visit(node)


@register_rule
class GlobalRngRule(Rule):
    """RL003 — RNG access goes through :mod:`repro.util.rng`.

    Calls into the global ``random``/``numpy.random`` state (or ad-hoc
    generator construction) make snapshots, partition layouts and
    compressed bitstreams irreproducible; every stochastic component
    must accept a seed or Generator coerced by ``util.rng.default_rng``.

    Bad::

        noise = np.random.normal(size=n)

    Good::

        noise = default_rng(seed).normal(size=n)
    """

    code = "RL003"
    name = "global-rng"
    summary = "global/unseeded RNG use; route through repro.util.rng"
    rationale = (
        "global RNG state breaks seed->snapshot->bitstream reproducibility; "
        "repro.util.rng.default_rng is the one sanctioned entry point."
    )
    exempt = ("repro/util/rng.py",)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve(node.func)
        if target is not None and (
            target.startswith("random.") or target.startswith("numpy.random.")
        ):
            self.flag(node, f"{target}() call; {self.summary}")
        self.generic_visit(node)


@register_rule
class CanonicalJsonRule(Rule):
    """RL004 — ``json.dumps`` must pass ``sort_keys=True``.

    Without ``sort_keys`` the serialized bytes follow dict insertion
    order, so a pure refactor reorders ledger lines, report exports and
    (soon) hash-chain inputs.  Hashed or replayed payloads should pass
    compact ``separators=(",", ":")`` as well.

    Bad::

        json.dumps({"seq": seq, "kind": kind})

    Good::

        json.dumps({"seq": seq, "kind": kind}, sort_keys=True,
                   separators=(",", ":"))
    """

    code = "RL004"
    name = "json-canonical"
    summary = "json.dumps without sort_keys=True — dict order leaks into bytes"
    rationale = (
        "ledger events are hashed and replayed byte-for-byte; canonical JSON "
        "(sorted keys, and compact separators on hashed paths) is the contract."
    )

    _TARGETS = frozenset({"json.dumps", "json.dump"})

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve(node.func)
        if target in self._TARGETS:
            dynamic = any(kw.arg is None for kw in node.keywords)
            sort_keys = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            canonical = (
                sort_keys is not None
                and isinstance(sort_keys.value, ast.Constant)
                and sort_keys.value.value is True
            )
            if not dynamic and not canonical:
                self.flag(node, f"{target}() without sort_keys=True; {self.summary}")
        self.generic_visit(node)


@register_rule
class WallClockRule(Rule):
    """RL005 — wall-clock reads live in :mod:`repro.util.timer`.

    Scattered ``time.*``/``datetime.now`` reads sneak nondeterministic
    values into results and make overhead accounting inconsistent; the
    ``Timer``/``TimingBreakdown`` wrappers are the sanctioned clock.

    Bad::

        start = time.perf_counter(); ...; elapsed = time.perf_counter() - start

    Good::

        with Timer() as t: ...
        elapsed = t.elapsed
    """

    code = "RL005"
    name = "wall-clock"
    summary = "wall-clock read outside repro.util.timer; use Timer/TimingBreakdown"
    rationale = (
        "timestamps in outputs are nondeterministic by construction; "
        "confining clock reads to util.timer keeps them out of data paths "
        "and the overhead accounting uniform."
    )
    exempt = ("repro/util/timer.py",)

    _CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve(node.func)
        if target in self._CLOCKS:
            self.flag(node, f"{target}() call; {self.summary}")
        self.generic_visit(node)


@register_rule
class FloatSumRule(Rule):
    """RL006 — float accumulation uses ``math.fsum``, not builtin ``sum``.

    Builtin ``sum`` is a left fold whose float result depends on operand
    order — exactly what varies across backends and rank orderings (the
    PR 1 ulp-drift bug class).  ``math.fsum`` is exactly rounded and
    therefore order-independent.  The rule fires on the shapes that are
    float accumulation in this codebase: summing a ``.values()`` view,
    a ``sum(x) / n`` mean, or elements with float-typed arithmetic.

    Bad::

        mean = sum(residuals) / len(residuals)

    Good::

        mean = math.fsum(residuals) / len(residuals)
    """

    code = "RL006"
    name = "float-sum"
    summary = "order-sensitive float accumulation via builtin sum; use math.fsum"
    rationale = (
        "left-fold float addition is order-dependent to the ulp, which breaks "
        "bitwise backend equivalence; math.fsum is exact and order-independent."
    )

    @staticmethod
    def _element_is_floaty(elt: ast.AST) -> bool:
        for sub in ast.walk(elt):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and len(node.args) >= 1
        ):
            arg = node.args[0]
            values_view = (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "values"
                and not arg.args
            )
            parent = self.ctx.parent(node)
            mean_shape = (
                isinstance(parent, ast.BinOp)
                and isinstance(parent.op, ast.Div)
                and parent.left is node
                and isinstance(arg, (ast.Name, ast.Attribute))
            )
            floaty_elements = isinstance(
                arg, (ast.GeneratorExp, ast.ListComp)
            ) and self._element_is_floaty(arg.elt)
            if values_view or mean_shape or floaty_elements:
                self.flag(node)
        self.generic_visit(node)


@register_rule
class BroadExceptRule(Rule):
    """RL007 — no bare or blanket exception handlers.

    ``except Exception`` (and worse, bare ``except:``, which also eats
    ``KeyboardInterrupt``/``SystemExit``) converts unexpected states
    into silently wrong results — in this system, into silently
    non-reproducible ones.  Handlers must name the exception types the
    code actually expects; a handler that re-raises as-is is allowed.

    Bad::

        try: resource_tracker.unregister(name)
        except Exception: pass

    Good::

        try: resource_tracker.unregister(name)
        except (ImportError, AttributeError, OSError): pass
    """

    code = "RL007"
    name = "broad-except"
    summary = "bare/broad exception handler; catch the specific expected types"
    rationale = (
        "blanket handlers swallow the very anomalies the replay/equivalence "
        "guarantees exist to surface, and bare except also eats "
        "KeyboardInterrupt/SystemExit."
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self._BROAD

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.flag(node, f"bare except; {self.summary}")
        else:
            types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            reraises = any(
                isinstance(sub, ast.Raise) and sub.exc is None
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if any(self._is_broad(t) for t in types) and not reraises:
                self.flag(node)
        self.generic_visit(node)


@register_rule
class MutableDefaultRule(Rule):
    """RL008 — no mutable default arguments.

    A mutable default is created once and shared across calls; state
    leaking between campaign runs through a default list/dict is a
    classic source of run-order-dependent results.

    Bad::

        def run(self, fields=[]): ...

    Good::

        def run(self, fields=None):
            fields = [] if fields is None else fields
    """

    code = "RL008"
    name = "mutable-default"
    summary = "mutable default argument is shared across calls; default to None"
    rationale = (
        "a shared default accumulates state across calls, making results "
        "depend on call history rather than inputs."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})

    def _check_defaults(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            )
            if mutable:
                self.flag(default)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


@register_rule
class CompressorContractRule(Rule):
    """RL009 — compressors come from the registry, not direct construction.

    PR 5 funnelled every layer through
    :func:`repro.compression.api.resolve_compressor` so specs stay
    serializable (ledger schema v2 records them) and capability holes
    fail with a typed error.  Direct class construction outside the
    compression package bypasses both guarantees.

    Bad::

        comp = SZCompressor(codec="zlib")

    Good::

        comp = resolve_compressor("sz:codec=zlib")
    """

    code = "RL009"
    name = "compressor-contract"
    summary = (
        "direct compressor construction bypasses resolve_compressor and "
        "the registry's capability checks"
    )
    rationale = (
        "specs resolved by the registry are serializable (ledger schema v2) "
        "and capability-checked; ad-hoc instances are neither."
    )
    exempt = ("repro/compression/",)

    _CLASSES = frozenset(
        {"SZCompressor", "AdaptiveSZCompressor", "ZFPLikeCompressor"}
    )

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve(node.func)
        if target is not None:
            leaf = target.rsplit(".", 1)[-1]
            if leaf in self._CLASSES:
                self.flag(node, f"{leaf}() constructed directly; {self.summary}")
        self.generic_visit(node)


@register_rule
class HandRolledRetryRule(Rule):
    """RL010 — retries and sleeps live in ``repro.resilience``, nowhere else.

    A hand-rolled retry loop — ``time.sleep`` between attempts, or a
    ``while True`` that swallows broad exceptions — has none of the
    properties the stream path's fault-tolerance guarantees rest on: no
    seeded (deterministic) jitter, no attempt budget, no typed
    retryable/fatal classification, and no ``RetryExhaustedError`` for
    the degradation path to catch.  PR 7 centralized all of that in
    :class:`repro.resilience.retry.RetryPolicy`; everything else calls
    it.

    Bad::

        while True:
            try:
                return load_snapshot(path)
            except Exception:
                time.sleep(0.1)

    Good::

        policy = RetryPolicy(max_attempts=3)
        return policy.execute(lambda: load_snapshot(path), site="source.load")
    """

    code = "RL010"
    name = "hand-rolled-retry"
    summary = (
        "time.sleep / hand-rolled retry loop outside repro.resilience; "
        "use RetryPolicy.execute"
    )
    rationale = (
        "ad-hoc retries have unseeded timing, no attempt budget and no typed "
        "classification, so their behaviour (and any timing that leaks into "
        "outputs) is irreproducible; RetryPolicy centralizes all of it."
    )
    exempt = ("repro/resilience/",)

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.resolve(node.func) == "time.sleep":
            self.flag(node, f"time.sleep() call; {self.summary}")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        # `while True:` whose body catches Exception/BaseException (or
        # everything) without re-raising is the retry-loop shape: keep
        # going no matter what went wrong.
        forever = isinstance(node.test, ast.Constant) and node.test.value is True
        if forever:
            for sub in ast.walk(node):
                if not isinstance(sub, ast.ExceptHandler):
                    continue
                types = (
                    [sub.type]
                    if not isinstance(sub.type, ast.Tuple)
                    else list(sub.type.elts)
                )
                broad = sub.type is None or any(
                    isinstance(t, ast.Name) and t.id in ("Exception", "BaseException")
                    for t in types
                )
                reraises = any(
                    isinstance(s, ast.Raise) and s.exc is None
                    for stmt in sub.body
                    for s in ast.walk(stmt)
                )
                if broad and not reraises:
                    self.flag(
                        sub,
                        "while True with a broad except is a hand-rolled "
                        f"retry loop; {self.summary}",
                    )
        self.generic_visit(node)


@register_rule
class HotPathAllocationRule(Rule):
    """RL011 — compression hot paths reuse the workspace arena.

    PR 2 moved every per-block scratch buffer in the compress path into
    :class:`repro.compression.workspace.Workspace` so steady-state
    compression allocates nothing, and PR 8 batched the per-block Python
    loops into single kernel passes.  A fresh ``np.empty``/``np.zeros``
    inside a workspace-accepting function, or a Python loop that calls
    ``compress`` per block, quietly regresses both: the allocation
    defeats the arena, the loop defeats the batching.  The rule applies
    only under ``repro/compression/`` and only inside functions that
    take a ``ws``/``workspace`` parameter — code that opted into the
    arena contract.

    Bad::

        def _encode(self, arr, ws):
            scratch = np.empty(arr.shape, dtype=np.int64)

    Good::

        def _encode(self, arr, ws):
            scratch = ws.request("encode_scratch", arr.shape, np.int64)
    """

    code = "RL011"
    name = "hot-path-allocation"
    summary = (
        "fresh array allocation / per-block compress loop inside a "
        "workspace-accepting compression hot path"
    )
    rationale = (
        "workspace-accepting functions are the steady-state compress path: "
        "fresh np.empty/np.zeros defeats the PR 2 arena reuse and per-block "
        "compress loops defeat the PR 8 batched kernels; route scratch "
        "through Workspace.request and blocks through the batch entry points."
    )
    only = ("repro/compression/",)

    _ALLOCATORS = frozenset(
        {"numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full"}
    )
    _BLOCK_CALLS = frozenset({"compress", "_compress_checked"})
    _WS_PARAMS = frozenset({"ws", "workspace"})

    def _is_hot(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        args = node.args
        names = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        return any(name in self._WS_PARAMS for name in names)

    _LOOPS = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)

    def _inside_loop(self, node: ast.AST, func: ast.AST) -> bool:
        cur = self.ctx.parent(node)
        while cur is not None and cur is not func:
            if isinstance(cur, self._LOOPS):
                return True
            cur = self.ctx.parent(cur)
        return False

    def _check_hot_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        if not self._is_hot(node):
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            target = self.ctx.resolve(sub.func)
            if target in self._ALLOCATORS:
                self.flag(
                    sub,
                    f"{target}() in workspace-accepting "
                    f"{node.name}(); use Workspace.request",
                )
            elif (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in self._BLOCK_CALLS
                and self._inside_loop(sub, node)
            ):
                self.flag(
                    sub,
                    f".{sub.func.attr}() called per block in a Python "
                    f"loop inside {node.name}(); use the batched "
                    "compress_many path",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_hot_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_hot_function(node)
        self.generic_visit(node)


@register_rule
class AdHocTelemetryRule(Rule):
    """RL012 — metrics/spans come from the ``repro.telemetry`` factories.

    Telemetry primitives constructed outside the registry — a
    module-level ``Counter("x")``, a private ``Tracer()``, a
    hand-assembled span dict — are invisible to the exporters, survive
    test resets, and fragment the one process-wide trace the
    observability layer promises.  Inside ``repro/telemetry/`` the
    constructors are the implementation; everywhere else, metrics come
    from ``get_registry().counter/gauge/histogram(...)`` and spans from
    ``get_tracer().span(...)``.

    Bad::

        from repro.telemetry import Counter
        RETRIES = Counter("retries")           # ad-hoc module metric
        rec = {"span_id": 1, "parent_id": 0, "name": "x"}  # bare span dict

    Good::

        telemetry.get_registry().counter("retries").inc()
        with telemetry.get_tracer().span("x"): ...
    """

    code = "RL012"
    name = "ad-hoc-telemetry"
    summary = (
        "telemetry primitive constructed outside the repro.telemetry "
        "factories; use get_registry()/get_tracer()"
    )
    rationale = (
        "metrics and spans not owned by the process registry/tracer never "
        "reach the exporters and cannot be reset between tests; the "
        "get_registry()/get_tracer() factories are the only sanctioned "
        "constructors outside the telemetry package itself."
    )
    exempt = ("repro/telemetry/",)

    _PRIMITIVES = frozenset(
        {
            f"repro.telemetry{mod}.{cls}"
            for mod in ("", ".registry", ".tracer")
            for cls in ("Counter", "Gauge", "Histogram", "Span", "Tracer",
                        "MetricsRegistry")
        }
    )

    #: Key combinations that identify a hand-assembled span record
    #: (the tracer wire format, and the Chrome trace_event shape).
    _SPAN_KEY_SETS = (
        frozenset({"span_id", "parent_id"}),
        frozenset({"ph", "ts", "dur"}),
    )

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve(node.func)
        if target in self._PRIMITIVES:
            self.flag(
                node,
                f"direct {target.rsplit('.', 1)[-1]}(...) construction; "
                f"{self.summary}",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        keys = {
            k.value
            for k in node.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        }
        if any(wanted <= keys for wanted in self._SPAN_KEY_SETS):
            self.flag(
                node,
                "bare span-record dict literal; spans come from "
                "get_tracer().span(...) and export via Tracer.export_spans()",
            )
        self.generic_visit(node)
