"""Entry point for ``python -m repro.lint``."""

import sys

from repro.lint.cli import main

sys.exit(main())
