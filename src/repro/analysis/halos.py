"""Grid-based halo finder, following Nyx's density-threshold algorithm.

Per the paper (§3.4): cells with density above ``t_boundary`` are
*candidates*; connected candidate groups whose maximum density exceeds
``t_halo`` are *halos*.  For each halo we record

- mass — cell-weighted density sum times cell volume,
- position — centroid of member cells,
- size — member cell count,
- peak density.

All per-halo reductions are ``bincount`` based (no Python loop over
halos).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.labeling import label_components
from repro.util.validation import check_3d

__all__ = ["HaloCatalog", "find_halos", "candidate_mask"]


@dataclass
class HaloCatalog:
    """Halos found in one density field, sorted by descending mass."""

    masses: np.ndarray
    positions: np.ndarray  # (n, 3) cell coordinates of centroids
    sizes: np.ndarray  # member cell counts
    peak_densities: np.ndarray
    t_boundary: float
    t_halo: float
    n_candidate_cells: int

    @property
    def n_halos(self) -> int:
        return len(self.masses)

    def select_by_mass(self, min_mass: float) -> "HaloCatalog":
        """Sub-catalog of halos with mass >= ``min_mass``."""
        keep = self.masses >= min_mass
        return HaloCatalog(
            masses=self.masses[keep],
            positions=self.positions[keep],
            sizes=self.sizes[keep],
            peak_densities=self.peak_densities[keep],
            t_boundary=self.t_boundary,
            t_halo=self.t_halo,
            n_candidate_cells=self.n_candidate_cells,
        )


def candidate_mask(density: np.ndarray, t_boundary: float) -> np.ndarray:
    """Boolean mask of halo-candidate cells (density above ``t_boundary``)."""
    rho = check_3d(density, "density")
    return rho > t_boundary


def find_halos(
    density: np.ndarray,
    t_boundary: float,
    t_halo: float | None = None,
    cell_volume: float = 1.0,
    periodic: bool = True,
    min_cells: int = 1,
) -> HaloCatalog:
    """Find halos in a 3-D density field.

    Parameters
    ----------
    density:
        3-D density array.
    t_boundary:
        Candidate-cell threshold (the paper's ``t_boundary``).
    t_halo:
        Peak threshold a group must exceed to count as a halo; defaults
        to ``2 * t_boundary``.
    cell_volume:
        Volume weight applied to masses.
    periodic:
        Whether components wrap across the box boundary.
    min_cells:
        Discard groups smaller than this many cells.
    """
    rho = check_3d(density, "density")
    if t_halo is None:
        t_halo = 2.0 * t_boundary
    if t_halo < t_boundary:
        raise ValueError(
            f"t_halo ({t_halo}) must be >= t_boundary ({t_boundary})"
        )

    mask = rho > t_boundary
    labels, n_groups = label_components(mask, periodic=periodic)
    n_candidates = int(mask.sum())
    if n_groups == 0:
        empty = np.empty(0)
        return HaloCatalog(
            masses=empty,
            positions=np.empty((0, 3)),
            sizes=np.empty(0, dtype=np.int64),
            peak_densities=empty,
            t_boundary=float(t_boundary),
            t_halo=float(t_halo),
            n_candidate_cells=n_candidates,
        )

    lab_flat = labels.ravel()
    member = lab_flat > 0
    lab_m = lab_flat[member]
    rho_m = rho.ravel()[member]

    sizes = np.bincount(lab_m, minlength=n_groups + 1)[1:]
    masses = np.bincount(lab_m, weights=rho_m, minlength=n_groups + 1)[1:] * cell_volume
    peaks = np.zeros(n_groups + 1)
    np.maximum.at(peaks, lab_m, rho_m)
    peaks = peaks[1:]

    coords = np.stack(np.unravel_index(np.flatnonzero(member), rho.shape), axis=1)
    centroids = np.stack(
        [
            np.bincount(lab_m, weights=coords[:, d], minlength=n_groups + 1)[1:]
            for d in range(3)
        ],
        axis=1,
    ) / np.maximum(sizes, 1)[:, None]

    is_halo = (peaks > t_halo) & (sizes >= min_cells)
    order = np.argsort(-masses[is_halo], kind="stable")
    return HaloCatalog(
        masses=masses[is_halo][order],
        positions=centroids[is_halo][order],
        sizes=sizes[is_halo][order],
        peak_densities=peaks[is_halo][order],
        t_boundary=float(t_boundary),
        t_halo=float(t_halo),
        n_candidate_cells=n_candidates,
    )
