"""Particle friends-of-friends halo finder (Davis et al. 1985).

Particles closer than a linking length belong to the same halo.  We use
a from-scratch cell-list neighbour search: particles are hashed into a
grid of cells whose side equals the linking length, so all friend pairs
live in adjacent cells.  Pair generation and the union-find pass
(:meth:`~repro.analysis.labeling.UnionFind.union_many`) are both
vectorized.

Also computes the paper's §2.1 halo notions: the *most connected
particle* (most friends within a halo) and per-halo centres of mass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.labeling import UnionFind

__all__ = ["FoFResult", "friends_of_friends"]


@dataclass
class FoFResult:
    """Friends-of-friends output.

    Attributes
    ----------
    group_ids:
        Group index per particle (0..n_groups-1).
    group_sizes:
        Particle counts per group (descending order not guaranteed).
    centers:
        (n_groups, 3) centres of mass.
    most_connected:
        Particle index with the highest friend count in each group.
    """

    group_ids: np.ndarray
    group_sizes: np.ndarray
    centers: np.ndarray
    most_connected: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.group_sizes)

    def groups_with_at_least(self, min_size: int) -> np.ndarray:
        """Indices of groups holding at least ``min_size`` particles."""
        return np.flatnonzero(self.group_sizes >= min_size)


def _candidate_pairs(positions: np.ndarray, linking_length: float, box_size: float | None) -> np.ndarray:
    """(p, q) index pairs of particles in the same or adjacent hash cells."""
    n = len(positions)
    cell = np.floor(positions / linking_length).astype(np.int64)
    if box_size is not None:
        ncell = max(int(np.floor(box_size / linking_length)), 1)
        cell %= ncell
    else:
        cell -= cell.min(axis=0)
        ncell = int(cell.max()) + 2 if n else 1

    dims = np.array([ncell, ncell, ncell], dtype=np.int64)
    key = (cell[:, 0] * dims[1] + cell[:, 1]) * dims[2] + cell[:, 2]
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]

    pairs: list[np.ndarray] = []
    # 13 unique neighbour offsets + self cell cover all adjacent pairs once.
    offsets = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) > (0, 0, 0) or (dx, dy, dz) == (0, 0, 0):
                    offsets.append((dx, dy, dz))

    # Start index of every run of equal keys.
    starts = np.flatnonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]])
    ends = np.r_[starts[1:], n]
    uniq_keys = sorted_key[starts]

    for dx, dy, dz in offsets:
        if (dx, dy, dz) == (0, 0, 0):
            # Pairs within the same cell.
            for s, e in zip(starts.tolist(), ends.tolist()):
                if e - s > 1:
                    idx = order[s:e]
                    i, j = np.triu_indices(e - s, k=1)
                    pairs.append(np.stack([idx[i], idx[j]], axis=1))
            continue
        nbr_cell = cell + np.array([dx, dy, dz])
        if box_size is not None:
            nbr_cell %= ncell
        else:
            oob = ((nbr_cell < 0) | (nbr_cell >= dims)).any(axis=1)
        nbr_key = (nbr_cell[:, 0] * dims[1] + nbr_cell[:, 1]) * dims[2] + nbr_cell[:, 2]
        if box_size is None:
            nbr_key[oob] = -1
        # For each particle, the run of particles in its neighbour cell.
        run = np.searchsorted(uniq_keys, nbr_key)
        run_clip = np.minimum(run, len(uniq_keys) - 1)
        has = (uniq_keys[run_clip] == nbr_key) & (nbr_key >= 0)
        src = np.flatnonzero(has)
        for p in src.tolist():
            s, e = starts[run_clip[p]], ends[run_clip[p]]
            block = order[s:e]
            pairs.append(np.stack([np.full(len(block), p), block], axis=1))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(pairs, axis=0)


def friends_of_friends(
    positions: np.ndarray,
    linking_length: float,
    box_size: float | None = None,
) -> FoFResult:
    """Group particles whose chained pairwise distance is below ``linking_length``.

    Parameters
    ----------
    positions:
        ``(n, 3)`` particle positions.
    linking_length:
        FoF linking length ``b`` in the same units.
    box_size:
        If given, distances use periodic wrapping in a cubic box.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    if linking_length <= 0:
        raise ValueError(f"linking_length must be positive, got {linking_length}")
    n = len(pos)
    if n == 0:
        return FoFResult(
            group_ids=np.empty(0, dtype=np.int64),
            group_sizes=np.empty(0, dtype=np.int64),
            centers=np.empty((0, 3)),
            most_connected=np.empty(0, dtype=np.int64),
        )

    cand = _candidate_pairs(pos, linking_length, box_size)
    if len(cand):
        d = pos[cand[:, 0]] - pos[cand[:, 1]]
        if box_size is not None:
            d -= box_size * np.rint(d / box_size)
        close = (d**2).sum(axis=1) <= linking_length**2
        edges = cand[close]
    else:
        edges = cand

    uf = UnionFind(n)
    if len(edges):
        uf.union_many(edges[:, 0], edges[:, 1])
    roots = uf.roots()
    uniq, group_ids = np.unique(roots, return_inverse=True)
    n_groups = len(uniq)

    sizes = np.bincount(group_ids, minlength=n_groups)
    centers = np.stack(
        [np.bincount(group_ids, weights=pos[:, d], minlength=n_groups) for d in range(3)],
        axis=1,
    ) / sizes[:, None]

    # Friend counts per particle (each edge contributes to both ends).
    friend_count = np.zeros(n, dtype=np.int64)
    if len(edges):
        np.add.at(friend_count, edges[:, 0], 1)
        np.add.at(friend_count, edges[:, 1], 1)
    # Most connected particle per group: argmax via lexsort on
    # (group, friend_count).
    order = np.lexsort((friend_count, group_ids))
    last_of_group = order[np.r_[np.flatnonzero(group_ids[order][1:] != group_ids[order][:-1]), n - 1]]
    most_connected = last_of_group

    return FoFResult(
        group_ids=group_ids,
        group_sizes=sizes,
        centers=centers,
        most_connected=most_connected,
    )
