"""3-D matter power spectrum, the paper's primary FFT-based analysis.

The density field is Fourier transformed; mode powers ``|delta_k|^2``
are binned by integer wavenumber (in units of the fundamental mode
``2*pi/box``).  The paper's acceptance criterion (§2.1, Fig. 13) is that
the reconstructed-to-original ratio stays within ``1 +/- 0.01`` for all
``k`` below a cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.util.validation import check_3d

__all__ = [
    "PowerSpectrum",
    "power_spectrum",
    "spectrum_ratio",
    "binned_worst_deviation",
    "check_spectrum_quality",
]


@dataclass
class PowerSpectrum:
    """Binned isotropic power spectrum.

    Attributes
    ----------
    k:
        Bin-centre wavenumbers in units of the fundamental mode
        (1, 2, 3, ...).
    power:
        Mean mode power per bin (normalized per cell, so comparable
        across grid sizes).
    n_modes:
        Number of Fourier modes in each bin (used by the error model to
        predict ratio variance).
    """

    k: np.ndarray
    power: np.ndarray
    n_modes: np.ndarray


#: Largest rfft mode count whose bin/weight arrays are worth pinning in
#: the per-shape caches (~17 MB of int64 bins at the limit; covers grids
#: to ~128^3).  Bigger grids rebuild per call rather than retaining
#: hundreds of MB for the process lifetime.
_CACHE_MAX_MODES = 1 << 21


def _rfft_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    return (*shape[:-1], shape[-1] // 2 + 1)


def _build_mode_bins(shape: tuple[int, ...]) -> np.ndarray:
    kx = np.fft.fftfreq(shape[0]) * shape[0]
    ky = np.fft.fftfreq(shape[1]) * shape[1]
    kz = np.fft.rfftfreq(shape[2]) * shape[2]
    kk = np.sqrt(
        kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
    )
    bins = np.rint(kk).astype(np.int64)
    bins.setflags(write=False)
    return bins


def _build_rfft_weights(shape: tuple[int, ...]) -> np.ndarray:
    # rfftn stores only half the kz modes; interior planes weigh 2 so
    # binned power matches the full fftn result.
    weights = np.full(_rfft_shape(shape), 2.0)
    weights[..., 0] = 1.0
    if shape[2] % 2 == 0:
        weights[..., -1] = 1.0
    weights.setflags(write=False)
    return weights


_cached_mode_bins = lru_cache(maxsize=8)(_build_mode_bins)
_cached_rfft_weights = lru_cache(maxsize=8)(_build_rfft_weights)


def _mode_bins(shape: tuple[int, ...]) -> np.ndarray:
    """Integer |k| bin index for every rfft mode of a grid of ``shape``.

    Cached per grid shape (read-only) up to ``_CACHE_MAX_MODES``: sweeps
    evaluate many same-shape fields, and rebuilding the 3-D sqrt/rint
    arrays dominated the binning cost.
    """
    if int(np.prod(_rfft_shape(shape))) > _CACHE_MAX_MODES:
        return _build_mode_bins(shape)
    return _cached_mode_bins(shape)


def _rfft_weights(shape: tuple[int, ...]) -> np.ndarray:
    """Mode multiplicity for every rfft mode of a grid of ``shape``,
    cached like :func:`_mode_bins`."""
    if int(np.prod(_rfft_shape(shape))) > _CACHE_MAX_MODES:
        return _build_rfft_weights(shape)
    return _cached_rfft_weights(shape)


def power_spectrum(
    field: np.ndarray,
    nbins: int | None = None,
    subtract_mean: bool = True,
) -> PowerSpectrum:
    """Isotropically binned power spectrum of a 3-D field.

    Parameters
    ----------
    field:
        3-D array (density, temperature, ...).
    nbins:
        Number of k bins (default: up to the 1-D Nyquist frequency).
    subtract_mean:
        Remove the mean first (the DC mode dominates otherwise).
    """
    arr = check_3d(field, "field")
    if subtract_mean:
        arr = arr - arr.mean()
    n_total = arr.size

    fk = np.fft.rfftn(arr)
    weights = _rfft_weights(arr.shape)
    bins = _mode_bins(arr.shape)
    kmax = min(s // 2 for s in arr.shape)
    if nbins is None:
        nbins = kmax
    nbins = min(nbins, kmax)
    if nbins < 1:
        raise ValueError("grid too small for any spectrum bins")

    power_flat = (np.abs(fk) ** 2 * weights).ravel()
    bins_flat = bins.ravel()
    keep = (bins_flat >= 1) & (bins_flat <= nbins)
    sums = np.bincount(bins_flat[keep], weights=power_flat[keep], minlength=nbins + 1)
    counts = np.bincount(bins_flat[keep], weights=weights.ravel()[keep], minlength=nbins + 1)
    k = np.arange(1, nbins + 1)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_power = np.where(counts[1:] > 0, sums[1:] / counts[1:], 0.0)
    # Normalize per cell so spectra of different grid sizes are comparable.
    return PowerSpectrum(k=k, power=mean_power / n_total, n_modes=counts[1:].astype(np.int64))


def spectrum_ratio(original: np.ndarray, reconstructed: np.ndarray, nbins: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin ratio ``P'(k)/P(k)`` between reconstructed and original fields."""
    ps_orig = power_spectrum(original, nbins=nbins)
    ps_rec = power_spectrum(reconstructed, nbins=nbins)
    if (ps_orig.power <= 0).any():
        raise ValueError("original spectrum has empty bins; reduce nbins")
    return ps_orig.k, ps_rec.power / ps_orig.power


def binned_worst_deviation(
    ps_orig: PowerSpectrum, ps_rec: PowerSpectrum, k_max: int
) -> float:
    """``max_k |P'(k)/P(k) - 1|`` over ``k < k_max`` for two binned spectra.

    The shared core of the paper's acceptance criterion, operating on
    already-binned spectra so reference-cached evaluators can reuse the
    original's spectrum across many reconstructions.
    """
    if (ps_orig.power <= 0).any():
        raise ValueError("original spectrum has empty bins; reduce nbins")
    ratio = ps_rec.power / ps_orig.power
    mask = ps_orig.k < k_max
    if not mask.any():
        raise ValueError(f"no spectrum bins below k_max={k_max}")
    return float(np.max(np.abs(ratio[mask] - 1.0)))


def check_spectrum_quality(
    original: np.ndarray,
    reconstructed: np.ndarray,
    tolerance: float = 0.01,
    k_max: int = 10,
) -> tuple[bool, float]:
    """The paper's power-spectrum acceptance test.

    Returns ``(passed, worst_deviation)`` where ``worst_deviation`` is
    ``max_k |P'(k)/P(k) - 1|`` over ``k < k_max``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    # Only bins strictly below k_max are inspected, so stop both binning
    # passes at k_max - 1 instead of running them all the way to Nyquist
    # (the floor of 1 keeps the k_max<=1 "no spectrum bins" error path).
    nbins = max(int(k_max) - 1, 1)
    ps_orig = power_spectrum(original, nbins=nbins)
    ps_rec = power_spectrum(reconstructed, nbins=nbins)
    worst = binned_worst_deviation(ps_orig, ps_rec, k_max)
    return worst <= tolerance, worst
