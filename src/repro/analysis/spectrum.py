"""3-D matter power spectrum, the paper's primary FFT-based analysis.

The density field is Fourier transformed; mode powers ``|delta_k|^2``
are binned by integer wavenumber (in units of the fundamental mode
``2*pi/box``).  The paper's acceptance criterion (§2.1, Fig. 13) is that
the reconstructed-to-original ratio stays within ``1 +/- 0.01`` for all
``k`` below a cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_3d

__all__ = ["PowerSpectrum", "power_spectrum", "spectrum_ratio", "check_spectrum_quality"]


@dataclass
class PowerSpectrum:
    """Binned isotropic power spectrum.

    Attributes
    ----------
    k:
        Bin-centre wavenumbers in units of the fundamental mode
        (1, 2, 3, ...).
    power:
        Mean mode power per bin (normalized per cell, so comparable
        across grid sizes).
    n_modes:
        Number of Fourier modes in each bin (used by the error model to
        predict ratio variance).
    """

    k: np.ndarray
    power: np.ndarray
    n_modes: np.ndarray


def _mode_bins(shape: tuple[int, ...]) -> np.ndarray:
    """Integer |k| bin index for every rfft mode of a grid of ``shape``."""
    kx = np.fft.fftfreq(shape[0]) * shape[0]
    ky = np.fft.fftfreq(shape[1]) * shape[1]
    kz = np.fft.rfftfreq(shape[2]) * shape[2]
    kk = np.sqrt(
        kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
    )
    return np.rint(kk).astype(np.int64)


def power_spectrum(
    field: np.ndarray,
    nbins: int | None = None,
    subtract_mean: bool = True,
) -> PowerSpectrum:
    """Isotropically binned power spectrum of a 3-D field.

    Parameters
    ----------
    field:
        3-D array (density, temperature, ...).
    nbins:
        Number of k bins (default: up to the 1-D Nyquist frequency).
    subtract_mean:
        Remove the mean first (the DC mode dominates otherwise).
    """
    arr = check_3d(field, "field")
    if subtract_mean:
        arr = arr - arr.mean()
    n_total = arr.size

    fk = np.fft.rfftn(arr)
    # rfftn stores only half the kz modes; weight interior planes by 2 so
    # binned power matches the full fftn result.
    weights = np.full(fk.shape, 2.0)
    weights[..., 0] = 1.0
    if arr.shape[2] % 2 == 0:
        weights[..., -1] = 1.0

    bins = _mode_bins(arr.shape)
    kmax = min(s // 2 for s in arr.shape)
    if nbins is None:
        nbins = kmax
    nbins = min(nbins, kmax)
    if nbins < 1:
        raise ValueError("grid too small for any spectrum bins")

    power_flat = (np.abs(fk) ** 2 * weights).ravel()
    bins_flat = bins.ravel()
    keep = (bins_flat >= 1) & (bins_flat <= nbins)
    sums = np.bincount(bins_flat[keep], weights=power_flat[keep], minlength=nbins + 1)
    counts = np.bincount(bins_flat[keep], weights=weights.ravel()[keep], minlength=nbins + 1)
    k = np.arange(1, nbins + 1)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_power = np.where(counts[1:] > 0, sums[1:] / counts[1:], 0.0)
    # Normalize per cell so spectra of different grid sizes are comparable.
    return PowerSpectrum(k=k, power=mean_power / n_total, n_modes=counts[1:].astype(np.int64))


def spectrum_ratio(original: np.ndarray, reconstructed: np.ndarray, nbins: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin ratio ``P'(k)/P(k)`` between reconstructed and original fields."""
    ps_orig = power_spectrum(original, nbins=nbins)
    ps_rec = power_spectrum(reconstructed, nbins=nbins)
    if (ps_orig.power <= 0).any():
        raise ValueError("original spectrum has empty bins; reduce nbins")
    return ps_orig.k, ps_rec.power / ps_orig.power


def check_spectrum_quality(
    original: np.ndarray,
    reconstructed: np.ndarray,
    tolerance: float = 0.01,
    k_max: int = 10,
) -> tuple[bool, float]:
    """The paper's power-spectrum acceptance test.

    Returns ``(passed, worst_deviation)`` where ``worst_deviation`` is
    ``max_k |P'(k)/P(k) - 1|`` over ``k < k_max``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    k, ratio = spectrum_ratio(original, reconstructed)
    mask = k < k_max
    if not mask.any():
        raise ValueError(f"no spectrum bins below k_max={k_max}")
    worst = float(np.max(np.abs(ratio[mask] - 1.0)))
    return worst <= tolerance, worst
