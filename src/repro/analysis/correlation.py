"""Two-point correlation function via the Wiener-Khinchin theorem.

The matter power spectrum is the Fourier transform of the two-point
correlation ``xi(r)`` (§2.1); we provide the inverse direction as a
cross-check used by the simulation tests: the correlation of a GRF must
decay with distance and match the inverse transform of its ``P(k)``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_3d

__all__ = ["two_point_correlation"]


def two_point_correlation(field: np.ndarray, nbins: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Isotropically averaged autocorrelation ``xi(r)`` of a 3-D field.

    Returns ``(r, xi)`` with ``r`` in cell units; ``xi(0)`` equals the
    field variance.  Computed as ``ifftn(|fftn(field - mean)|^2)`` and
    binned by integer radius.
    """
    arr = check_3d(field, "field")
    arr = arr - arr.mean()
    fk = np.fft.fftn(arr)
    corr = np.fft.ifftn(np.abs(fk) ** 2).real / arr.size

    # Distance of each lag cell to the origin, with periodic wrapping.
    axes = [np.minimum(np.arange(n), n - np.arange(n)) for n in arr.shape]
    rr = np.sqrt(
        axes[0][:, None, None] ** 2
        + axes[1][None, :, None] ** 2
        + axes[2][None, None, :] ** 2
    )
    rmax = min(s // 2 for s in arr.shape)
    if nbins is None:
        nbins = rmax
    nbins = min(nbins, rmax)
    rbin = np.rint(rr).astype(np.int64).ravel()
    keep = rbin <= nbins
    sums = np.bincount(rbin[keep], weights=corr.ravel()[keep], minlength=nbins + 1)
    counts = np.bincount(rbin[keep], minlength=nbins + 1)
    r = np.arange(nbins + 1)
    xi = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return r, xi
