"""General-purpose distortion metrics (PSNR, MSE, NRMSE, MRE).

The paper's motivating argument (§1, §2.1) is that these metrics alone
cannot capture post-hoc analysis quality — "PSNR does not tell us how
the mass of a halo would be impacted".  They are still computed
throughout the benchmark reports for context.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mse",
    "nrmse",
    "psnr",
    "mean_relative_error",
    "FieldMoments",
    "ErrorSummary",
    "error_summary",
]


def _pair(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("arrays must be non-empty")
    return a, b


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, reconstructed)
    return float(np.mean((a - b) ** 2))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the original value range."""
    a, b = _pair(original, reconstructed)
    rng = float(a.max() - a.min())
    if rng == 0:
        raise ValueError("original data has zero range; NRMSE undefined")
    return float(np.sqrt(np.mean((a - b) ** 2)) / rng)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical arrays)."""
    a, b = _pair(original, reconstructed)
    err = np.mean((a - b) ** 2)
    if err == 0:
        return float("inf")
    rng = float(a.max() - a.min())
    if rng == 0:
        raise ValueError("original data has zero range; PSNR undefined")
    return float(20.0 * np.log10(rng) - 10.0 * np.log10(err))


def mean_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean pointwise relative error (original must be nonzero everywhere)."""
    a, b = _pair(original, reconstructed)
    if (a == 0).any():
        raise ValueError("mean relative error undefined: original contains zeros")
    return float(np.mean(np.abs((b - a) / a)))


@dataclass(frozen=True)
class FieldMoments:
    """Reduction moments of one field: min, max, sum, sum of squares.

    The distortion metrics consume only the min/max range; Σ and Σ² ride
    along so a cached reference can also answer mean/energy questions
    (e.g. variance-driven rate calibration) without another full pass —
    the cost is two extra O(n) reductions paid once per field, amortized
    across every reconstruction evaluated against it.
    """

    minimum: float
    maximum: float
    total: float
    total_sq: float
    n: int

    @classmethod
    def from_field(cls, field: np.ndarray) -> "FieldMoments":
        a = np.asarray(field, dtype=np.float64)
        if a.size == 0:
            raise ValueError("arrays must be non-empty")
        flat = a.ravel()
        return cls(
            minimum=float(flat.min()),
            maximum=float(flat.max()),
            total=float(flat.sum()),
            total_sq=float(flat @ flat),
            n=flat.size,
        )

    @property
    def value_range(self) -> float:
        return self.maximum - self.minimum


@dataclass(frozen=True)
class ErrorSummary:
    """PSNR, NRMSE and their shared MSE from one fused error pass."""

    mse: float
    psnr_db: float
    nrmse_value: float


def error_summary(
    original: np.ndarray,
    reconstructed: np.ndarray,
    moments: FieldMoments | None = None,
) -> ErrorSummary:
    """PSNR and NRMSE computed from a single ``(a-b)`` pass.

    The separate :func:`psnr` / :func:`nrmse` functions each run their
    own ``mean((a-b)**2)`` and min/max reductions; this fuses them: one
    squared-error pass, one min/max pass (skipped entirely when cached
    ``moments`` of the original are supplied).  Semantics match the
    standalone functions: identical arrays give infinite PSNR, a
    zero-range original raises, and the error raised is the one the
    unfused ``psnr``-then-``nrmse`` sequence would have hit first.
    """
    a, b = _pair(original, reconstructed)
    d = (a - b).ravel()
    err = float(d @ d) / d.size
    if moments is None:
        moments = FieldMoments.from_field(a)
    rng = moments.value_range
    if rng == 0:
        if err == 0:
            # psnr() would return inf, then nrmse() raises.
            raise ValueError("original data has zero range; NRMSE undefined")
        raise ValueError("original data has zero range; PSNR undefined")
    if err == 0:
        return ErrorSummary(mse=0.0, psnr_db=float("inf"), nrmse_value=0.0)
    psnr_db = float(20.0 * np.log10(rng) - 10.0 * np.log10(err))
    return ErrorSummary(
        mse=err, psnr_db=psnr_db, nrmse_value=float(np.sqrt(err) / rng)
    )
