"""General-purpose distortion metrics (PSNR, MSE, NRMSE, MRE).

The paper's motivating argument (§1, §2.1) is that these metrics alone
cannot capture post-hoc analysis quality — "PSNR does not tell us how
the mass of a halo would be impacted".  They are still computed
throughout the benchmark reports for context.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "nrmse", "psnr", "mean_relative_error"]


def _pair(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("arrays must be non-empty")
    return a, b


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, reconstructed)
    return float(np.mean((a - b) ** 2))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the original value range."""
    a, b = _pair(original, reconstructed)
    rng = float(a.max() - a.min())
    if rng == 0:
        raise ValueError("original data has zero range; NRMSE undefined")
    return float(np.sqrt(np.mean((a - b) ** 2)) / rng)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical arrays)."""
    a, b = _pair(original, reconstructed)
    err = np.mean((a - b) ** 2)
    if err == 0:
        return float("inf")
    rng = float(a.max() - a.min())
    if rng == 0:
        raise ValueError("original data has zero range; PSNR undefined")
    return float(20.0 * np.log10(rng) - 10.0 * np.log10(err))


def mean_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean pointwise relative error (original must be nonzero everywhere)."""
    a, b = _pair(original, reconstructed)
    if (a == 0).any():
        raise ValueError("mean relative error undefined: original contains zeros")
    return float(np.mean(np.abs((b - a) / a)))
