"""Post-hoc analysis substrate: power spectrum and halo finding.

These are the two analyses whose distortion the paper's models predict:

- :mod:`repro.analysis.spectrum` — 3-D FFT matter power spectrum with
  the paper's acceptance criterion (``P'(k)/P(k)`` within ``1 +/- tol``
  for ``k < k_max``),
- :mod:`repro.analysis.halos` — Nyx-style grid halo finder (candidate
  threshold ``t_boundary``, halo threshold ``t_halo``, cell-weighted
  masses and centroid positions),
- :mod:`repro.analysis.labeling` — from-scratch 3-D connected-component
  labeling backing the halo finder,
- :mod:`repro.analysis.fof` — particle friends-of-friends finder,
- :mod:`repro.analysis.catalog` — halo catalog matching and the halo
  quality metrics (count change, position change, per-halo mass change),
- :mod:`repro.analysis.metrics` — the general-purpose distortion metrics
  (PSNR/MSE/...) the paper argues are insufficient on their own.
"""

from repro.analysis.spectrum import (
    PowerSpectrum,
    check_spectrum_quality,
    power_spectrum,
    spectrum_ratio,
)
from repro.analysis.correlation import two_point_correlation
from repro.analysis.labeling import label_components
from repro.analysis.halos import HaloCatalog, find_halos
from repro.analysis.fof import friends_of_friends
from repro.analysis.catalog import CatalogComparison, compare_catalogs
from repro.analysis.metrics import mse, nrmse, psnr, mean_relative_error
from repro.analysis.ssim import ssim3d

__all__ = [
    "PowerSpectrum",
    "power_spectrum",
    "spectrum_ratio",
    "check_spectrum_quality",
    "two_point_correlation",
    "label_components",
    "HaloCatalog",
    "find_halos",
    "friends_of_friends",
    "CatalogComparison",
    "compare_catalogs",
    "psnr",
    "mse",
    "nrmse",
    "mean_relative_error",
    "ssim3d",
]
