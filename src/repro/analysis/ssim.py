"""Structural similarity (SSIM) for 3-D scientific fields.

The paper's stated future work is applying the framework "to other HPC
applications and post-hoc analysis metrics such as climate simulation
with SSIM" (§5).  This module provides that extension point: a windowed
3-D SSIM implemented with box-filter moments (fully vectorized via
cumulative sums), plus the distortion model hook the optimizer needs —
an empirical SSIM-vs-eb curve fit in the same spirit as Eq. 15.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_3d

__all__ = ["ssim3d", "fit_ssim_curve", "ssim_tolerance_to_eb"]


def _box_filter(arr: np.ndarray, w: int) -> np.ndarray:
    """Mean over w^3 windows (valid positions only) via integral images."""
    c = arr
    for axis in range(3):
        c = np.cumsum(c, axis=axis)
        pad_shape = list(c.shape)
        pad_shape[axis] = 1
        c = np.concatenate([np.zeros(pad_shape, dtype=c.dtype), c], axis=axis)
    # Windowed sums via 8-corner inclusion-exclusion on the integral image.
    def corner(dx: int, dy: int, dz: int) -> np.ndarray:
        nx, ny, nz = arr.shape
        return c[
            dx : nx - w + 1 + dx,
            dy : ny - w + 1 + dy,
            dz : nz - w + 1 + dz,
        ]

    total = (
        corner(w, w, w)
        - corner(0, w, w)
        - corner(w, 0, w)
        - corner(w, w, 0)
        + corner(0, 0, w)
        + corner(0, w, 0)
        + corner(w, 0, 0)
        - corner(0, 0, 0)
    )
    return total / float(w**3)


def ssim3d(
    original: np.ndarray,
    reconstructed: np.ndarray,
    window: int = 7,
    data_range: float | None = None,
) -> float:
    """Mean structural similarity between two 3-D fields.

    Standard SSIM (Wang et al. 2004) with cubic windows; constants
    ``C1 = (0.01 L)^2`` and ``C2 = (0.03 L)^2`` where ``L`` is the value
    range of the original data.
    """
    x = check_3d(original, "original")
    y = check_3d(reconstructed, "reconstructed")
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if any(s < window for s in x.shape):
        raise ValueError(f"window {window} exceeds field extent {x.shape}")
    if data_range is None:
        data_range = float(x.max() - x.min())
    if data_range <= 0:
        raise ValueError("original field has zero range; SSIM undefined")

    mu_x = _box_filter(x, window)
    mu_y = _box_filter(y, window)
    xx = _box_filter(x * x, window) - mu_x**2
    yy = _box_filter(y * y, window) - mu_y**2
    xy = _box_filter(x * y, window) - mu_x * mu_y
    # Clamp tiny negative variances from floating-point cancellation.
    xx = np.maximum(xx, 0.0)
    yy = np.maximum(yy, 0.0)

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    num = (2 * mu_x * mu_y + c1) * (2 * xy + c2)
    den = (mu_x**2 + mu_y**2 + c1) * (xx + yy + c2)
    return float(np.mean(num / den))


def fit_ssim_curve(
    field: np.ndarray,
    compressor,
    probe_ebs: list[float],
    window: int = 7,
) -> tuple[float, float]:
    """Fit ``1 - SSIM = A * eb**p`` from probe compressions.

    Returns ``(A, p)``.  Mirrors the paper's empirical rate-model
    methodology (§3.5) for a distortion metric with no tractable
    closed-form propagation.
    """
    if len(probe_ebs) < 2:
        raise ValueError("need at least two probe error bounds")
    from repro.compression.sz import decompress

    f64 = np.asarray(field, dtype=np.float64)
    losses = []
    for eb in probe_ebs:
        recon = decompress(compressor.compress(field, float(eb)))
        losses.append(max(1.0 - ssim3d(f64, recon, window=window), 1e-12))
    x = np.log(np.asarray(probe_ebs, dtype=np.float64))
    y = np.log(np.asarray(losses))
    p, log_a = np.polyfit(x, y, 1)
    return float(np.exp(log_a)), float(p)


def ssim_tolerance_to_eb(a: float, p: float, min_ssim: float) -> float:
    """Invert the fitted curve: largest eb with ``SSIM >= min_ssim``."""
    if not 0 < min_ssim < 1:
        raise ValueError(f"min_ssim must be in (0, 1), got {min_ssim}")
    if a <= 0 or p <= 0:
        raise ValueError("curve parameters must be positive (loss grows with eb)")
    return float(((1.0 - min_ssim) / a) ** (1.0 / p))
