"""From-scratch connected-component labeling for sparse 3-D masks.

The grid halo finder needs connected components of the boolean mask
``density > t_boundary`` under 6-connectivity.  Halo candidates are
sparse (a small fraction of cells), so instead of a dense two-pass scan
we work on the candidate list directly:

1. extract flat indices of candidate cells (sorted by construction),
2. for each of the three positive axis directions, compute candidate
   neighbours via a vectorized ``searchsorted`` membership test,
3. union-find over the (few) resulting edges.

The only Python-level loop runs over edges between candidate cells,
which is O(candidates); everything else is vectorized.  Equivalence with
``scipy.ndimage.label`` is property-tested.
"""

from __future__ import annotations

import numpy as np

__all__ = ["label_components", "UnionFind"]


class UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def roots(self) -> np.ndarray:
        """Root id of every element (fully compressed)."""
        # Iterated gather converges in O(log depth) passes.
        parent = self.parent
        while True:
            grand = parent[parent]
            if (grand == parent).all():
                return parent
            parent = grand


def label_components(mask: np.ndarray, periodic: bool = False) -> tuple[np.ndarray, int]:
    """Label 6-connected components of a 3-D boolean mask.

    Parameters
    ----------
    mask:
        3-D boolean array.
    periodic:
        If True, components wrap around the box boundaries (cosmology
        boxes are periodic).

    Returns
    -------
    labels, n_components:
        ``labels`` has the mask's shape: 0 for background, 1..n for
        components (ordering follows the first flat index of each
        component).
    """
    mask = np.asarray(mask)
    if mask.ndim != 3:
        raise ValueError(f"mask must be 3-D, got shape {mask.shape}")
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)

    flat_idx = np.flatnonzero(mask.ravel())
    labels = np.zeros(mask.shape, dtype=np.int64)
    m = len(flat_idx)
    if m == 0:
        return labels, 0

    nx, ny, nz = mask.shape
    # Recover coordinates of candidate cells once.
    cx, cy, cz = np.unravel_index(flat_idx, mask.shape)

    uf = UnionFind(m)
    strides = (ny * nz, nz, 1)
    dims = (nx, ny, nz)
    coords = (cx, cy, cz)

    for axis in range(3):
        c = coords[axis]
        if periodic:
            neighbor_coord = (c + 1) % dims[axis]
            valid = np.ones(m, dtype=bool)
        else:
            neighbor_coord = c + 1
            valid = neighbor_coord < dims[axis]
        # Flat index of the +1 neighbour along this axis.
        delta = (neighbor_coord.astype(np.int64) - c) * strides[axis]
        nbr_flat = flat_idx + delta
        # Membership test: which neighbours are candidates themselves?
        pos = np.searchsorted(flat_idx, nbr_flat[valid])
        pos_clipped = np.minimum(pos, m - 1)
        hits = flat_idx[pos_clipped] == nbr_flat[valid]
        src = np.flatnonzero(valid)[hits]
        dst = pos_clipped[hits]
        for a, b in zip(src.tolist(), dst.tolist()):
            uf.union(a, b)

    roots = uf.roots()
    # Compact root ids to 1..n in order of first appearance.
    _, first_pos, compact = np.unique(roots, return_index=True, return_inverse=True)
    order = np.argsort(np.argsort(first_pos))
    labels.ravel()[flat_idx] = order[compact] + 1
    return labels, int(len(first_pos))
