"""From-scratch connected-component labeling for sparse 3-D masks.

The grid halo finder needs connected components of the boolean mask
``density > t_boundary`` under 6-connectivity.  Halo candidates are
sparse (a small fraction of cells), so instead of a dense two-pass scan
we work on the candidate list directly:

1. extract flat indices of candidate cells (sorted by construction),
2. for each of the three positive axis directions, compute candidate
   neighbours via a vectorized ``searchsorted`` membership test,
3. batched union-find over the resulting edges
   (:meth:`UnionFind.union_many`, iterated min-root hooking).

Everything is vectorized — including the union pass, which converges in
O(log n) array rounds instead of looping over edges in Python.
Equivalence with ``scipy.ndimage.label`` is property-tested.
"""

from __future__ import annotations

import numpy as np

__all__ = ["label_components", "UnionFind"]


class UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def union_many(self, a: np.ndarray, b: np.ndarray) -> None:
        """Union many ``(a[i], b[i])`` pairs without a per-edge Python loop.

        Iterated min-root hooking: fully compress the forest (pointer
        doubling via :meth:`roots`, O(log depth) array passes — never a
        per-element chase, so chain-shaped edge sets stay loglinear),
        attach every edge's larger root under its smaller
        (``np.minimum.at`` arbitrates edges hooking the same root), and
        repeat on the surviving edges until all endpoints agree; the
        distinct roots along any merge chain at least halve per round,
        so O(log n) rounds suffice.

        Roots end up being each component's minimum member index, and the
        tree is left fully compressed with size bookkeeping refreshed, so
        scalar :meth:`union` / :meth:`find` calls remain valid afterwards.
        """
        a = np.asarray(a, dtype=np.int64).ravel()
        b = np.asarray(b, dtype=np.int64).ravel()
        if a.shape != b.shape:
            raise ValueError(f"edge arrays differ in length: {a.shape} vs {b.shape}")
        if a.size == 0:
            return
        while True:
            self.parent = self.roots()
            ra = self.parent[a]
            rb = self.parent[b]
            live = ra != rb
            if not live.any():
                break
            lo = np.minimum(ra[live], rb[live])
            hi = np.maximum(ra[live], rb[live])
            np.minimum.at(self.parent, hi, lo)
            a, b = lo, hi
        # The forest is fully compressed now; one bincount refreshes the
        # per-root sizes.
        self.size = np.bincount(self.parent, minlength=len(self.parent))

    def roots(self) -> np.ndarray:
        """Root id of every element (fully compressed)."""
        # Iterated gather converges in O(log depth) passes.
        parent = self.parent
        while True:
            grand = parent[parent]
            if (grand == parent).all():
                return parent
            parent = grand


def label_components(mask: np.ndarray, periodic: bool = False) -> tuple[np.ndarray, int]:
    """Label 6-connected components of a 3-D boolean mask.

    Parameters
    ----------
    mask:
        3-D boolean array.
    periodic:
        If True, components wrap around the box boundaries (cosmology
        boxes are periodic).

    Returns
    -------
    labels, n_components:
        ``labels`` has the mask's shape: 0 for background, 1..n for
        components (ordering follows the first flat index of each
        component).
    """
    mask = np.asarray(mask)
    if mask.ndim != 3:
        raise ValueError(f"mask must be 3-D, got shape {mask.shape}")
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)

    flat_idx = np.flatnonzero(mask.ravel())
    labels = np.zeros(mask.shape, dtype=np.int64)
    m = len(flat_idx)
    if m == 0:
        return labels, 0

    nx, ny, nz = mask.shape
    # Recover coordinates of candidate cells once.
    cx, cy, cz = np.unravel_index(flat_idx, mask.shape)

    uf = UnionFind(m)
    strides = (ny * nz, nz, 1)
    dims = (nx, ny, nz)
    coords = (cx, cy, cz)

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    for axis in range(3):
        c = coords[axis]
        if periodic:
            neighbor_coord = (c + 1) % dims[axis]
            valid = np.ones(m, dtype=bool)
        else:
            neighbor_coord = c + 1
            valid = neighbor_coord < dims[axis]
        # Flat index of the +1 neighbour along this axis.
        delta = (neighbor_coord.astype(np.int64) - c) * strides[axis]
        nbr_flat = flat_idx + delta
        # Membership test: which neighbours are candidates themselves?
        pos = np.searchsorted(flat_idx, nbr_flat[valid])
        pos_clipped = np.minimum(pos, m - 1)
        hits = flat_idx[pos_clipped] == nbr_flat[valid]
        srcs.append(np.flatnonzero(valid)[hits])
        dsts.append(pos_clipped[hits])
    uf.union_many(np.concatenate(srcs), np.concatenate(dsts))

    roots = uf.roots()
    # Compact root ids to 1..n in order of first appearance.
    _, first_pos, compact = np.unique(roots, return_index=True, return_inverse=True)
    order = np.argsort(np.argsort(first_pos))
    labels.ravel()[flat_idx] = order[compact] + 1
    return labels, int(len(first_pos))
