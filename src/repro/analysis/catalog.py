"""Halo catalog comparison — the paper's three halo-quality metrics.

§2.1 lists the quantities to preserve through lossy compression:

1. halo positions,
2. the number of halos detected,
3. per-halo mass change (the paper's preferred control quantity, §3.4),

with mid/large halos weighted over small ones.  Halos are matched by
nearest centroid within a tolerance; RMSE of matched mass ratios is the
quantity the paper keeps within ``1 +/- 0.01`` (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.halos import HaloCatalog

__all__ = ["CatalogComparison", "compare_catalogs", "match_halos"]


@dataclass
class CatalogComparison:
    """Result of matching a reconstructed catalog against the original."""

    n_original: int
    n_reconstructed: int
    n_matched: int
    mass_ratios: np.ndarray  # matched reconstructed/original masses
    position_errors: np.ndarray  # matched centroid distances (cells)
    matched_original_masses: np.ndarray

    @property
    def count_change(self) -> int:
        """Detected-halo count difference (reconstructed - original)."""
        return self.n_reconstructed - self.n_original

    @property
    def mass_rmse(self) -> float:
        """RMSE of the matched mass ratio around 1 (paper's §4.2 metric)."""
        if len(self.mass_ratios) == 0:
            return float("nan")
        return float(np.sqrt(np.mean((self.mass_ratios - 1.0) ** 2)))

    @property
    def max_position_error(self) -> float:
        if len(self.position_errors) == 0:
            return float("nan")
        return float(self.position_errors.max())

    def mass_rmse_above(self, min_mass: float) -> float:
        """Mass RMSE restricted to halos above ``min_mass`` (mid/large halos)."""
        keep = self.matched_original_masses >= min_mass
        if not keep.any():
            return float("nan")
        return float(np.sqrt(np.mean((self.mass_ratios[keep] - 1.0) ** 2)))


def match_halos(
    original: HaloCatalog,
    reconstructed: HaloCatalog,
    max_distance: float = 2.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy nearest-centroid matching (descending original mass).

    Returns index arrays ``(orig_idx, rec_idx)`` of matched pairs.  Each
    reconstructed halo is used at most once.
    """
    if original.n_halos == 0 or reconstructed.n_halos == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rec_pos = reconstructed.positions
    taken = np.zeros(reconstructed.n_halos, dtype=bool)
    oi: list[int] = []
    ri: list[int] = []
    # Catalogs are mass-sorted; match big halos first.
    for i in range(original.n_halos):
        d2 = ((rec_pos - original.positions[i]) ** 2).sum(axis=1)
        d2[taken] = np.inf
        j = int(np.argmin(d2))
        if d2[j] <= max_distance**2:
            taken[j] = True
            oi.append(i)
            ri.append(j)
    return np.array(oi, dtype=np.int64), np.array(ri, dtype=np.int64)


def compare_catalogs(
    original: HaloCatalog,
    reconstructed: HaloCatalog,
    max_distance: float = 2.0,
) -> CatalogComparison:
    """Match catalogs and compute the paper's halo-quality metrics."""
    oi, ri = match_halos(original, reconstructed, max_distance)
    if len(oi):
        mass_ratios = reconstructed.masses[ri] / original.masses[oi]
        pos_err = np.linalg.norm(
            reconstructed.positions[ri] - original.positions[oi], axis=1
        )
        matched_mass = original.masses[oi]
    else:
        mass_ratios = np.empty(0)
        pos_err = np.empty(0)
        matched_mass = np.empty(0)
    return CatalogComparison(
        n_original=original.n_halos,
        n_reconstructed=reconstructed.n_halos,
        n_matched=len(oi),
        mass_ratios=mass_ratios,
        position_errors=pos_err,
        matched_original_masses=matched_mass,
    )
