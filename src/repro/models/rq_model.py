"""The closed-form ratio-quality (R-Q) engine: predictions, no trials.

Jin et al.'s follow-up ("Improving Prediction-Based Lossy Compression
Dramatically via Ratio-Quality Modeling") shows that both halves of the
rate-quality trade are predictable analytically from quantization
statistics.  This module composes the models this reproduction already
has — the §3.2 uniform error distribution
(:mod:`repro.models.error_distribution`), the §3.3 FFT propagation
(:mod:`repro.models.fft_error`) and the §3.4 halo fault model
(:mod:`repro.models.halo_error`) — into per-``(field, spec, eb)``
verdicts backed by **one** batched quantization probe
(:meth:`repro.compression.sz.SZCompressor.estimate_many`):

- predicted bitrate / ratio from the code histogram (the PR 2 estimator),
- predicted PSNR / NRMSE from the probe's *observed* quantization MSE
  (the quantize pass's realised lattice error; the analytic uniform
  model ``MSE = (n - n_outliers)/n * eb**2/3`` is the fallback for
  probes that only report rates),
- a predicted worst spectrum-ratio deviation over ``k < k_max`` (and its
  pass/fail verdict against the criteria tolerance),
- a predicted halo mass-error fraction and verdict when the criteria
  check halos.

No Lorenzo decode, no entropy codec, no decompression, no reconstruction
analysis.  ``probe_mode="model"`` threads these predictions through
``select_compressor``, ``run_sweep``, ``TrialAndErrorSearch`` and the
stream controller's recalibration; `docs/rq-model.md` records the
equations, the validated tolerances (PSNR within ~1 dB, ratio within
~10% on Nyx fields) and when to fall back to exact mode.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.compression.api import capabilities_of
from repro.compression.estimator import (
    RateEstimate,
    predicted_nrmse,
    predicted_psnr_db,
    predicted_quantization_mse,
)
from repro.models.error_distribution import UniformErrorModel
from repro.models.fft_error import (
    predicted_spectrum_distortion,
    sub_threshold_power_estimate,
)
from repro.models.halo_error import boundary_cell_count, expected_fault_cells
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.foresight.evaluator import FieldReference
    from repro.foresight.quality import QualityCriteria, QualityReport

__all__ = [
    "BOUNDARY_BAND_FACTOR",
    "RQPrediction",
    "RQModel",
]

#: A prediction counts as *near the acceptance boundary* when its worst
#: spectrum deviation lies within this factor of the tolerance (either
#: side).  The exact-confirmation knob (``confirm="boundary"``) re-checks
#: only those cells, where the model's few-percent bias could flip a
#: verdict; far from the boundary the prediction is decisive.
BOUNDARY_BAND_FACTOR = 3.0


@dataclass(frozen=True)
class RQPrediction:
    """Closed-form rate and quality verdicts for one ``(field, eb)`` cell."""

    field: str
    eb: float
    predicted_bit_rate: float
    predicted_ratio: float
    predicted_mse: float
    predicted_psnr_db: float
    predicted_nrmse: float
    spectrum_worst_deviation: float
    spectrum_ok: bool
    halo_ok: bool | None = None
    halo_mass_error: float | None = None  # predicted |ΔM| (absolute mass units)
    halo_mass_fraction: float | None = None  # |ΔM| / total catalog mass
    halo_fault_cells: float | None = None  # expected flipped boundary cells

    @property
    def passed(self) -> bool:
        """Mirror of :attr:`repro.foresight.quality.QualityReport.passed`."""
        return self.spectrum_ok and (self.halo_ok is None or self.halo_ok)

    def near_boundary(
        self, criteria: QualityCriteria, factor: float = BOUNDARY_BAND_FACTOR
    ) -> bool:
        """Is any verdict close enough to its threshold to deserve an
        exact confirmation run?"""
        tol = criteria.spectrum_tolerance
        if tol / factor <= self.spectrum_worst_deviation <= tol * factor:
            return True
        if self.halo_mass_fraction is not None:
            h = criteria.halo_mass_rmse
            if h / factor <= self.halo_mass_fraction <= h * factor:
                return True
        return False

    def to_quality_report(self) -> QualityReport:
        """The prediction in :class:`QualityReport` shape, so consumers of
        sweep records (``record.passed``, tables, CSV) work unchanged.

        ``halo_mass_rmse`` carries the predicted mass-error *fraction*
        (the budget analogue of the measured relative RMSE) and
        ``halo_count_change`` is predicted zero — the fault model bounds
        mass drift, not catalog membership.
        """
        from repro.foresight.quality import QualityReport

        return QualityReport(
            spectrum_ok=self.spectrum_ok,
            spectrum_worst_deviation=self.spectrum_worst_deviation,
            halo_ok=self.halo_ok,
            halo_mass_rmse=self.halo_mass_fraction,
            halo_count_change=0 if self.halo_ok is not None else None,
            psnr_db=self.predicted_psnr_db,
            nrmse_value=self.predicted_nrmse,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (benchmarks, ledgers)."""
        return {
            "field": self.field,
            "eb": self.eb,
            "predicted_bit_rate": self.predicted_bit_rate,
            "predicted_ratio": self.predicted_ratio,
            "predicted_psnr_db": self.predicted_psnr_db,
            "predicted_nrmse": self.predicted_nrmse,
            "spectrum_worst_deviation": self.spectrum_worst_deviation,
            "spectrum_ok": self.spectrum_ok,
            "halo_ok": self.halo_ok,
            "halo_mass_fraction": self.halo_mass_fraction,
            "passed": self.passed,
        }


class RQModel:
    """Per-field composition of the rate and quality models.

    Binds one :class:`~repro.foresight.evaluator.FieldReference` (so the
    original-side spectrum is computed once and shared with evaluators
    and budget inversions) to one
    :class:`~repro.foresight.quality.QualityCriteria`, and turns
    quantization-probe statistics into :class:`RQPrediction` verdicts.

    Parameters
    ----------
    reference:
        The original field — an existing ``FieldReference`` (shared
        caches) or a raw array (wrapped).
    criteria:
        Acceptance thresholds; defaults to the spectrum-only
        :class:`QualityCriteria`.  Halo verdicts are predicted only when
        ``criteria.check_halos`` is set.
    field:
        Name stamped on predictions.
    error_model:
        Pointwise error model supplying ``std_factor`` and the boundary
        fault probability (default the §3.2 uniform model; pass the
        §3.5 revised mixture for very large bounds).
    confidence_z / correlated_fraction / sub_power_stride:
        Passed through to
        :func:`~repro.models.fft_error.predicted_spectrum_distortion` —
        the same knobs (and defaults) the §3.3/§3.5 budget inversion
        uses, so a field probed *at* its derived budget predicts inside
        the tolerance by construction.
    """

    def __init__(
        self,
        reference: "FieldReference | np.ndarray",
        criteria: QualityCriteria | None = None,
        field: str = "field",
        error_model: UniformErrorModel | None = None,
        confidence_z: float = 2.0,
        correlated_fraction: float = 0.0,
        sub_power_stride: int = 2,
    ) -> None:
        from repro.foresight.evaluator import FieldReference
        from repro.foresight.quality import QualityCriteria

        if not isinstance(reference, FieldReference):
            reference = FieldReference(reference)
        self.reference = reference
        self.criteria = criteria or QualityCriteria()
        self.field = field
        self.error_model = error_model or UniformErrorModel()
        self.confidence_z = float(confidence_z)
        self.correlated_fraction = float(correlated_fraction)
        self.sub_power_stride = int(sub_power_stride)
        # Lazy: nothing is analyzed until the first prediction needs it,
        # so building a model on a rate-only path costs nothing.
        self._halo_mass: float | None = None

    # -- model components -------------------------------------------------

    def predicted_spectrum_deviation(self, eb: float) -> float:
        """Predicted worst ``|P'(k)/P(k) - 1|`` over ``k < k_max``.

        Uses the same full-resolution binned spectrum (and sub-threshold
        power estimate) as
        :func:`repro.core.selection.derive_eb_budget`'s inversion, so
        predictions and budgets agree at the boundary.
        """
        eb = check_positive(eb, "eb")
        crit = self.criteria
        ps = self.reference.spectrum()
        mask = ps.k < crit.spectrum_k_max
        if not mask.any():
            raise ValueError(f"no spectrum bins below k_max={crit.spectrum_k_max}")
        sub = type(ps)(k=ps.k[mask], power=ps.power[mask], n_modes=ps.n_modes[mask])
        f64 = self.reference.f64
        dist = predicted_spectrum_distortion(
            sub,
            f64.size,
            eb,
            confidence_z=self.confidence_z,
            sub_threshold_power=sub_threshold_power_estimate(
                f64, eb, stride=self.sub_power_stride
            ),
            correlated_fraction=self.correlated_fraction,
        )
        return float(np.max(dist))

    def predicted_halo_error(
        self, eb: float
    ) -> tuple[float, float, float, bool] | None:
        """``(mass_error, mass_fraction, fault_cells, ok)`` or ``None``.

        ``None`` when the criteria do not check halos or the reference
        catalog is empty (the constraint is vacuous).  Eqs. 11-13: cells
        within ``eb`` of ``t_boundary`` flip with the error model's fault
        probability, each moving ~``t_boundary`` of mass; the verdict
        compares the total predicted drift, as a fraction of the catalog
        mass, against the criteria's relative mass-RMSE budget.
        """
        crit = self.criteria
        if not crit.check_halos or crit.t_boundary is None:
            return None
        if self._halo_mass is None:
            catalog = self.reference.halos(crit.t_boundary, crit.t_halo)
            self._halo_mass = (
                float(catalog.masses.sum()) if catalog.n_halos else 0.0
            )
        if self._halo_mass <= 0:
            return None
        n_bc = boundary_cell_count(self.reference.f64, crit.t_boundary, eb)
        faults = float(
            expected_fault_cells(n_bc, self.error_model.fault_probability())
        )
        mass_error = float(crit.t_boundary) * faults
        fraction = mass_error / self._halo_mass
        return mass_error, fraction, faults, fraction <= crit.halo_mass_rmse

    # -- the prediction ----------------------------------------------------

    def predict(
        self, eb: float, estimates: "Sequence[RateEstimate] | RateEstimate"
    ) -> RQPrediction:
        """Compose one probe's statistics into a full R-Q verdict.

        ``estimates`` is the per-partition output of one
        ``estimate_many`` probe at ``eb`` (a single estimate is accepted
        for whole-field probes).  Rate aggregates over partitions.  MSE
        pools each partition's *observed* quantization MSE (element-count
        weighted) when the estimates carry one
        (:class:`~repro.compression.estimator.RQEstimate`); plain
        ``RateEstimate`` probes fall back to the analytic uniform model
        with the error model's ``std_factor``.  Either way the PSNR
        normalizer is the *field's* value range, so per-partition ranges
        never skew it.
        """
        eb = check_positive(eb, "eb")
        if isinstance(estimates, RateEstimate):
            estimates = [estimates]
        if not estimates:
            raise ValueError("need at least one probe estimate")
        n = sum(e.n_elements for e in estimates)
        n_out = sum(e.n_outliers for e in estimates)
        nbytes = float(sum(e.est_nbytes for e in estimates))
        itemsize = estimates[0].source_itemsize
        mses = [getattr(e, "predicted_mse", None) for e in estimates]
        if all(m is not None for m in mses):
            mse = float(
                sum(e.n_elements * m for e, m in zip(estimates, mses)) / n
            )
        else:
            mse = predicted_quantization_mse(
                n, n_out, eb, std_factor=self.error_model.std_factor
            )
        value_range = self.reference.moments.value_range
        worst = self.predicted_spectrum_deviation(eb)
        halo = self.predicted_halo_error(eb)
        return RQPrediction(
            field=self.field,
            eb=float(eb),
            predicted_bit_rate=8.0 * nbytes / n,
            predicted_ratio=itemsize * n / nbytes,
            predicted_mse=mse,
            predicted_psnr_db=predicted_psnr_db(mse, value_range),
            predicted_nrmse=predicted_nrmse(mse, value_range),
            spectrum_worst_deviation=worst,
            spectrum_ok=worst <= self.criteria.spectrum_tolerance,
            halo_ok=None if halo is None else halo[3],
            halo_mass_error=None if halo is None else halo[0],
            halo_mass_fraction=None if halo is None else halo[1],
            halo_fault_cells=None if halo is None else halo[2],
        )

    def probe(
        self,
        compressor: Any,
        views: Sequence[np.ndarray],
        eb: float,
        workspace: Any | None = None,
    ) -> RQPrediction:
        """One-call probe + predict for a partitioned field at one bound.

        Requires the compressor's ``supports_estimate`` capability
        (raises :class:`~repro.compression.api.UnsupportedCapabilityError`
        otherwise) and prefers the batched ``estimate_many`` front when
        the compressor provides one.
        """
        capabilities_of(compressor).require(
            "supports_estimate",
            "ratio-quality prediction (codec-free quantization probe)",
            who=compressor,
        )
        views = list(views)
        many = getattr(compressor, "estimate_many", None)
        if callable(many):
            ests = many(views, [float(eb)] * len(views), workspace)
        else:
            ests = [compressor.estimate(v, float(eb)) for v in views]
        return self.predict(eb, ests)
