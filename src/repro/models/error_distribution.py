"""Models of the pointwise error introduced by SZ compression (§3.2).

With the Lorenzo predictor and linear-scaling quantization, SZ's error
is well modeled as uniform on ``[-eb, eb]`` (the paper's Fig. 3).  At
very large error bounds the predictor starts hitting values inside the
bound without quantization, mixing a roughly normal component into the
distribution; the paper handles this by substituting a revised standard
deviation into the propagation formulas (§3.5).  Both models expose the
two moments the downstream analysis needs: per-point variance and the
fault probability integral used by the halo model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "UniformErrorModel",
    "RevisedUniformErrorModel",
    "empirical_error_model",
    "fit_revised_model",
]


@dataclass(frozen=True)
class UniformErrorModel:
    """Pure uniform error ``U[-eb, eb]``.

    ``std_factor`` is the standard deviation in units of ``eb``:
    ``sqrt(1/3)`` for the uniform distribution.  The FFT propagation
    uses the *projected* per-term deviation ``sqrt(1/6) * eb`` (Eq. 7),
    obtained from ``std_factor`` by the half-power of the sinusoid.
    """

    @property
    def std_factor(self) -> float:
        return float(np.sqrt(1.0 / 3.0))

    def std(self, eb: float) -> float:
        return check_positive(eb, "eb") * self.std_factor

    def fault_probability(self) -> float:
        """Probability a boundary cell flips across the threshold (Eq. 12).

        For a cell whose value is uniformly distributed within ``eb`` of
        the threshold and uniform error: ``1/2 * integral = 1/4``.
        """
        return 0.25

    def sample(self, eb: float, size: int, rng: np.random.Generator) -> np.ndarray:
        eb = check_positive(eb, "eb")
        return rng.uniform(-eb, eb, size)


@dataclass(frozen=True)
class RevisedUniformErrorModel:
    """Uniform/normal mixture for large error bounds (§3.5).

    ``normal_weight`` is the fraction of points predicted within the
    bound without quantization (error ~ centred, roughly normal with
    deviation ``normal_sigma_factor * eb``); the rest follow the uniform
    law.  The paper does not fit these parameters explicitly — it only
    notes the revised sigma must be substituted — so defaults are fitted
    from our own compressor at ``eb`` above the high-rate regime.
    """

    normal_weight: float = 0.3
    normal_sigma_factor: float = 0.45

    def __post_init__(self) -> None:
        if not 0 <= self.normal_weight <= 1:
            raise ValueError(f"normal_weight must be in [0,1], got {self.normal_weight}")
        if self.normal_sigma_factor <= 0:
            raise ValueError("normal_sigma_factor must be positive")

    @property
    def std_factor(self) -> float:
        w = self.normal_weight
        var = (1 - w) / 3.0 + w * self.normal_sigma_factor**2
        return float(np.sqrt(var))

    def std(self, eb: float) -> float:
        return check_positive(eb, "eb") * self.std_factor

    def fault_probability(self) -> float:
        """Flip probability under the mixture (uniform part contributes 1/4)."""
        w = self.normal_weight
        # Normal component: flip probability for a cell at uniform offset
        # u in [0, eb] is P(err < -u); integrating the standard normal
        # gives approximately 0.5 - 0.4*sigma_factor for small factors —
        # computed numerically for robustness.
        from scipy import stats

        u = np.linspace(0, 1, 201)
        p_normal = np.trapezoid(stats.norm.cdf(-u / self.normal_sigma_factor), u)
        return float((1 - w) * 0.25 + w * p_normal)

    def sample(self, eb: float, size: int, rng: np.random.Generator) -> np.ndarray:
        eb = check_positive(eb, "eb")
        take_normal = rng.random(size) < self.normal_weight
        out = rng.uniform(-eb, eb, size)
        n_norm = int(take_normal.sum())
        if n_norm:
            vals = rng.normal(0.0, self.normal_sigma_factor * eb, n_norm)
            out[take_normal] = np.clip(vals, -eb, eb)
        return out


def empirical_error_model(
    original: np.ndarray, reconstructed: np.ndarray, eb: float
) -> tuple[float, float]:
    """Measured (mean, std) of the compression error in units of ``eb``.

    Used by the Fig. 3 bench to verify the uniform model: expected mean 0
    and std ``sqrt(1/3) = 0.577``.
    """
    eb = check_positive(eb, "eb")
    err = (np.asarray(reconstructed, dtype=np.float64) - np.asarray(original, dtype=np.float64)) / eb
    return float(err.mean()), float(err.std())


def fit_revised_model(
    original: np.ndarray, reconstructed: np.ndarray, eb: float
) -> RevisedUniformErrorModel:
    """Fit the §3.5 mixture to a real (original, reconstructed) pair.

    Method-of-moments on the normalized error: matching the measured
    standard deviation and the mass inside the central fifth of the
    interval pins down ``(normal_weight, normal_sigma_factor)``.  Falls
    back to the pure uniform model (weight 0) when the error is already
    uniform-like.
    """
    eb = check_positive(eb, "eb")
    err = (
        np.asarray(reconstructed, dtype=np.float64)
        - np.asarray(original, dtype=np.float64)
    ) / eb
    std = float(err.std())
    central = float(np.mean(np.abs(err) < 0.2))  # uniform predicts 0.2

    uniform_std = float(np.sqrt(1.0 / 3.0))
    if std >= uniform_std * 0.98 and central <= 0.25:
        return RevisedUniformErrorModel(normal_weight=0.0)

    # Solve the two-moment system on a small grid (robust, no scipy dep).
    best = (0.0, 0.45, np.inf)
    for w in np.linspace(0.0, 1.0, 41):
        for s in np.linspace(0.05, 0.6, 45):
            model_std = np.sqrt((1 - w) / 3.0 + w * s**2)
            # Central mass: uniform part contributes 0.2*(1-w); the
            # clipped normal contributes erf-based mass.
            from math import erf

            model_central = 0.2 * (1 - w) + w * erf(0.2 / (s * np.sqrt(2)))
            loss = (model_std - std) ** 2 + (model_central - central) ** 2
            if loss < best[2]:
                best = (float(w), float(s), loss)
    return RevisedUniformErrorModel(normal_weight=best[0], normal_sigma_factor=best[1])
