"""Halo-finder error model (§3.4, Eqs. 11-14).

Compression perturbs halo analysis almost exclusively by flipping *edge
cells* across the candidate threshold ``t_boundary`` (Table 1: the mass
change per flipped cell is ~``t_boundary``).  Because the local value
histogram is approximately flat, a cell within ``eb`` of the threshold
flips with probability 1/4 (Eq. 12).  Hence per partition:

- expected flipped cells  ``e_m = n_bc / 4``                    (Eq. 13)
- total mass error budget ``M_fault = t_boundary * sum_m e_m``  (Eq. 11)
- cell-count fluctuation  ``sigma = sqrt(n_bc / 3)``            (Eq. 14)

where ``n_bc`` counts cells with values in
``(t_boundary - eb, t_boundary + eb)``.  The count is extracted once at
a reference bound and extrapolated linearly (``n_bc = n * eb``, §4.2),
which is what makes the in situ feature extraction cheap.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_3d, check_positive

__all__ = [
    "FAULT_PROBABILITY",
    "boundary_cell_count",
    "effective_cell_rate",
    "expected_fault_cells",
    "fault_cell_sigma",
    "halo_mass_error_budget",
]

#: Eq. 12 — probability a boundary cell flips under uniform error.
FAULT_PROBABILITY = 0.25


def boundary_cell_count(density: np.ndarray, t_boundary: float, eb: float) -> int:
    """Number of cells with value in ``(t_boundary - eb, t_boundary + eb)``."""
    rho = check_3d(density, "density")
    t = float(t_boundary)
    eb = check_positive(eb, "eb")
    return int(np.count_nonzero((rho > t - eb) & (rho < t + eb)))


def effective_cell_rate(
    density: np.ndarray, t_boundary: float, reference_eb: float = 1.0
) -> float:
    """Boundary cells per unit error bound (the feature extracted in situ).

    The local histogram is flat at the threshold scale, so
    ``n_bc(eb) ~ rate * eb``; extracting the count once at
    ``reference_eb`` suffices for all candidate bounds (§4.2, Fig. 14).
    """
    count = boundary_cell_count(density, t_boundary, reference_eb)
    return count / reference_eb


def expected_fault_cells(n_bc: float | np.ndarray, fault_probability: float = FAULT_PROBABILITY) -> float | np.ndarray:
    """Eq. 13: expected flipped cells given boundary-cell count(s)."""
    if not 0 < fault_probability < 1:
        raise ValueError(f"fault_probability must be in (0,1), got {fault_probability}")
    return np.asarray(n_bc, dtype=np.float64) * fault_probability


def fault_cell_sigma(n_bc: float) -> float:
    """Eq. 14: std of the flipped-cell count for a halo with ``n_bc`` edge cells."""
    if n_bc < 0:
        raise ValueError(f"n_bc must be non-negative, got {n_bc}")
    return float(np.sqrt(n_bc / 3.0))


def halo_mass_error_budget(
    t_boundary: float,
    effective_rates: np.ndarray,
    ebs: np.ndarray,
    fault_probability: float = FAULT_PROBABILITY,
) -> float:
    """Eq. 11: total absolute halo-mass change across partitions.

    Parameters
    ----------
    t_boundary:
        Candidate threshold (mass contributed per flipped cell).
    effective_rates:
        Per-partition boundary cells per unit ``eb``
        (:func:`effective_cell_rate`).
    ebs:
        Per-partition error bounds.
    """
    rates = np.asarray(effective_rates, dtype=np.float64)
    ebs = np.asarray(ebs, dtype=np.float64)
    if rates.shape != ebs.shape:
        raise ValueError(f"shape mismatch: rates {rates.shape} vs ebs {ebs.shape}")
    if (ebs <= 0).any():
        raise ValueError("all error bounds must be positive")
    e_m = expected_fault_cells(rates * ebs, fault_probability)
    return float(t_boundary * np.sum(e_m))
