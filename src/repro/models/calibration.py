"""Offline calibration of the rate model (§3.5's two-step procedure).

The paper avoids per-partition trial-and-error with two observations:
(1) the power-law exponent ``c`` is shared across partitions, fields and
snapshots, so it can be fit once and reused; (2) the per-partition
coefficient ``C_m`` is predictable from the partition's mean value.

:func:`calibrate_rate_model` reproduces exactly that: it samples a
subset of partitions, compresses each at a few probe bounds, fits the
per-partition power laws, takes the median exponent as the shared ``c``
and regresses ``ln C`` on ``ln mean``.  This runs *offline* (once per
simulation campaign); the in situ path only ever evaluates the fitted
model.

Probing only needs the *bit rate* of each (partition, bound), not the
compressed bytes, so ``probe_mode="estimate"`` (and its superset
``"model"``, the full ratio-quality engine of
:mod:`repro.models.rq_model`) reads the rate off the quantization-code
histogram (:mod:`repro.compression.estimator`) and skips the entropy
codec entirely — the histogram-based size prediction of the
ratio-quality modeling follow-up (Jin et al., "Improving
Prediction-Based Lossy Compression Dramatically via Ratio-Quality
Modeling").  Several times faster per probe, with fitted coefficients
within the estimator's accuracy band of the exact-mode fit.  All probe
bounds for one partition run as a *single* batched quantization pass
(:meth:`~repro.compression.sz.SZCompressor.estimate_many`), and
residual probe work can fan over the
:mod:`repro.parallel.backends` registry via ``backend=``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.compression.api import (
    Compressor,
    CompressorSpec,
    capabilities_of,
    resolve_compressor,
    spec_of,
)
from repro.models.rate_model import RateModel, fit_power_law
from repro.util.rng import default_rng

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.parallel.backends import ExecutionBackend

__all__ = [
    "CalibrationResult",
    "RateModelBank",
    "calibrate_rate_model",
    "partition_feature",
]

#: Probe modes that read rates off quantization statistics instead of
#: running the entropy codec (both require ``supports_estimate``).
_CODEC_FREE_MODES = ("estimate", "model")
_PROBE_MODES = ("exact",) + _CODEC_FREE_MODES


def _probe_rates(
    comp: Compressor, part: np.ndarray, probe_ebs: Sequence[float], probe_mode: str
) -> np.ndarray:
    """Bit rate at each probe bound for one partition.

    Codec-free modes push all bounds through one batched
    ``estimate_many`` call — a single kernel pass over a ``(n_ebs, n)``
    batch — when the compressor provides it.
    """
    if probe_mode == "exact":
        return np.array([comp.compress(part, eb).bit_rate for eb in probe_ebs])
    many = getattr(comp, "estimate_many", None)
    if callable(many):
        ests = many([part] * len(probe_ebs), list(probe_ebs))
        return np.array([e.bit_rate for e in ests])
    return np.array([comp.estimate_bitrate(part, eb) for eb in probe_ebs])


def _probe_partition(task: tuple) -> np.ndarray:
    """Backend task: probe one partition (module-level, hence picklable)."""
    part, probe_ebs, spec_dict, probe_mode = task
    comp = resolve_compressor(CompressorSpec.from_dict(spec_dict))
    return _probe_rates(comp, np.asarray(part), probe_ebs, probe_mode)


def _fan_probes(
    comp: Compressor,
    probed: "list[np.ndarray]",
    probe_ebs: Sequence[float],
    probe_mode: str,
    backend: "ExecutionBackend | str | None",
) -> "list[np.ndarray]":
    """Probe every sampled partition, serially or over a backend."""
    if backend is None:
        return [_probe_rates(comp, part, probe_ebs, probe_mode) for part in probed]
    spec = spec_of(comp)
    if spec is None:
        raise ValueError(
            "backend-fanned calibration needs a registry-resolvable "
            "compressor spec (workers rebuild the compressor from it); "
            "pass backend=None for ad-hoc compressor instances"
        )
    from repro.parallel.backends import get_backend

    owned = isinstance(backend, str)
    bk = get_backend(backend) if owned else backend
    try:
        tasks = [
            (part, list(probe_ebs), spec.to_dict(), probe_mode) for part in probed
        ]
        return list(bk.map_tasks(_probe_partition, tasks))
    finally:
        if owned:
            bk.close()


def partition_feature(partition: np.ndarray) -> float:
    """The cheap compressibility feature: mean absolute value.

    For the strictly positive density/temperature fields this equals the
    paper's partition mean; taking the absolute value extends the single
    formula to the signed velocity fields (whose plain mean is ~0 and
    carries no compressibility information).
    """
    return float(np.mean(np.abs(partition)))


@dataclass
class CalibrationResult:
    """Fitted rate model plus per-partition diagnostics."""

    rate_model: RateModel
    exponents: np.ndarray  # per sampled partition
    coefficients: np.ndarray
    features: np.ndarray  # mean |value| per sampled partition
    fit_r2: np.ndarray  # per-partition log-log fit quality
    coef_r2: float  # quality of the C-vs-mean regression (Fig. 10a)

    @property
    def shared_exponent(self) -> float:
        return self.rate_model.exponent


def calibrate_rate_model(
    partitions: Sequence[np.ndarray],
    compressor: "Compressor | CompressorSpec | str | None" = None,
    probe_ebs: Sequence[float] | None = None,
    eb_scale: float = 1.0,
    max_partitions: int = 32,
    seed: int | np.random.Generator | None = 0,
    probe_mode: str = "exact",
    backend: "ExecutionBackend | str | None" = None,
) -> CalibrationResult:
    """Fit Eq. 15 from sampled partitions.

    Parameters
    ----------
    partitions:
        Partition arrays (one per rank); a random subset of at most
        ``max_partitions`` is probed.
    compressor:
        Compressor to probe with — an instance, a
        :class:`~repro.compression.api.CompressorSpec` (or spec string)
        resolved through the registry, or ``None`` for the registry
        default (plain SZ).  Must declare the ``error_bounded``
        capability: the rate model *is* bitrate as a function of the
        bound, so probing a fixed-rate codec is meaningless and raises
        :class:`~repro.compression.api.UnsupportedCapabilityError`.
    probe_ebs:
        Error bounds to probe; default spans ``eb_scale`` times
        ``[0.25, 0.5, 1, 2, 4]``, staying inside one rate-curve regime
        (the paper's assumption that gentle adjustments remain on the
        same power law).
    eb_scale:
        Characteristic error bound for the field (e.g. the static bound
        a user would pick); centres the probe range.
    probe_mode:
        ``"exact"`` runs the full compressor per probe and reads the
        real bit rate; ``"estimate"`` and ``"model"`` predict it from
        the quantization-code histogram without running the entropy
        codec — all probe bounds in one batched pass
        (:meth:`~repro.compression.sz.SZCompressor.estimate_many`) —
        several times faster, accurate to the estimator's tolerance.
        (For calibration the two codec-free modes are equivalent; the
        distinction matters downstream where ``"model"`` also predicts
        quality — see :mod:`repro.models.rq_model`.)
    backend:
        Optional :mod:`repro.parallel.backends` backend (instance or
        registry name) to fan the per-partition probes over.  Requires
        a registry-resolvable compressor spec (workers rebuild the
        compressor from it); a backend created here from a name is
        closed before returning.
    """
    if not partitions:
        raise ValueError("need at least one partition to calibrate")
    if probe_mode not in _PROBE_MODES:
        raise ValueError(
            f"probe_mode must be one of {', '.join(map(repr, _PROBE_MODES))}, "
            f"got {probe_mode!r}"
        )
    comp = resolve_compressor(compressor)
    caps = capabilities_of(comp)
    caps.require(
        "error_bounded",
        "rate-model calibration (bitrate as a function of the error bound)",
        who=comp,
    )
    if probe_mode in _CODEC_FREE_MODES:
        caps.require(
            "supports_estimate",
            f'probe_mode="{probe_mode}" (codec-free histogram rate prediction)',
            who=comp,
        )
    if probe_ebs is None:
        probe_ebs = [eb_scale * f for f in (0.25, 0.5, 1.0, 2.0, 4.0)]
    probe_ebs = [float(e) for e in probe_ebs]
    if len(probe_ebs) < 2:
        raise ValueError("need at least two probe error bounds")
    if any(e <= 0 for e in probe_ebs):
        raise ValueError("probe error bounds must be positive")

    rng = default_rng(seed)
    idx = np.arange(len(partitions))
    if len(partitions) > max_partitions:
        idx = np.sort(rng.choice(idx, size=max_partitions, replace=False))

    probed = [np.asarray(partitions[i]) for i in idx]
    all_rates = _fan_probes(comp, probed, probe_ebs, probe_mode, backend)

    exps: list[float] = []
    feats: list[float] = []
    r2s: list[float] = []
    for part, rates in zip(probed, all_rates):
        _, exp, r2 = fit_power_law(np.asarray(probe_ebs), rates)
        exps.append(exp)
        feats.append(partition_feature(part))
        r2s.append(r2)

    exps_arr = np.array(exps)
    feats_arr = np.array(feats)
    r2s_arr = np.array(r2s)

    # Partitions whose bit rate sits on the floor (all-zero codes) have
    # flat curves that carry no rate-vs-eb information; exclude them from
    # the shared-exponent estimate (the paper's power law describes the
    # sloped regime).
    informative = (exps_arr < -0.05) & (r2s_arr > 0.5)
    if not informative.any():
        raise ValueError(
            "no partition produced an informative rate curve; probe bounds "
            "are likely outside the compressible regime"
        )
    shared_c = float(np.median(exps_arr[informative]))
    if shared_c >= 0:
        raise ValueError(
            "calibration produced a non-negative rate exponent; probe bounds "
            "are likely outside the compressible regime"
        )

    # Re-fit coefficients holding the shared exponent fixed, so the
    # C-vs-mean regression is not polluted by exponent scatter.
    log_probe = np.log(np.asarray(probe_ebs))
    refit_coefs_arr = np.array(
        [float(np.exp(np.mean(np.log(r) - shared_c * log_probe))) for r in all_rates]
    )

    x = np.log(np.maximum(feats_arr, 1e-12))[informative]
    y = np.log(refit_coefs_arr)[informative]
    if len(x) < 2 or np.ptp(x) < 1e-9:
        beta, alpha = 0.0, float(np.mean(y))
    else:
        beta, alpha = np.polyfit(x, y, 1)
    x = np.log(np.maximum(feats_arr, 1e-12))
    y = np.log(refit_coefs_arr)
    pred = beta * x + alpha
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    coef_r2 = 1.0 - float(np.sum((y - pred) ** 2)) / ss_tot if ss_tot > 0 else 1.0

    model = RateModel(exponent=shared_c, coef_alpha=float(alpha), coef_beta=float(beta))
    return CalibrationResult(
        rate_model=model,
        exponents=exps_arr,
        coefficients=refit_coefs_arr,
        features=feats_arr,
        fit_r2=np.array(r2s),
        coef_r2=coef_r2,
    )


class RateModelBank:
    """Per-``(field, compressor spec)`` calibration cache.

    The pluggable backbone makes the rate model a function of *two*
    coordinates — the field and the compressor configuration — so
    anything that compares candidate specs (``select_compressor``, a
    spec-fanning sweep) would otherwise refit the same power law over
    and over.  The bank memoizes :func:`calibrate_rate_model` results
    keyed on the field name and the compressor's canonical
    :class:`~repro.compression.api.CompressorSpec`; instances without a
    spec are probed fresh each time (there is no stable key).

    Examples
    --------
    >>> import numpy as np
    >>> bank = RateModelBank(probe_mode="exact", max_partitions=4)
    >>> parts = [np.random.default_rng(i).random((8, 8, 8)) for i in range(4)]
    >>> a = bank.calibrate("density", parts, "sz", eb_scale=0.01)
    >>> b = bank.calibrate("density", parts, "sz", eb_scale=0.01)
    >>> a is b  # second call is a cache hit
    True
    """

    def __init__(
        self,
        probe_mode: str = "exact",
        max_partitions: int = 32,
        seed: int = 0,
        backend: "ExecutionBackend | str | None" = None,
    ) -> None:
        self.probe_mode = probe_mode
        self.max_partitions = int(max_partitions)
        self.seed = int(seed)
        self.backend = backend
        self._cache: dict[tuple, CalibrationResult] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: tuple) -> bool:
        return key in self._cache

    @staticmethod
    def _key(
        field: str,
        spec: CompressorSpec,
        eb_scale: float,
        probe_ebs: Sequence[float] | None,
    ) -> tuple:
        probes = None if probe_ebs is None else tuple(float(e) for e in probe_ebs)
        return (field, spec, float(eb_scale), probes)

    def get(
        self,
        field: str,
        spec: CompressorSpec,
        eb_scale: float = 1.0,
        probe_ebs: Sequence[float] | None = None,
    ) -> CalibrationResult | None:
        """The cached fit for ``(field, spec, probe config)``, if any."""
        return self._cache.get(self._key(field, spec, eb_scale, probe_ebs))

    def items(self) -> list[tuple[tuple, CalibrationResult]]:
        return list(self._cache.items())

    def invalidate(self, field: str | None = None) -> None:
        """Drop cached fits — for one field, or all of them (drift)."""
        if field is None:
            self._cache.clear()
        else:
            self._cache = {k: v for k, v in self._cache.items() if k[0] != field}

    def calibrate(
        self,
        field: str,
        partitions: Sequence[np.ndarray],
        compressor: "Compressor | CompressorSpec | str | None" = None,
        eb_scale: float = 1.0,
        probe_ebs: Sequence[float] | None = None,
        refresh: bool = False,
    ) -> CalibrationResult:
        """Fit (or return the cached fit of) one ``(field, spec)`` cell."""
        comp = resolve_compressor(compressor)
        spec = spec_of(comp)
        key = None if spec is None else self._key(field, spec, eb_scale, probe_ebs)
        if not refresh and key is not None and key in self._cache:
            return self._cache[key]
        result = calibrate_rate_model(
            partitions,
            compressor=comp,
            probe_ebs=probe_ebs,
            eb_scale=eb_scale,
            max_partitions=self.max_partitions,
            seed=self.seed,
            probe_mode=self.probe_mode,
            backend=self.backend,
        )
        if key is not None:
            self._cache[key] = result
        return result
