"""The paper's rate-quality models (§3.2-§3.5).

- :mod:`repro.models.error_distribution` — SZ's compression error as a
  uniform distribution ``U[-eb, eb]`` (Fig. 3), with the "revised"
  variant for very large bounds,
- :mod:`repro.models.fft_error` — error propagation through the DFT
  (Eqs. 4-10): Gaussian with ``sigma = sqrt(N/6) * eb`` per axis pass,
  extended to per-partition error bounds,
- :mod:`repro.models.halo_error` — halo-finder distortion (Eqs. 11-14):
  boundary-cell fault probability 1/4 and the mass-change budget,
- :mod:`repro.models.rate_model` — the empirical power-law bit-rate
  model ``b_m = C_m * eb**c`` (Eq. 15) and the closed-form optimum
  (Eq. 16),
- :mod:`repro.models.calibration` — fits the rate model's shared
  exponent and coefficient-vs-mean relation from sampled partitions,
- :mod:`repro.models.rq_model` — the closed-form ratio-quality engine
  composing the above into per-``(field, eb)`` predicted
  bitrate/PSNR/spectrum/halo verdicts from one quantization probe.
"""

from repro.models.error_distribution import (
    RevisedUniformErrorModel,
    UniformErrorModel,
)
from repro.models.fft_error import (
    dft_error_sigma,
    mixed_partition_sigma,
    spectrum_ratio_tolerance_to_eb,
    predicted_spectrum_distortion,
    sub_threshold_power_estimate,
)
from repro.models.halo_error import (
    FAULT_PROBABILITY,
    boundary_cell_count,
    expected_fault_cells,
    fault_cell_sigma,
    halo_mass_error_budget,
)
from repro.models.rate_model import RateModel, fit_power_law, optimal_error_bounds
from repro.models.calibration import (
    CalibrationResult,
    RateModelBank,
    calibrate_rate_model,
)
from repro.models.rq_model import BOUNDARY_BAND_FACTOR, RQModel, RQPrediction

__all__ = [
    "UniformErrorModel",
    "RevisedUniformErrorModel",
    "dft_error_sigma",
    "mixed_partition_sigma",
    "predicted_spectrum_distortion",
    "sub_threshold_power_estimate",
    "spectrum_ratio_tolerance_to_eb",
    "FAULT_PROBABILITY",
    "boundary_cell_count",
    "expected_fault_cells",
    "fault_cell_sigma",
    "halo_mass_error_budget",
    "RateModel",
    "fit_power_law",
    "optimal_error_bounds",
    "CalibrationResult",
    "RateModelBank",
    "calibrate_rate_model",
    "BOUNDARY_BAND_FACTOR",
    "RQModel",
    "RQPrediction",
]
