"""Empirical bit-rate model and the closed-form optimum (§3.5-§3.6).

In the high-ratio regime (bit rate below ~2, the regime the paper
restricts itself to) a partition's bit rate follows a power law in the
error bound::

    b_m = C_m * eb ** c        (Eq. 15)

with a *shared* exponent ``c < 0`` across partitions, fields and
snapshots, and a per-partition coefficient ``C_m`` predictable from the
partition's mean value (Fig. 10a).  Given the model, maximizing the
overall ratio subject to a linear constraint on the bounds has a closed
form: equalizing the marginal bit cost ``d b_m / d eb_m`` across
partitions yields

    eb_m  =  K * (C_m / w_m) ** (1 / (1 - c))

where ``w_m`` is the constraint weight (1 for the power-spectrum
constraint on the *average* bound; the boundary-cell rate ``n_m`` for
the halo-mass budget) and ``K`` scales the vector onto the constraint.

Note on Eq. 16's published form: the paper writes
``eb_m = eb_avg * exp(ln(C_m/C_a)/c)``, i.e. exponent ``1/c``; deriving
the stationary point of ``sum C_m eb_m^c`` under ``mean(eb) = eb_avg``
gives exponent ``1/(1-c)`` with the *same* qualitative behaviour (the
two coincide as ``|c|`` grows).  We implement the variational optimum
and verify it against a numerical optimizer in the tests; the direction
of the trade (harder-to-compress partitions receive larger bounds)
matches the paper's §3.1 description.

Bounds are clamped to ``[eb_avg/4, 4*eb_avg]`` (§3.6) and the free
partitions renormalized so the constraint still holds exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = ["fit_power_law", "RateModel", "optimal_error_bounds"]


def fit_power_law(ebs: np.ndarray, bitrates: np.ndarray) -> tuple[float, float, float]:
    """Least-squares fit of ``b = C * eb**c`` in log-log space.

    Returns ``(C, c, r_squared)``.
    """
    ebs = np.asarray(ebs, dtype=np.float64)
    bitrates = np.asarray(bitrates, dtype=np.float64)
    if ebs.shape != bitrates.shape or ebs.ndim != 1:
        raise ValueError("ebs and bitrates must be matching 1-D arrays")
    if len(ebs) < 2:
        raise ValueError("need at least two samples to fit a power law")
    if (ebs <= 0).any() or (bitrates <= 0).any():
        raise ValueError("power-law fit requires positive samples")
    x = np.log(ebs)
    y = np.log(bitrates)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(np.exp(intercept)), float(slope), r2


@dataclass
class RateModel:
    """Calibrated Eq. 15: shared exponent + coefficient-vs-mean relation.

    The coefficient relation is fit in log-log space
    (``ln C = alpha + beta * ln(mean)``), which keeps predictions
    positive; the paper's "logarithmic fitting" of ``C_m`` against
    partition means is reproduced by the same monotone relationship.
    """

    exponent: float  # the shared c (negative)
    coef_alpha: float
    coef_beta: float
    feature_floor: float = 1e-12

    def __post_init__(self) -> None:
        if self.exponent >= 0:
            raise ValueError(
                f"rate exponent must be negative (bit rate falls with eb), got {self.exponent}"
            )

    def predict_coefficient(self, mean_value: float | np.ndarray) -> np.ndarray:
        """Predicted ``C_m`` from a partition's mean (absolute) value."""
        m = np.maximum(np.asarray(mean_value, dtype=np.float64), self.feature_floor)
        return np.exp(self.coef_alpha + self.coef_beta * np.log(m))

    def predict_bitrate(self, mean_value: float | np.ndarray, eb: float | np.ndarray) -> np.ndarray:
        """Predicted bit rate of partition(s) at error bound(s) ``eb``."""
        eb_arr = np.asarray(eb, dtype=np.float64)
        if (eb_arr <= 0).any():
            raise ValueError("error bounds must be positive")
        return self.predict_coefficient(mean_value) * eb_arr**self.exponent

    def marginal_bit_cost(self, mean_value: float | np.ndarray, eb: float | np.ndarray) -> np.ndarray:
        """``d b / d eb`` — the bit-quality ratio equalized by the optimizer (Fig. 12)."""
        eb_arr = np.asarray(eb, dtype=np.float64)
        return self.exponent * self.predict_coefficient(mean_value) * eb_arr ** (self.exponent - 1.0)


def optimal_error_bounds(
    coefficients: np.ndarray,
    eb_avg: float,
    exponent: float,
    weights: np.ndarray | None = None,
    clamp_factor: float = 4.0,
    max_iterations: int = 50,
    constraint: str = "mean",
) -> np.ndarray:
    """Closed-form per-partition bounds maximizing ratio at fixed budget.

    Parameters
    ----------
    coefficients:
        Per-partition ``C_m`` (positive).
    eb_avg:
        Constraint target: ``mean(w_m * eb_m) = mean(w_m) * eb_avg``
        with ``constraint="mean"`` (the paper's fixed average bound,
        Eq. 10; a halo budget supplies boundary-cell rates as
        ``weights``), or ``sqrt(mean(eb_m^2)) = eb_avg`` with
        ``constraint="rms"`` (the statistically exact combination of
        per-partition FFT error variances; unit weights only).
    exponent:
        The shared (negative) rate exponent ``c``.
    weights:
        Constraint weights ``w_m`` (default all ones; ``mean`` only).
    clamp_factor:
        Bounds are clamped to ``[eb_avg/clamp, clamp*eb_avg]`` (§3.6
        uses 4).

    Returns
    -------
    Per-partition error bounds satisfying the constraint exactly (up to
    the feasibility limit of the clamp) — verified against a numerical
    optimizer in the tests.
    """
    c_arr = np.asarray(coefficients, dtype=np.float64)
    if c_arr.ndim != 1 or c_arr.size == 0:
        raise ValueError("coefficients must be a non-empty 1-D array")
    if (c_arr <= 0).any():
        raise ValueError("coefficients must be positive")
    eb_avg = check_positive(eb_avg, "eb_avg")
    if exponent >= 0:
        raise ValueError(f"exponent must be negative, got {exponent}")
    if clamp_factor < 1:
        raise ValueError(f"clamp_factor must be >= 1, got {clamp_factor}")
    if constraint not in ("mean", "rms"):
        raise ValueError(f"constraint must be 'mean' or 'rms', got {constraint!r}")
    if constraint == "rms":
        if weights is not None:
            raise ValueError("rms constraint does not support weights")
        return _optimal_bounds_rms(c_arr, eb_avg, exponent, clamp_factor, max_iterations)
    if weights is None:
        w = np.ones_like(c_arr)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != c_arr.shape:
            raise ValueError("weights must match coefficients shape")
        if (w < 0).any():
            raise ValueError("weights must be non-negative")
        # Zero-weight partitions are unconstrained: they'd get infinite
        # bounds; the clamp handles them, but the base shape needs a floor.
        w = np.maximum(w, w[w > 0].min() * 1e-6 if (w > 0).any() else 1.0)

    base = (c_arr / w) ** (1.0 / (1.0 - exponent))
    target_sum = float(np.sum(w)) * eb_avg
    lo, hi = eb_avg / clamp_factor, eb_avg * clamp_factor
    return _clipped_waterfill(base, w, target_sum, lo, hi, max_iterations)


def _clipped_waterfill(
    base: np.ndarray,
    weights: np.ndarray,
    target: float,
    lo: float,
    hi: float,
    max_iterations: int,
) -> np.ndarray:
    """Solve ``sum(w * clip(K * base, lo, hi)) = target`` for ``K``.

    The clamped stationary point keeps every *interior* bound
    proportional to ``base``; entries ride the box boundaries.  The
    left-hand side is continuous and monotone non-decreasing in ``K``,
    so bisection finds the water level robustly — including the case an
    iterative clamp-and-rescale loop gets wrong, where the proportional
    seed pushes some entries below ``lo`` *and* others above ``hi``
    simultaneously and every partition looks clamped even though the
    constraint is still feasible.  A final renormalization of the
    interior entries makes the constraint hold to machine precision.
    """
    w_total = float(np.sum(weights))
    if target <= w_total * lo:
        return np.full_like(base, lo)
    if target >= w_total * hi:
        return np.full_like(base, hi)
    k_lo = lo / float(base.max())  # every bound at (or below) lo
    k_hi = hi / float(base.min())  # every bound at (or above) hi
    for _ in range(max(64, max_iterations)):
        k = 0.5 * (k_lo + k_hi)
        if float(np.sum(weights * np.clip(k * base, lo, hi))) < target:
            k_lo = k
        else:
            k_hi = k
    ebs = np.clip(0.5 * (k_lo + k_hi) * base, lo, hi)
    free = (ebs > lo) & (ebs < hi)
    if free.any():
        deficit = target - float(np.sum(weights[~free] * ebs[~free]))
        scale = deficit / float(np.sum(weights[free] * ebs[free]))
        ebs[free] = np.clip(ebs[free] * scale, lo, hi)
    return ebs


def _optimal_bounds_rms(
    coefficients: np.ndarray,
    eb_rms: float,
    exponent: float,
    clamp_factor: float,
    max_iterations: int,
) -> np.ndarray:
    """Optimum under the quadratic constraint ``mean(eb^2) = eb_rms^2``.

    Stationarity of ``sum C_m eb_m^c`` against ``sum eb_m^2`` gives
    ``eb_m ∝ C_m^{1/(2-c)}`` — a gentler redistribution than the mean
    constraint's ``1/(1-c)``, because spreading bounds is itself charged
    quadratically.
    """
    base = coefficients ** (1.0 / (2.0 - exponent))
    lo, hi = eb_rms / clamp_factor, eb_rms * clamp_factor
    n = len(coefficients)
    target_sq = n * eb_rms**2

    # Same clipped water-fill as the mean constraint, on squared bounds:
    # sum(clip(K*base, lo, hi)^2) is continuous and monotone in K.
    if target_sq <= n * lo**2:
        return np.full_like(base, lo)
    if target_sq >= n * hi**2:
        return np.full_like(base, hi)
    k_lo = lo / float(base.max())
    k_hi = hi / float(base.min())
    for _ in range(max(64, max_iterations)):
        k = 0.5 * (k_lo + k_hi)
        if float(np.sum(np.clip(k * base, lo, hi) ** 2)) < target_sq:
            k_lo = k
        else:
            k_hi = k
    ebs = np.clip(0.5 * (k_lo + k_hi) * base, lo, hi)
    free = (ebs > lo) & (ebs < hi)
    if free.any():
        deficit = target_sq - float(np.sum(ebs[~free] ** 2))
        scale = np.sqrt(deficit / float(np.sum(ebs[free] ** 2)))
        ebs[free] = np.clip(ebs[free] * scale, lo, hi)
    return ebs
