"""Error propagation through the FFT (§3.3, Eqs. 4-10).

SZ's pointwise error is ~``U[-eb, eb]``.  Injected into the DFT sum,
each mode's real (and imaginary) component accumulates ``N`` independent
terms ``eb_n * sin(2 pi n k / N)``; by the central limit theorem the
result is Gaussian with

    sigma = sqrt(N / 6) * eb          (Eq. 8, one component)

and for a full 3-D transform of ``N**3`` points, ``sigma =
sqrt(N**3/6) * eb`` (Eq. 9).  With per-partition bounds the paper
averages the bounds (Eq. 10); the statistically exact combination uses
the RMS of the bounds — both are provided (they coincide under the
optimizer's 4x clamp to within a few percent, which the Fig. 5 bench
quantifies).

This module also translates the mode-level sigma into a predicted
distortion of the *binned power spectrum ratio* — the quantity the
paper's acceptance test constrains — and inverts that prediction to an
admissible average error bound.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spectrum import PowerSpectrum
from repro.util.validation import check_positive

__all__ = [
    "dft_error_sigma",
    "mixed_partition_sigma",
    "predicted_spectrum_distortion",
    "spectrum_ratio_tolerance_to_eb",
]

#: Per-point error variance of U[-eb, eb] is eb^2/3; projecting on a
#: sinusoid halves it — hence the 1/6 in Eq. 7.
_COMPONENT_VAR_FACTOR = 1.0 / 6.0


def dft_error_sigma(n_elements: int, eb: float, std_factor: float | None = None) -> float:
    """Std of one DFT-output component (real or imaginary), Eqs. 8-9.

    Parameters
    ----------
    n_elements:
        Total number of input elements (``N`` in 1-D, ``N**3`` in 3-D).
    eb:
        Absolute error bound.
    std_factor:
        Override the per-point error std in units of ``eb`` (default
        ``sqrt(1/3)``, the uniform model); pass a revised value for
        non-uniform distributions (§3.5).
    """
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    eb = check_positive(eb, "eb")
    if std_factor is None:
        return float(np.sqrt(n_elements * _COMPONENT_VAR_FACTOR) * eb)
    # General distribution: component variance is N * (std_factor*eb)^2 / 2.
    return float(np.sqrt(n_elements / 2.0) * std_factor * eb)


def mixed_partition_sigma(
    n_elements: int,
    ebs: np.ndarray,
    mode: str = "paper",
) -> float:
    """DFT component sigma when partitions carry different bounds (Eq. 10).

    ``mode="paper"`` uses the paper's linear average of the bounds;
    ``mode="rms"`` combines partition variances exactly (equal-size
    partitions assumed, as in the paper's setup).
    """
    ebs = np.asarray(ebs, dtype=np.float64)
    if ebs.ndim != 1 or ebs.size == 0:
        raise ValueError("ebs must be a non-empty 1-D array")
    if (ebs <= 0).any():
        raise ValueError("all error bounds must be positive")
    if mode == "paper":
        eff = ebs.mean()
    elif mode == "rms":
        eff = float(np.sqrt(np.mean(ebs**2)))
    else:
        raise ValueError(f"mode must be 'paper' or 'rms', got {mode!r}")
    return dft_error_sigma(n_elements, eff)


def predicted_spectrum_distortion(
    spectrum: PowerSpectrum,
    n_elements: int,
    eb: float,
    confidence_z: float = 2.0,
    sub_threshold_power: float = 0.0,
    correlated_fraction: float = 0.0,
) -> np.ndarray:
    """Predicted ``|P'(k)/P(k) - 1|`` bound per bin at ``confidence_z`` sigma.

    Derivation (per-cell-normalized spectra, matching
    :func:`repro.analysis.spectrum.power_spectrum`): uniform error adds a
    white-noise floor ``eb**2/3`` per cell (deterministic bias) plus a
    fluctuation whose bin-averaged std is
    ``sqrt((4 P(k) eb^2/6 + (eb^2/3)^2) / n_modes)``.

    Two extensions beyond the paper's pure-white model (both default to
    0, recovering Eq. 10's behaviour):

    - ``sub_threshold_power`` — cells whose magnitude is below the
      quantization pitch reconstruct to zero, so their power
      (``mean(x^2 | |x| < eb)`` per cell) leaves the spectrum
      coherently; estimate with :func:`sub_threshold_power_estimate`.
    - ``correlated_fraction`` — deterministic quantization error is not
      independent of structured (lognormal-like) fields; a fraction
      ``rho`` of the error amplitude tracks the signal, contributing a
      first-order cross term ``2*rho*sqrt(noise/P)`` per bin.  This is
      the quantitative version of the paper's §3.5 "revised
      distribution" caveat; 0.5 is a conservative default for density-
      derived fields (calibrated in the Fig. 5 bench).
    """
    eb = check_positive(eb, "eb")
    if confidence_z <= 0:
        raise ValueError(f"confidence_z must be positive, got {confidence_z}")
    if sub_threshold_power < 0:
        raise ValueError("sub_threshold_power must be non-negative")
    if not 0.0 <= correlated_fraction <= 1.0:
        raise ValueError("correlated_fraction must be in [0, 1]")
    p = np.asarray(spectrum.power, dtype=np.float64)
    n_modes = np.asarray(spectrum.n_modes, dtype=np.float64)
    if (p <= 0).any():
        raise ValueError("spectrum contains empty bins")
    noise_floor = eb**2 / 3.0
    var_bin = (4.0 * p * eb**2 * _COMPONENT_VAR_FACTOR + noise_floor**2) / np.maximum(
        n_modes, 1.0
    )
    coherent = sub_threshold_power
    cross_sub = 2.0 * np.sqrt(coherent * np.minimum(p, coherent)) if coherent > 0 else 0.0
    cross_corr = 2.0 * correlated_fraction * np.sqrt((noise_floor + coherent) / p)
    return (
        (noise_floor + coherent + cross_sub) / p
        + cross_corr
        + confidence_z * np.sqrt(var_bin) / p
    )


def sub_threshold_power_estimate(field: np.ndarray, eb: float, stride: int = 4) -> float:
    """Per-cell power of values the compressor would zero (``|x| < eb``).

    Uses a strided subsample so the in situ cost stays negligible
    (``stride=4`` touches 1/64 of the cells).
    """
    eb = check_positive(eb, "eb")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    sub = np.asarray(field, dtype=np.float64)[::stride, ::stride, ::stride]
    return float(np.mean(np.where(np.abs(sub) < eb, sub**2, 0.0)))


def spectrum_ratio_tolerance_to_eb(
    spectrum: PowerSpectrum,
    n_elements: int,
    tolerance: float = 0.01,
    k_max: int = 10,
    confidence_z: float = 2.0,
    sub_power_fn: "callable | None" = None,
    correlated_fraction: float = 0.0,
) -> float:
    """Largest average ``eb`` keeping predicted P(k) distortion within tolerance.

    Inverts :func:`predicted_spectrum_distortion` over ``k < k_max`` by
    bisection (the prediction is monotone in ``eb``).  This is the error
    budget the in situ optimizer feeds Eq. 16 — no trial-and-error
    compression is needed.

    ``sub_power_fn`` (``eb -> per-cell sub-threshold power``) activates
    the coherent-loss correction; build one from the field with
    ``lambda eb: sub_threshold_power_estimate(field, eb)``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    mask = spectrum.k < k_max
    if not mask.any():
        raise ValueError(f"no spectrum bins below k_max={k_max}")
    sub = PowerSpectrum(
        k=spectrum.k[mask], power=spectrum.power[mask], n_modes=spectrum.n_modes[mask]
    )

    def worst(eb: float) -> float:
        s = float(sub_power_fn(eb)) if sub_power_fn is not None else 0.0
        return float(
            predicted_spectrum_distortion(
                sub,
                n_elements,
                eb,
                confidence_z,
                sub_threshold_power=s,
                correlated_fraction=correlated_fraction,
            ).max()
        )

    lo, hi = 1e-12, 1.0
    # Grow hi until the tolerance is exceeded (or a generous cap is hit).
    while worst(hi) < tolerance and hi < 1e12:
        lo = hi
        hi *= 4.0
    if worst(lo) > tolerance:
        raise ValueError(
            "tolerance unachievable even at the smallest probed error bound"
        )
    for _ in range(80):
        mid = np.sqrt(lo * hi)
        if worst(mid) <= tolerance:
            lo = mid
        else:
            hi = mid
    return float(lo)
