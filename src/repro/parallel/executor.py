"""SPMD launcher: run one function per simulated MPI rank.

``run_spmd(nranks, fn)`` starts ``nranks`` threads, hands each a
:class:`ThreadComm`, and returns the per-rank results in rank order.
Exceptions raised by any rank are re-raised in the caller (after the
other ranks are released, so no thread leaks).
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.parallel.simcomm import CommGroup, ThreadComm

__all__ = ["run_spmd"]


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> list[Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` thread ranks.

    Parameters
    ----------
    nranks:
        Number of simulated ranks.
    fn:
        SPMD function; receives a :class:`ThreadComm` as first argument.

    Returns
    -------
    List of per-rank return values, indexed by rank.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    group = CommGroup(nranks)
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []

    def _worker(rank: int) -> None:
        comm = ThreadComm(group, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001  # repro-lint: disable=RL007 - cross-thread propagation: recorded and re-raised by the caller after join()
            errors.append((rank, exc))
            group.barrier.abort()

    threads = [
        threading.Thread(target=_worker, args=(r,), name=f"spmd-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        # threading.BrokenBarrierError on other ranks is collateral of the
        # abort; surface the original failure.
        non_barrier = [e for e in errors if not isinstance(e[1], threading.BrokenBarrierError)]
        if non_barrier:
            rank, exc = min(non_barrier, key=lambda e: e[0])
        raise RuntimeError(f"SPMD rank {rank} failed: {exc!r}") from exc
    return results
