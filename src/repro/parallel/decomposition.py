"""3-D block domain decomposition (one partition per MPI rank).

Nyx assigns each rank a contiguous sub-box of the global grid; the
paper's experiments use e.g. 512 partitions of 64^3 cells from a 512^3
snapshot.  :class:`BlockDecomposition` reproduces that layout and hands
out NumPy *views* (no copies) of the global array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Partition", "BlockDecomposition"]


@dataclass(frozen=True)
class Partition:
    """One rank's sub-box of the global grid."""

    rank: int
    block: tuple[int, int, int]  # block coordinates within the rank grid
    slices: tuple[slice, slice, slice]

    @property
    def shape(self) -> tuple[int, int, int]:
        return tuple(s.stop - s.start for s in self.slices)  # type: ignore[return-value]

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.shape))

    def view(self, data: np.ndarray) -> np.ndarray:
        """View of this partition inside the global array (no copy)."""
        return data[self.slices]


class BlockDecomposition:
    """Split a 3-D grid into a regular grid of equal blocks.

    Parameters
    ----------
    shape:
        Global grid shape.
    blocks:
        Number of blocks per axis, either an int (same along each axis)
        or a 3-tuple.  Every axis must divide evenly — matching the
        paper's setup of identical per-rank partitions.

    Examples
    --------
    >>> dec = BlockDecomposition((64, 64, 64), blocks=4)
    >>> dec.n_partitions
    64
    >>> dec.partition_shape
    (16, 16, 16)
    """

    def __init__(self, shape: tuple[int, int, int], blocks: int | tuple[int, int, int]) -> None:
        if len(shape) != 3:
            raise ValueError(f"shape must be 3-D, got {shape}")
        if isinstance(blocks, int):
            blocks = (blocks, blocks, blocks)
        if len(blocks) != 3 or any(b < 1 for b in blocks):
            raise ValueError(f"blocks must be three positive ints, got {blocks}")
        for s, b in zip(shape, blocks):
            if s % b != 0:
                raise ValueError(
                    f"axis of size {s} does not divide evenly into {b} blocks"
                )
        self.shape = tuple(int(s) for s in shape)
        self.blocks = tuple(int(b) for b in blocks)
        self.partition_shape = tuple(s // b for s, b in zip(self.shape, self.blocks))
        self._partitions = [
            Partition(
                rank=(bx * self.blocks[1] + by) * self.blocks[2] + bz,
                block=(bx, by, bz),
                slices=(
                    slice(bx * self.partition_shape[0], (bx + 1) * self.partition_shape[0]),
                    slice(by * self.partition_shape[1], (by + 1) * self.partition_shape[1]),
                    slice(bz * self.partition_shape[2], (bz + 1) * self.partition_shape[2]),
                ),
            )
            for bx in range(self.blocks[0])
            for by in range(self.blocks[1])
            for bz in range(self.blocks[2])
        ]

    @property
    def n_partitions(self) -> int:
        return len(self._partitions)

    def __len__(self) -> int:
        return self.n_partitions

    def __iter__(self):
        return iter(self._partitions)

    def __getitem__(self, rank: int) -> Partition:
        return self._partitions[rank]

    def partition_views(self, data: np.ndarray) -> list[np.ndarray]:
        """Views of ``data`` for all partitions, in rank order."""
        if tuple(data.shape) != self.shape:
            raise ValueError(f"data shape {data.shape} does not match decomposition {self.shape}")
        return [p.view(data) for p in self._partitions]

    def assemble(self, parts: list[np.ndarray], dtype: np.dtype | None = None) -> np.ndarray:
        """Reassemble per-partition arrays into the global grid."""
        if len(parts) != self.n_partitions:
            raise ValueError(f"expected {self.n_partitions} parts, got {len(parts)}")
        out = np.empty(self.shape, dtype=dtype if dtype is not None else np.asarray(parts[0]).dtype)
        for p, arr in zip(self._partitions, parts):
            arr = np.asarray(arr)
            if tuple(arr.shape) != p.shape:
                raise ValueError(
                    f"partition {p.rank} has shape {arr.shape}, expected {p.shape}"
                )
            out[p.slices] = arr
        return out

    def per_partition_map(self, values: np.ndarray) -> np.ndarray:
        """Reshape a length-``n_partitions`` vector onto the block grid.

        Used for the error-bound map visualizations (Figs. 11/17).
        """
        values = np.asarray(values)
        if values.shape != (self.n_partitions,):
            raise ValueError(
                f"expected {self.n_partitions} values, got shape {values.shape}"
            )
        return values.reshape(self.blocks)
