"""Simulated MPI runtime, domain decomposition and execution backends.

Nyx partitions its grid across MPI ranks; the paper's in situ protocol
is "every rank extracts its partition's features, one ``MPI_Allreduce``
shares the global mean, every rank solves for its own bound and
compresses".  This package reproduces that pattern without real MPI:

- :mod:`repro.parallel.comm` — the communicator interface plus the
  trivial serial implementation,
- :mod:`repro.parallel.simcomm` — a thread-backed SPMD communicator with
  barrier-synchronized collectives (allreduce/allgather/bcast/gather),
- :mod:`repro.parallel.executor` — ``run_spmd(nranks, fn)`` launching one
  thread per rank,
- :mod:`repro.parallel.decomposition` — 3-D block decomposition mapping
  ranks to grid partitions (views, no copies),
- :mod:`repro.parallel.backends` — the pluggable execution layer: a
  registry of serial / thread / process backends that all run the same
  snapshot task, with a batched compression hot path.
"""

from repro.parallel.comm import Communicator, SerialComm
from repro.parallel.simcomm import ThreadComm
from repro.parallel.executor import run_spmd
from repro.parallel.decomposition import BlockDecomposition, Partition

# Imported last: backends pulls in repro.core feature/optimizer modules,
# which themselves import the siblings above.
from repro.parallel.backends import (
    BACKENDS,
    BackendOutcome,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SnapshotTask,
    ThreadBackend,
    get_backend,
    register_backend,
)

__all__ = [
    "Communicator",
    "SerialComm",
    "ThreadComm",
    "run_spmd",
    "BlockDecomposition",
    "Partition",
    "BACKENDS",
    "BackendOutcome",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SnapshotTask",
    "ThreadBackend",
    "get_backend",
    "register_backend",
]
