"""Simulated MPI runtime and domain decomposition.

Nyx partitions its grid across MPI ranks; the paper's in situ protocol
is "every rank extracts its partition's features, one ``MPI_Allreduce``
shares the global mean, every rank solves for its own bound and
compresses".  This package reproduces that pattern without real MPI:

- :mod:`repro.parallel.comm` — the communicator interface plus the
  trivial serial implementation,
- :mod:`repro.parallel.simcomm` — a thread-backed SPMD communicator with
  barrier-synchronized collectives (allreduce/allgather/bcast/gather),
- :mod:`repro.parallel.executor` — ``run_spmd(nranks, fn)`` launching one
  thread per rank,
- :mod:`repro.parallel.decomposition` — 3-D block decomposition mapping
  ranks to grid partitions (views, no copies).
"""

from repro.parallel.comm import Communicator, SerialComm
from repro.parallel.simcomm import ThreadComm
from repro.parallel.executor import run_spmd
from repro.parallel.decomposition import BlockDecomposition, Partition

__all__ = [
    "Communicator",
    "SerialComm",
    "ThreadComm",
    "run_spmd",
    "BlockDecomposition",
    "Partition",
]
