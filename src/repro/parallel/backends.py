"""Pluggable execution backends for the in situ pipeline.

The adaptive-configuration protocol (extract features -> one collective
-> closed-form optimization -> compress) is independent of *how* the
ranks execute.  This module turns that observation into an
:class:`ExecutionBackend` registry:

- :class:`SerialBackend` — the reference rank loop in one thread,
- :class:`ThreadBackend` — one thread per rank with real barrier
  collectives (:func:`repro.parallel.executor.run_spmd`); the protocol
  simulator and the default for ``run_insitu_spmd``,
- :class:`ProcessBackend` — a ``ProcessPoolExecutor`` fan-out with the
  snapshot staged once in POSIX shared memory; workers attach views and
  compress *batches* of partitions per task, escaping the GIL entirely.

All backends produce byte-identical compressed payloads and identical
bounds for the same :class:`SnapshotTask` (property-tested); they differ
only in scheduling.  Per-phase :class:`TimingBreakdown`\\ s are merged
across ranks/workers, so the §4.3 overhead accounting works on every
path.  Per-rank busy time is *summed* — totals are aggregate seconds of
work, the right denominator for overhead ratios, not wall-clock.

Select a backend by name (``"serial"``/``"thread"``/``"process"``),
instance, or via ``AdaptiveCompressionPipeline(backend=...)``,
``CompressionCampaign(backend=...)``, or the CLI's ``--backend`` flag.
Third-party backends can be added with :func:`register_backend`.
"""

from __future__ import annotations

import inspect
import math
import multiprocessing as mp
import os
import pickle
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Any, ClassVar

import numpy as np

from repro import telemetry
from repro.compression.api import Compressor
from repro.compression.sz import CompressedBlock
from repro.compression.workspace import Workspace
from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures, extract_features
from repro.core.optimizer import (
    OptimizationResult,
    local_protocol_bound,
    optimize_combined,
    optimize_for_spectrum,
)
from repro.models.rate_model import RateModel
from repro.parallel.decomposition import BlockDecomposition
from repro.parallel.executor import run_spmd
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.util.timer import Timer, TimingBreakdown

__all__ = [
    "SnapshotTask",
    "BackendOutcome",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "register_backend",
    "get_backend",
]


@dataclass(frozen=True, eq=False)
class SnapshotTask:
    """One field of one snapshot plus everything needed to compress it."""

    data: np.ndarray
    decomposition: BlockDecomposition
    eb_avg: float
    rate_model: RateModel
    #: Any registry-resolvable error-bounded compressor; the backends
    #: only rely on the uniform ``compress``/``compress_many`` shape.
    compressor: Compressor
    settings: OptimizerSettings
    halo: HaloQualitySpec | None = None

    def __post_init__(self) -> None:
        if tuple(self.data.shape) != self.decomposition.shape:
            raise ValueError(
                f"data shape {self.data.shape} does not match "
                f"decomposition {self.decomposition.shape}"
            )
        if self.eb_avg <= 0:
            raise ValueError(f"eb_avg must be positive, got {self.eb_avg}")

    @property
    def n_ranks(self) -> int:
        return self.decomposition.n_partitions

    def extract(self, rank: int) -> PartitionFeatures:
        """Extract rank's in situ features (halo feature if configured)."""
        view = self.decomposition[rank].view(self.data)
        return extract_features(
            view,
            rank=rank,
            t_boundary=self.halo.t_boundary if self.halo else None,
            reference_eb=self.halo.reference_eb if self.halo else 1.0,
        )

    def optimize(self, features: list[PartitionFeatures]) -> OptimizationResult:
        """The one global optimization over all ranks' features."""
        if self.halo is not None:
            return optimize_combined(
                features, self.rate_model, self.eb_avg, self.halo, self.settings
            )
        return optimize_for_spectrum(
            features, self.rate_model, self.eb_avg, self.settings
        )

    def uses_local_protocol(self) -> bool:
        """True when ranks solve their own bound from one allreduce."""
        return self.settings.normalization == "local" and self.halo is None


@dataclass
class BackendOutcome:
    """What every backend returns for one snapshot-field task."""

    features: list[PartitionFeatures]
    ebs: np.ndarray
    blocks: list[CompressedBlock]
    optimization: OptimizationResult | None
    timings: TimingBreakdown


class ExecutionBackend(ABC):
    """Strategy interface: execute one :class:`SnapshotTask`."""

    name: ClassVar[str] = "abstract"

    @abstractmethod
    def run_snapshot(self, task: SnapshotTask) -> BackendOutcome:
        """Extract, optimize and compress every partition of ``task``."""

    @property
    def parallelism(self) -> int:
        """How many :meth:`map_tasks` items can usefully run at once."""
        return 1

    def map_tasks(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item of ``items``, preserving order.

        Generic fan-out hook for embarrassingly parallel work outside
        the snapshot protocol — e.g. independent ``(field, eb)`` quality
        evaluations of a sweep.  The default runs serially in the
        calling thread; parallel backends override it.  Backends that
        ship work to other *processes* require ``fn`` and every item to
        be picklable.
        """
        return [fn(item) for item in items]

    def close(self) -> None:
        """Release any pooled resources (idempotent; default no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _local_protocol_summary(
    task: SnapshotTask, features: list[PartitionFeatures], ebs: np.ndarray
) -> OptimizationResult:
    """Diagnostics object for bounds the ranks solved distributively.

    Plain arithmetic over already-computed bounds — deliberately *not* an
    optimizer invocation, so the one-optimization-per-snapshot invariant
    stays countable.
    """
    means = np.array([f.mean_abs for f in features], dtype=np.float64)
    return OptimizationResult(
        ebs=ebs,
        eb_avg_target=task.eb_avg,
        constraint="spectrum",
        predicted_bitrates=task.rate_model.predict_bitrate(means, ebs),
    )


class SerialBackend(ExecutionBackend):
    """Reference implementation: a rank loop in the calling thread.

    Feature extraction and the optimization run exactly as the SPMD
    protocol prescribes; compression goes through the batched
    :meth:`~repro.compression.sz.SZCompressor.compress_many` hot path
    with the whole snapshot as one batch.
    """

    name = "serial"

    def run_snapshot(self, task: SnapshotTask) -> BackendOutcome:
        timings = TimingBreakdown()
        tracer = telemetry.get_tracer()
        with tracer.span("backend.snapshot", backend=self.name, ranks=task.n_ranks):
            with tracer.span("features"), timings.phase("features"):
                fault_point("backend.features")
                features = [task.extract(rank) for rank in range(task.n_ranks)]
            with tracer.span("optimize"), timings.phase("optimize"):
                opt = task.optimize(features)
            views = task.decomposition.partition_views(task.data)
            with tracer.span("compress"), timings.phase("compress"):
                fault_point("backend.compress")
                blocks = task.compressor.compress_many(views, opt.ebs)
        return BackendOutcome(
            features=features, ebs=opt.ebs, blocks=blocks, optimization=opt,
            timings=timings,
        )


class ThreadBackend(ExecutionBackend):
    """One thread per rank with real collectives — the in situ simulator.

    Mirrors the deployment's communication pattern: every rank extracts
    its own features, the exact protocol allgathers one scalar per rank
    after which *rank 0 alone* solves the optimization and broadcasts the
    result (one global optimization per snapshot), while the paper's
    local protocol needs only an allreduce of the mean and no global
    solve at all.  NumPy releases the GIL for array work, so per-rank
    compression genuinely overlaps.
    """

    name = "thread"

    @property
    def parallelism(self) -> int:
        return os.cpu_count() or 1

    def map_tasks(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Fan items out over a transient thread pool.

        NumPy releases the GIL for FFTs and big reductions, so quality
        evaluations genuinely overlap even in one process.
        """
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(len(items), self.parallelism)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    def run_snapshot(self, task: SnapshotTask) -> BackendOutcome:
        tracer = telemetry.get_tracer()

        def rank_fn(comm):
            # Rank threads each carry their own span stack (the tracer's
            # nesting state is thread-local), so per-rank spans merge
            # into one trace without cross-talk.
            tb = TimingBreakdown()
            rank = comm.rank
            with tracer.span("features", rank=rank), tb.phase("features"):
                feat = task.extract(rank)
            if task.uses_local_protocol():
                # The paper's cheap protocol: one allreduce of the mean,
                # every rank solves its own bound locally.
                with tb.phase("collective"):
                    total = comm.allreduce(feat.mean_abs, op="sum")
                with tracer.span("optimize", rank=rank), tb.phase("optimize"):
                    eb = local_protocol_bound(
                        feat.mean_abs,
                        total / comm.size,
                        task.rate_model,
                        task.eb_avg,
                        task.settings,
                    )
                opt = None
            else:
                # Exact protocol: allgather scalar features, rank 0
                # solves the deterministic optimization once, bcast.
                with tb.phase("collective"):
                    all_feats = comm.allgather(feat)
                with tracer.span("optimize", rank=rank), tb.phase("optimize"):
                    opt = task.optimize(all_feats) if rank == 0 else None
                with tb.phase("collective"):
                    opt = comm.bcast(opt, root=0)
                eb = float(opt.ebs[rank])
            view = task.decomposition[rank].view(task.data)
            with tracer.span("compress", rank=rank), tb.phase("compress"):
                fault_point("backend.compress")
                block = task.compressor.compress(view, eb)
            return feat, eb, block, opt, tb

        with tracer.span("backend.snapshot", backend=self.name, ranks=task.n_ranks):
            results = run_spmd(task.n_ranks, rank_fn)
        features = [r[0] for r in results]
        ebs = np.array([r[1] for r in results], dtype=np.float64)
        blocks = [r[2] for r in results]
        opt = results[0][3]
        timings = TimingBreakdown()
        for r in results:
            timings.merge(r[4])
        if opt is None:
            opt = _local_protocol_summary(task, features, ebs)
        return BackendOutcome(
            features=features, ebs=ebs, blocks=blocks, optimization=opt,
            timings=timings,
        )


# -- process backend ---------------------------------------------------------

#: Per-worker compressor cache, keyed by the pickled compressor:
#: deserializing the quantize/codec pipeline once per (worker, config)
#: amortizes setup across every batch the worker handles.  Shipping the
#: instance itself (not a name-based config) preserves codec state such
#: as compression levels, keeping worker output byte-identical to the
#: serial path.
_WORKER_COMPRESSORS: dict[bytes, Compressor] = {}

#: One kernel scratch arena per worker process, shared across batches
#: and compressor configurations (buffer slots are keyed by shape/dtype,
#: not by compressor): the fused kernels allocate their temporaries on
#: the first block and reuse them for every block the worker ever sees.
_WORKER_WORKSPACE = Workspace()


def _pooled_compressor(blob: bytes) -> Compressor:
    comp = _WORKER_COMPRESSORS.get(blob)
    if comp is None:
        comp = pickle.loads(blob)
        _WORKER_COMPRESSORS[blob] = comp
    return comp


#: Whether this worker process owns a private resource tracker (spawn
#: start method) rather than sharing the parent's via fork.  Decided on
#: the first shared-memory attach and fixed for the process lifetime.
_TRACKER_OWNED: bool | None = None


def _attach_shm(name: str, shape: tuple[int, ...], dtype: str):
    global _TRACKER_OWNED
    if _TRACKER_OWNED is None:
        try:
            from multiprocessing.resource_tracker import _resource_tracker

            # A live tracker fd before our first attach means it was
            # inherited from the parent (fork); a dead one means our
            # register below will lazily start a tracker we own.
            _TRACKER_OWNED = getattr(_resource_tracker, "_fd", None) is None
        except (ImportError, AttributeError):  # pragma: no cover - tracker layout differs
            _TRACKER_OWNED = False
    shm = shared_memory.SharedMemory(name=name)
    try:
        return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    except BaseException:
        # The ndarray view is what pins the attachment for the caller's
        # try/finally; if constructing it fails the segment would leak
        # with no handle left to release it.
        _release_shm(shm)
        raise


def _release_shm(shm: shared_memory.SharedMemory) -> None:
    """Close a worker-side attachment without poisoning the tracker.

    On POSIX, *attaching* registers the segment with the resource
    tracker just like creating it does.  Under fork the tracker is
    shared with the parent and registration is set-idempotent, so the
    parent's unlink retires the entry and workers must NOT unregister
    (doing so would unbalance the parent's final unregister).  Under
    spawn each worker owns a private tracker that would warn about
    "leaked" segments at exit, so there the registration is retracted.
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a stray view pins the mmap
        pass
    if _TRACKER_OWNED:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except (ImportError, AttributeError, OSError):  # pragma: no cover - tracker layout differs
            pass


def _worker_tracing(export: bool):
    """Arm a fresh worker-local tracer when the parent asked for spans.

    The worker's clock epoch differs from the parent's (``perf_counter``
    is per-process), so the exported records are rebased by the parent's
    :meth:`~repro.telemetry.tracer.Tracer.adopt`.
    """
    if export:
        return telemetry.arm(track=f"worker-{os.getpid()}")
    return telemetry.get_tracer()


def _features_task(
    shm_name: str,
    shape: tuple[int, ...],
    dtype: str,
    items: list[tuple[int, tuple[slice, ...]]],
    halo_args: tuple[float, float] | None,
    export_telemetry: bool = False,
) -> tuple[list[PartitionFeatures], float, list[dict]]:
    """Pool worker: features for a batch of partitions (rank, slices)."""
    shm, arr = _attach_shm(shm_name, shape, dtype)
    try:
        fault_point("backend.features")
        t_boundary, reference_eb = halo_args if halo_args else (None, 1.0)
        tracer = _worker_tracing(export_telemetry)
        try:
            with tracer.span("features", ranks=[r for r, _ in items]):
                with Timer() as timer:
                    feats = [
                        extract_features(
                            arr[slices], rank=rank, t_boundary=t_boundary,
                            reference_eb=reference_eb,
                        )
                        for rank, slices in items
                    ]
            spans = tracer.export_spans() if export_telemetry else []
        finally:
            if export_telemetry:
                telemetry.disarm()
        return feats, timer.elapsed, spans
    finally:
        del arr
        _release_shm(shm)


def _compress_task(
    shm_name: str,
    shape: tuple[int, ...],
    dtype: str,
    items: list[tuple[tuple[slice, ...], float]],
    compressor_blob: bytes,
    export_telemetry: bool = False,
) -> tuple[list[CompressedBlock], float, list[dict]]:
    """Pool worker: compress a batch of partitions (slices, eb)."""
    shm, arr = _attach_shm(shm_name, shape, dtype)
    try:
        fault_point("backend.compress")
        comp = _pooled_compressor(compressor_blob)
        kwargs: dict[str, Any] = {"workspace": _WORKER_WORKSPACE}
        # One worker process per core already: pin the compressor's
        # entropy-stage fan-out to 1 thread (duck-typed compressors may
        # predate the parameter).
        if "threads" in inspect.signature(comp.compress_many).parameters:
            kwargs["threads"] = 1
        tracer = _worker_tracing(export_telemetry)
        try:
            with tracer.span("compress", blocks=len(items)):
                with Timer() as timer:
                    blocks = comp.compress_many(
                        [arr[slices] for slices, _ in items],
                        [eb for _, eb in items],
                        **kwargs,
                    )
            spans = tracer.export_spans() if export_telemetry else []
        finally:
            if export_telemetry:
                telemetry.disarm()
        return blocks, timer.elapsed, spans
    finally:
        del arr
        _release_shm(shm)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution with shared-memory partition views.

    The snapshot is staged once into a POSIX shared-memory segment;
    workers attach zero-copy NumPy views of their partitions, so fan-out
    cost is one copy of the field regardless of rank count.  Partitions
    are compressed in *batches* (many per task), amortizing task
    dispatch and compressor setup, with the optimization solved exactly
    once in the parent.  This is the only backend that escapes the GIL
    for the pure-Python parts of the hot path.

    Parameters
    ----------
    max_workers:
        Pool size (default: ``os.cpu_count()`` capped at 8).
    batch_size:
        Partitions per task (default: ranks split into ~2 waves per
        worker, balancing amortization against load balance).
    start_method:
        Multiprocessing start method; default prefers ``fork`` where
        available (cheap startup), else the platform default.  ``spawn``
        workers re-import :mod:`repro`, so the package must be on the
        workers' ``PYTHONPATH``.
    retry_policy:
        Optional :class:`~repro.resilience.retry.RetryPolicy` governing
        batch re-execution.  With a policy, a failed batch whose error
        the policy classifies as retryable is re-submitted under the
        policy's attempt budget; a ``BrokenProcessPool`` (worker killed
        by a signal or the OOM killer) additionally discards and
        rebuilds the pool first.  Only the failed batches re-run — the
        snapshot's shared-memory segment lives in the parent and
        survives the pool, so completed batches are never recomputed.
        ``None`` (default) preserves fail-fast semantics.
    on_retry:
        Optional ``(site, attempt, exc, delay)`` callback invoked for
        every batch retry — how the stream controller accounts backend
        retries in its report.  :attr:`n_retries` counts them either
        way.

    The worker pool is created lazily and reused across snapshots and
    fields; call :meth:`close` (or use the backend as a context manager)
    to release it.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        batch_size: int | None = None,
        start_method: str | None = None,
        retry_policy: RetryPolicy | None = None,
        on_retry: Callable[[str, int, BaseException, float], Any] | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.batch_size = batch_size
        self.start_method = start_method
        self.retry_policy = retry_policy
        self.on_retry = on_retry
        self.n_retries = 0
        self.n_pool_rebuilds = 0
        self._pool: ProcessPoolExecutor | None = None

    # -- pool management -------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.start_method is not None:
                ctx = mp.get_context(self.start_method)
            elif "fork" in mp.get_all_start_methods():
                ctx = mp.get_context("fork")
            else:  # pragma: no cover - non-POSIX platforms
                ctx = mp.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx
            )
        return self._pool

    def close(self) -> None:
        # Clear the reference before shutdown: if shutdown raises (e.g.
        # on an already-broken pool), a second close() must still be a
        # no-op rather than re-raising forever.
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next batch gets a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            self.n_pool_rebuilds += 1
            if telemetry.enabled():
                telemetry.get_registry().counter("resilience.pool_rebuilds").inc()
            pool.shutdown(wait=False, cancel_futures=True)

    @property
    def parallelism(self) -> int:
        return self.max_workers

    def map_tasks(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Fan items out over the (lazily created, reused) worker pool.

        ``fn`` and the items cross a process boundary, so both must be
        picklable — module-level functions and plain data only.
        """
        items = list(items)
        if not items:
            return []
        return list(self._ensure_pool().map(fn, items))

    def __repr__(self) -> str:
        return (
            f"ProcessBackend(max_workers={self.max_workers}, "
            f"batch_size={self.batch_size})"
        )

    # -- execution -------------------------------------------------------

    def _batches(self, n: int) -> list[list[int]]:
        size = self.batch_size or max(1, math.ceil(n / (2 * self.max_workers)))
        return [list(range(i, min(i + size, n))) for i in range(0, n, size)]

    @staticmethod
    def _serialize_compressor(comp: Compressor) -> bytes:
        """Pickle the compressor verbatim so workers reproduce its output
        byte for byte (codec levels and custom codecs included)."""
        try:
            return pickle.dumps(comp)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError) as exc:
            raise ValueError(
                f"ProcessBackend requires a picklable compressor; "
                f"{comp!r} cannot be serialized for the worker pool"
            ) from exc

    # -- batch retry -----------------------------------------------------

    def _note_retry(
        self, site: str, attempt: int, exc: BaseException, delay: float
    ) -> None:
        self.n_retries += 1
        if telemetry.enabled():
            telemetry.get_registry().counter("resilience.backend_retries").inc()
        if self.on_retry is not None:
            self.on_retry(site, attempt, exc, delay)

    @staticmethod
    def _adopt_worker_spans(tracer, parent_span, spans: list[dict]) -> None:
        """Merge a worker batch's exported spans under the snapshot span,
        rebased to its clock (worker ``perf_counter`` epochs differ)."""
        if spans:
            tracer.adopt(
                spans,
                parent_id=parent_span.span_id,
                rebase_to=parent_span.start,
                track="worker",
            )

    def _run_batch(self, task_fn: Callable[..., Any], args: tuple) -> Any:
        """Re-execute one batch on a (possibly rebuilt) pool."""
        pool = self._ensure_pool()
        try:
            return pool.submit(task_fn, *args).result()
        except BrokenProcessPool:
            self._discard_pool()
            raise

    def _submit_all(
        self,
        task_fn: Callable[..., Any],
        args_list: list[tuple],
        pending: list[Future],
    ) -> list[Future]:
        """Submit one task per batch, tolerating a pool that breaks
        mid-loop: a failed ``submit`` becomes a pre-failed future (so
        :meth:`_collect` retries that batch like any other failure) and
        the remaining batches go to a rebuilt pool.
        """
        futures: list[Future] = []
        for args in args_list:
            try:
                fut = self._ensure_pool().submit(task_fn, *args)
            except BrokenProcessPool as exc:
                self._discard_pool()
                fut = Future()
                fut.set_exception(exc)
            futures.append(fut)
            pending.append(fut)
        return futures

    def _collect(
        self, fut: Future, site: str, task_fn: Callable[..., Any], args: tuple
    ) -> Any:
        """Await one batch future; on retryable failure, re-run the batch
        under the retry policy (rebuilding the pool if it broke).

        The initial submission already spent attempt 1, so the retry
        budget handed to :meth:`RetryPolicy.execute` is ``max_attempts -
        1`` — total executions never exceed the policy's budget.  A
        ``BrokenProcessPool`` fails every in-flight batch at once; each
        is collected here in turn and only those batches re-run — the
        shared-memory segment is owned by the parent, so completed work
        survives the pool.
        """
        try:
            return fut.result()
        except BaseException as exc:
            policy = self.retry_policy
            if policy is None or not policy.is_retryable(exc):
                raise
            if isinstance(exc, BrokenProcessPool):
                self._discard_pool()
            if policy.max_attempts <= 1:
                raise
            self._note_retry(site, 1, exc, 0.0)
            budget = replace(policy, max_attempts=policy.max_attempts - 1)
            return budget.execute(
                lambda: self._run_batch(task_fn, args),
                site=site,
                on_retry=self._note_retry,
            )

    def run_snapshot(self, task: SnapshotTask) -> BackendOutcome:
        dec = task.decomposition
        n = task.n_ranks
        timings = TimingBreakdown()
        tracer = telemetry.get_tracer()
        export_spans = telemetry.enabled()
        compressor_blob = self._serialize_compressor(task.compressor)
        halo_args = (
            (task.halo.t_boundary, task.halo.reference_eb) if task.halo else None
        )
        self._ensure_pool()
        batches = self._batches(n)
        data = np.asarray(task.data)

        shm = None
        shared = None
        pending: list[Future] = []
        snapshot_span = tracer.span(
            "backend.snapshot", backend=self.name, ranks=n, batches=len(batches)
        )
        try:
            with snapshot_span:
                with tracer.span("scatter"), timings.phase("scatter"):
                    shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
                    shared = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
                    np.copyto(shared, data)
                meta = (shm.name, tuple(data.shape), data.dtype.str)

                feat_args = [
                    (*meta, [(r, dec[r].slices) for r in ranks], halo_args,
                     export_spans)
                    for ranks in batches
                ]
                futures = self._submit_all(_features_task, feat_args, pending)
                features: list[PartitionFeatures] = [None] * n  # type: ignore[list-item]
                for ranks, fut, args in zip(batches, futures, feat_args):
                    feats, seconds, spans = self._collect(
                        fut, "backend.features", _features_task, args
                    )
                    timings.add("features", seconds)
                    self._adopt_worker_spans(tracer, snapshot_span, spans)
                    for rank, feat in zip(ranks, feats):
                        features[rank] = feat

                with tracer.span("optimize"), timings.phase("optimize"):
                    opt = task.optimize(features)

                comp_args = [
                    (
                        *meta,
                        [(dec[r].slices, float(opt.ebs[r])) for r in ranks],
                        compressor_blob,
                        export_spans,
                    )
                    for ranks in batches
                ]
                futures = self._submit_all(_compress_task, comp_args, pending)
                blocks: list[CompressedBlock] = [None] * n  # type: ignore[list-item]
                for ranks, fut, args in zip(batches, futures, comp_args):
                    blks, seconds, spans = self._collect(
                        fut, "backend.compress", _compress_task, args
                    )
                    timings.add("compress", seconds)
                    self._adopt_worker_spans(tracer, snapshot_span, spans)
                    for rank, block in zip(ranks, blks):
                        blocks[rank] = block
        finally:
            # On error, outstanding batches must not outlive the segment:
            # cancel the queued ones, drain the running ones, and retrieve
            # their exceptions so no "never retrieved" noise obscures the
            # original failure.  Happy path: everything is done, no-op.
            for fut in pending:
                fut.cancel()
            not_cancelled = [f for f in pending if not f.cancelled()]
            if not_cancelled:
                futures_wait(not_cancelled)
                for fut in not_cancelled:
                    fut.exception()
            if shm is not None:
                del shared
                try:
                    shm.close()
                finally:
                    # unlink even when close() raises (a pinned view):
                    # the name must not leak a segment past the run.
                    shm.unlink()

        return BackendOutcome(
            features=features, ebs=opt.ebs, blocks=blocks, optimization=opt,
            timings=timings,
        )


# -- registry ----------------------------------------------------------------

BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Register an :class:`ExecutionBackend` subclass under ``cls.name``."""
    if not (isinstance(cls, type) and issubclass(cls, ExecutionBackend)):
        raise TypeError(f"expected an ExecutionBackend subclass, got {cls!r}")
    if not cls.name or cls.name == ExecutionBackend.name:
        raise ValueError(f"backend class {cls.__name__} must define a name")
    BACKENDS[cls.name] = cls
    return cls


register_backend(SerialBackend)
register_backend(ThreadBackend)
register_backend(ProcessBackend)


def get_backend(
    spec: "str | ExecutionBackend | None" = None, **kwargs: Any
) -> ExecutionBackend:
    """Resolve a backend: instance passthrough, registry name, or default.

    ``None`` resolves to the default :class:`ThreadBackend`.  Keyword
    arguments are forwarded to the backend constructor (names only).
    """
    if spec is None:
        spec = ThreadBackend.name
    if isinstance(spec, ExecutionBackend):
        if kwargs:
            raise ValueError("cannot pass constructor kwargs with a backend instance")
        return spec
    if isinstance(spec, str):
        try:
            cls = BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; registered: {sorted(BACKENDS)}"
            ) from None
        return cls(**kwargs)
    raise TypeError(f"backend must be a name, instance or None, got {type(spec)!r}")
