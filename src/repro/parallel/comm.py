"""Communicator interface (mpi4py-flavoured) and serial implementation.

The library's in situ code is written against this minimal API so it
runs identically under the serial communicator (rank loop) and the
thread-backed SPMD communicator, and would port to mpi4py by a thin
adapter exposing the same five methods.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

__all__ = ["Communicator", "SerialComm", "REDUCE_OPS"]

REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
}


class Communicator(ABC):
    """Minimal collective-communication interface."""

    @property
    @abstractmethod
    def rank(self) -> int:
        """This process's rank in ``[0, size)``."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of ranks."""

    @abstractmethod
    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce ``value`` across ranks with ``op``; all ranks get the result."""

    @abstractmethod
    def allgather(self, value: Any) -> list[Any]:
        """Gather every rank's ``value``; all ranks get the full list."""

    @abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to all ranks."""

    @abstractmethod
    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather values at ``root`` (others receive ``None``)."""

    @abstractmethod
    def barrier(self) -> None:
        """Synchronize all ranks."""

    def _check_op(self, op: str) -> Callable[[Any, Any], Any]:
        try:
            return REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduce op {op!r}; options: {sorted(REDUCE_OPS)}") from None


class SerialComm(Communicator):
    """Single-rank communicator; collectives are identities."""

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        self._check_op(op)
        return value

    def allgather(self, value: Any) -> list[Any]:
        return [value]

    def bcast(self, value: Any, root: int = 0) -> Any:
        if root != 0:
            raise ValueError(f"serial communicator has only rank 0, got root={root}")
        return value

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        if root != 0:
            raise ValueError(f"serial communicator has only rank 0, got root={root}")
        return [value]

    def barrier(self) -> None:
        return None
