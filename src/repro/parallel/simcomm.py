"""Thread-backed SPMD communicator with barrier collectives.

Each simulated rank runs in its own thread; collectives deposit values
in a shared slot table and synchronize with a reusable
:class:`threading.Barrier`.  Two barrier phases per collective (fill,
then read) keep successive collectives from racing on the shared slots.
NumPy releases the GIL for array work, so per-rank compression genuinely
overlaps.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.parallel.comm import Communicator

__all__ = ["ThreadComm", "CommGroup"]


class CommGroup:
    """Shared state for one group of thread ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"group size must be >= 1, got {size}")
        self.size = size
        self.slots: list[Any] = [None] * size
        self.barrier = threading.Barrier(size)
        self.result: Any = None

    def comm(self, rank: int) -> "ThreadComm":
        return ThreadComm(self, rank)


class ThreadComm(Communicator):
    """Per-rank handle onto a :class:`CommGroup`."""

    def __init__(self, group: CommGroup, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise ValueError(f"rank {rank} outside group of size {group.size}")
        self._group = group
        self._rank = rank

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._group.size

    # -- collectives -----------------------------------------------------

    def _exchange(self, value: Any) -> list[Any]:
        """Deposit ``value``, wait, snapshot all slots, wait again."""
        g = self._group
        g.slots[self._rank] = value
        g.barrier.wait()
        snapshot = list(g.slots)
        g.barrier.wait()
        return snapshot

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        fn = self._check_op(op)
        values = self._exchange(value)
        acc = values[0]
        for v in values[1:]:
            acc = fn(acc, v)
        return acc

    def allgather(self, value: Any) -> list[Any]:
        return self._exchange(value)

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} outside group of size {self.size}")
        values = self._exchange(value if self._rank == root else None)
        return values[root]

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} outside group of size {self.size}")
        values = self._exchange(value)
        return values if self._rank == root else None

    def barrier(self) -> None:
        self._group.barrier.wait()
