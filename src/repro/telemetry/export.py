"""Trace/metric serialization: canonical JSONL, Chrome ``trace_event``,
Prometheus-style text.

All three formats are deterministic given the same spans and metrics:
JSON is always written with sorted keys and compact separators (the
repo-wide RL004 contract), span order is start-time-then-id, metric
order is sorted name, and histogram buckets are fixed at creation.

Formats
-------
- **JSONL** (``*.jsonl``): one object per line; spans as
  ``{"type": "span", ...}`` followed by metrics as
  ``{"type": "metric", ...}``.  The lossless format — ``load_spans``
  round-trips it, and it is the input ``repro.cli trace-report`` and the
  hot-path bench consume.
- **Chrome trace** (``*.trace.json``): a ``{"traceEvents": [...]}``
  document of complete (``"ph": "X"``) events, loadable in
  ``about:tracing`` or Perfetto.  Tracks map to thread rows; timestamps
  are rebased to the earliest span and expressed in microseconds.
- **Prometheus text**: ``# TYPE`` headers plus ``name value`` lines,
  metrics only (spans have no Prometheus analogue).  Metric names are
  sanitized (``.``/``-`` → ``_``) and histograms expand to cumulative
  ``_bucket{le="..."}`` series plus ``_sum``/``_count``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "load_spans",
    "prometheus_text",
    "write_export",
]


def jsonl_lines(
    spans: Iterable[dict[str, Any]], metrics: Iterable[dict[str, Any]] = ()
) -> list[str]:
    """Canonical-JSON lines: spans first, then metrics."""
    lines = [
        json.dumps({"type": "span", **rec}, sort_keys=True, separators=(",", ":"))
        for rec in spans
    ]
    lines += [
        json.dumps({"type": "metric", **rec}, sort_keys=True, separators=(",", ":"))
        for rec in metrics
    ]
    return lines


def chrome_trace(
    spans: Iterable[dict[str, Any]], metrics: Iterable[dict[str, Any]] = ()
) -> dict[str, Any]:
    """Chrome ``trace_event`` document (complete events, one pid)."""
    records = list(spans)
    base = min((r["start"] for r in records), default=0.0)
    tracks = sorted({r.get("track", "main") for r in records})
    tid = {track: i + 1 for i, track in enumerate(tracks)}
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tid[track],
            "name": "thread_name",
            "args": {"name": track},
        }
        for track in tracks
    ]
    for rec in records:
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid[rec.get("track", "main")],
                "name": rec["name"],
                "cat": "repro",
                "ts": (rec["start"] - base) * 1e6,
                "dur": (rec["end"] - rec["start"]) * 1e6,
                "args": {
                    "span_id": rec["span_id"],
                    "parent_id": rec["parent_id"],
                    **rec.get("attrs", {}),
                },
            }
        )
    metric_list = list(metrics)
    doc: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metric_list:
        doc["otherData"] = {"metrics": metric_list}
    return doc


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(metrics: Iterable[dict[str, Any]]) -> str:
    """Prometheus-style exposition text (metrics only)."""
    out: list[str] = []
    for rec in metrics:
        name = _prom_name(rec["name"])
        kind = rec["kind"]
        out.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cumulative = 0
            for edge, count in zip(rec["edges"], rec["buckets"]):
                cumulative += count
                out.append(f'{name}_bucket{{le="{edge!r}"}} {cumulative}')
            cumulative += rec["buckets"][-1]
            out.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            out.append(f"{name}_sum {rec['sum']!r}")
            out.append(f"{name}_count {rec['count']}")
        else:
            out.append(f"{name} {rec['value']!r}")
    return "\n".join(out) + "\n"


def write_export(
    path: str | Path,
    spans: Iterable[dict[str, Any]],
    metrics: Iterable[dict[str, Any]] = (),
) -> str:
    """Write a trace file, format chosen by suffix.

    ``*.trace.json`` / ``*.chrome.json`` → Chrome trace document,
    ``*.prom`` / ``*.txt`` → Prometheus text, anything else → JSONL.
    Returns the format name written.
    """
    path = Path(path)
    suffixes = "".join(path.suffixes)
    if suffixes.endswith((".trace.json", ".chrome.json")):
        doc = chrome_trace(spans, metrics)
        path.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n")
        return "chrome"
    if path.suffix in (".prom", ".txt"):
        path.write_text(prometheus_text(metrics))
        return "prometheus"
    path.write_text("\n".join(jsonl_lines(spans, metrics)) + "\n")
    return "jsonl"


def load_spans(path: str | Path) -> list[dict[str, Any]]:
    """Read span records back from a JSONL or Chrome trace file.

    Chrome traces lose the original second-domain clock (timestamps come
    back in seconds relative to the trace start), which is fine for the
    duration arithmetic ``trace-report`` does.
    """
    text = Path(path).read_text()
    # A Chrome trace is one JSON document with "traceEvents"; JSONL lines
    # also start with "{", so sniff by parsing, not by first character.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        spans = []
        for ev in doc.get("traceEvents", []):
            if ev.get("ph") != "X":
                continue
            args = dict(ev.get("args", {}))
            span_id = args.pop("span_id", None)
            parent_id = args.pop("parent_id", None)
            spans.append(
                {
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "name": ev["name"],
                    "start": ev["ts"] / 1e6,
                    "end": (ev["ts"] + ev["dur"]) / 1e6,
                    "attrs": args,
                    "track": f"tid-{ev.get('tid', 1)}",
                }
            )
        return spans
    spans = []
    for line in text.splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        if rec.get("type") == "span":
            rec.pop("type")
            spans.append(rec)
    return spans
