"""Summaries computed from exported trace files.

``repro.cli trace-report`` renders three tables from any trace a
``--telemetry`` run wrote:

- **per-stage**: total seconds and call counts per compression stage
  (the ``sz.*`` spans: map/quantize/lorenzo/residual/entropy/
  side_channels) — the cuSZ-style breakdown that makes kernel work
  tractable.
- **per-field**: wall time per simulation field, from the controller's
  per-field spans.
- **overhead**: the paper's §4.3 headline ratio — adaptive machinery
  (``features`` + ``optimize``) over ``compress`` — computed directly
  from span durations, no bench-side plumbing.
- **R-Q probes**: the ``rq.probe`` spans of the closed-form
  ratio-quality engine — how much probing replaced trial compressions,
  and what it cost.

All functions take plain span records (``Span.to_record()`` shape) as
returned by :func:`repro.telemetry.export.load_spans`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Iterable

from repro.util.tables import format_table

__all__ = [
    "field_summary",
    "overhead_summary",
    "probe_summary",
    "render_trace_report",
    "stage_summary",
]

#: Span name of the ratio-quality quantization probe.
PROBE_SPAN = "rq.probe"

#: Span-name prefix of the SZ compression-stage spans.
STAGE_PREFIX = "sz."

#: Phase spans the §4.3 ratio is computed from: adaptive machinery over
#: the compression it steers.
OVERHEAD_PHASES = ("features", "optimize")
BASE_PHASE = "compress"


def _duration(rec: dict[str, Any]) -> float:
    return rec["end"] - rec["start"]


def stage_summary(spans: Iterable[dict[str, Any]]) -> dict[str, dict[str, float | int]]:
    """``{stage: {"seconds", "count"}}`` for the ``sz.*`` stage spans."""
    out: dict[str, dict[str, float | int]] = {}
    for rec in spans:
        name = rec["name"]
        if not name.startswith(STAGE_PREFIX):
            continue
        stage = name[len(STAGE_PREFIX):]
        stats = out.setdefault(stage, {"seconds": 0.0, "count": 0})
        stats["seconds"] += _duration(rec)
        stats["count"] += 1
    return out


def field_summary(spans: Iterable[dict[str, Any]]) -> dict[str, dict[str, float | int]]:
    """``{field: {"seconds", "count"}}`` from spans carrying a ``field``
    attribute (the controller's per-field spans)."""
    out: dict[str, dict[str, float | int]] = {}
    for rec in spans:
        field = rec.get("attrs", {}).get("field")
        if field is None or rec["name"] != "stream.field":
            continue
        stats = out.setdefault(str(field), {"seconds": 0.0, "count": 0})
        stats["seconds"] += _duration(rec)
        stats["count"] += 1
    return out


def overhead_summary(spans: Iterable[dict[str, Any]]) -> dict[str, float]:
    """§4.3 accounting: phase totals plus ``overhead_ratio``.

    ``overhead_ratio`` is ``(features + optimize) / compress``; 0.0 when
    no compress spans were recorded (empty/foreign trace).
    """
    totals: dict[str, float] = defaultdict(float)
    for rec in spans:
        if rec["name"] in OVERHEAD_PHASES or rec["name"] == BASE_PHASE:
            totals[rec["name"]] += _duration(rec)
    base = totals.get(BASE_PHASE, 0.0)
    overhead = math.fsum(totals.get(p, 0.0) for p in OVERHEAD_PHASES)
    return {
        **{p: totals.get(p, 0.0) for p in (*OVERHEAD_PHASES, BASE_PHASE)},
        "overhead_ratio": overhead / base if base > 0 else 0.0,
    }


def probe_summary(spans: Iterable[dict[str, Any]]) -> dict[str, float | int]:
    """Totals for the ratio-quality ``rq.probe`` spans.

    ``{"seconds", "count", "blocks"}`` — ``blocks`` sums the spans'
    ``blocks`` attribute (partition views probed), quantifying how many
    trial compressions the model replaced.  Empty dict when the trace
    has no probes.
    """
    out: dict[str, float | int] = {}
    for rec in spans:
        if rec["name"] != PROBE_SPAN:
            continue
        if not out:
            out = {"seconds": 0.0, "count": 0, "blocks": 0}
        out["seconds"] += _duration(rec)
        out["count"] += 1
        out["blocks"] += int(rec.get("attrs", {}).get("blocks", 0))
    return out


def render_trace_report(spans: Iterable[dict[str, Any]]) -> str:
    """The full text report ``repro.cli trace-report`` prints."""
    records = list(spans)
    sections: list[str] = []

    stages = stage_summary(records)
    if stages:
        total = sum(s["seconds"] for s in stages.values())
        rows = [
            (stage, stats["seconds"], stats["count"],
             stats["seconds"] / total if total > 0 else 0.0)
            for stage, stats in sorted(
                stages.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        sections.append(
            format_table(
                ("stage", "seconds", "count", "share"),
                rows,
                title="Compression stages (sz.*)",
            )
        )

    fields = field_summary(records)
    if fields:
        rows = [
            (field, stats["seconds"], stats["count"])
            for field, stats in sorted(
                fields.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        sections.append(
            format_table(
                ("field", "seconds", "count"), rows, title="Per-field wall time"
            )
        )

    probes = probe_summary(records)
    if probes:
        sections.append(
            format_table(
                ("probes", "blocks", "seconds"),
                [(probes["count"], probes["blocks"], probes["seconds"])],
                title="Ratio-quality probes (rq.probe: codec-free, "
                "replaces trial compressions)",
            )
        )

    overhead = overhead_summary(records)
    rows = [(name, overhead[name]) for name in (*OVERHEAD_PHASES, BASE_PHASE)]
    rows.append(("overhead_ratio", overhead["overhead_ratio"]))
    sections.append(
        format_table(
            ("phase", "seconds"),
            rows,
            title="Adaptive overhead (paper §4.3: (features+optimize)/compress)",
        )
    )

    if not records:
        sections.insert(0, "trace contains no spans")
    return "\n\n".join(sections)
