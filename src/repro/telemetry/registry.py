"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately boring: three primitive kinds, string
names, plain-float values, and a snapshot method that returns sorted
plain dicts.  Two properties matter more than features:

- **Deterministic exports.**  Histograms take their bucket edges at
  creation time and never grow them, so two runs that observe the same
  values export byte-identical text (see :mod:`repro.telemetry.export`).
  Snapshot ordering is by sorted metric name, never insertion order.
- **Cheap when disarmed.**  Code paths never consult the registry
  directly in hot loops; they go through :func:`repro.telemetry.enabled`
  first (see the package docstring for the idiom).  Metric objects
  themselves are one attribute update per observation.

Metric instances must come from a :class:`MetricsRegistry` (normally the
process-wide one via :func:`repro.telemetry.get_registry`); constructing
``Counter``/``Gauge``/``Histogram`` directly outside this package is
flagged by lint rule RL012, because ad-hoc module-level metrics are
invisible to the exporters and resist test resets.
"""

from __future__ import annotations

import threading
from typing import Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (events, cache hits, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount!r})")
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {"kind": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-observed value (pool size, current eb scale, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, object]:
        return {"kind": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket histogram; edges are frozen at creation.

    ``edges`` are the *upper* bounds of the finite buckets (strictly
    increasing); one implicit overflow bucket catches everything above
    the last edge.  Because the edges never adapt to the data, exports
    are a pure function of the observed values — the determinism the
    whole telemetry layer promises.
    """

    __slots__ = ("name", "edges", "bucket_counts", "count", "total")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        edge_list = [float(e) for e in edges]
        if not edge_list:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edge_list, edge_list[1:])):
            raise ValueError(f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.edges: tuple[float, ...] = tuple(edge_list)
        self.bucket_counts: list[int] = [0] * (len(edge_list) + 1)
        self.count: int = 0
        self.total: float = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.edges)  # overflow bucket unless an edge catches it
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value

    def snapshot(self) -> dict[str, object]:
        return {
            "kind": "histogram",
            "name": self.name,
            "edges": list(self.edges),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Name-keyed factory and holder for the process's metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, so call sites don't need
    module-level caching (which RL012 would flag anyway).  Re-requesting
    a name as a different kind — or a histogram with different edges —
    is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        hist = self._get_or_create(name, Histogram, lambda: Histogram(name, edges))
        if hist.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {hist.edges}"
            )
        return hist

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict[str, object]]:
        """All metrics as plain dicts, sorted by name (deterministic)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return [m.snapshot() for m in metrics]

    def merge_counts(self, counts: dict[str, float]) -> None:
        """Fold worker-exported ``{name: delta}`` counter totals in."""
        for name in sorted(counts):
            self.counter(name).inc(counts[name])

    def reset(self) -> None:
        """Drop every metric (test isolation; not used on live paths)."""
        with self._lock:
            self._metrics.clear()
