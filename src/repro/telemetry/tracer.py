"""Span-based tracing with a zero-overhead disarmed default.

A :class:`Span` is a named interval with a process-unique id, a parent
link, and free-form attributes; a :class:`Tracer` hands them out and
collects them as they close.  Nesting is tracked per *thread* (each
``ThreadBackend`` rank gets its own parent stack), and spans recorded in
worker *processes* are exported as plain dicts and re-homed into the
parent tracer with :meth:`Tracer.adopt` — ids are reassigned there, so
merged traces stay collision-free no matter how many workers report.

Clock discipline: every timestamp comes from
:func:`repro.util.timer.monotonic`, the repo's single RL005-sanctioned
wall-clock entry point.  Spans therefore share an epoch with ``Timer``
and ``TimingBreakdown`` within a process (cross-process spans are
rebased on adoption, since ``perf_counter`` epochs differ per process).

The disarmed path is a shared singleton ``_NullSpan`` whose
``__enter__``/``__exit__``/``set_attr`` do nothing — no allocation, no
clock read, no branch beyond the method dispatch — which is what makes
``with tracer.span(...)`` safe to leave permanently in compression hot
loops.  Spans must come from a tracer (normally
:func:`repro.telemetry.get_tracer`); constructing ``Span`` directly
outside this package is flagged by lint rule RL012.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.util.timer import monotonic

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One named interval.  Created by :meth:`Tracer.span`, used as a
    context manager; times are filled in on enter/exit."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs", "track", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, Any],
        track: str,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.track = track
        self.start: float = 0.0
        self.end: float = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        self.end = monotonic()
        self._tracer._pop(self)

    def to_record(self) -> dict[str, Any]:
        """Plain-dict form (the exporters' and workers' wire format)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "track": self.track,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.end - self.start:.6f}s)"
        )


class _NullSpan:
    """Shared do-nothing span: the entire cost of disarmed tracing."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disarmed tracer: every ``span()`` returns the one null span."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def export_spans(self) -> list[dict[str, Any]]:
        return []

    def adopt(
        self,
        records: Iterable[dict[str, Any]],
        parent_id: int | None = None,
        rebase_to: float | None = None,
        track: str | None = None,
    ) -> None:
        return None


#: The process-wide disarmed tracer (what ``get_tracer()`` returns by
#: default).  Stateless, so one instance serves everyone.
NULL_TRACER = NullTracer()


class Tracer:
    """Armed tracer: allocates ids, tracks per-thread nesting, collects
    finished spans in completion order."""

    enabled = True

    def __init__(self, track: str = "main") -> None:
        self.track = track
        self._next_id = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()
        self._finished: list[Span] = []

    # -- span lifecycle ------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new child of the current thread's innermost open span."""
        stack = getattr(self._stacks, "stack", None)
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, parent_id, name, attrs, self.track)

    def _push(self, span: Span) -> None:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stacks, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    # -- collection ----------------------------------------------------
    @property
    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def export_spans(self) -> list[dict[str, Any]]:
        """Finished spans as plain dicts (wire format for workers and
        exporters), ordered by start time then id for determinism."""
        with self._lock:
            spans = list(self._finished)
        return [s.to_record() for s in sorted(spans, key=lambda s: (s.start, s.span_id))]

    def adopt(
        self,
        records: Iterable[dict[str, Any]],
        parent_id: int | None = None,
        rebase_to: float | None = None,
        track: str | None = None,
    ) -> None:
        """Re-home spans exported by another tracer (process worker).

        Ids are reassigned from this tracer's sequence with parent links
        remapped; root spans of the batch are attached under
        ``parent_id``.  Because ``perf_counter`` epochs differ across
        processes, ``rebase_to`` shifts the batch so its earliest start
        lands there (typically the enclosing span's start).  ``track``
        relabels the batch (e.g. ``"worker"``) for trace viewers.
        """
        batch = list(records)
        if not batch:
            return
        offset = 0.0
        if rebase_to is not None:
            offset = rebase_to - min(r["start"] for r in batch)
        id_map: dict[int, int] = {}
        adopted: list[Span] = []
        with self._lock:
            for rec in batch:
                new_id = self._next_id
                self._next_id += 1
                id_map[rec["span_id"]] = new_id
            for rec in batch:
                old_parent = rec.get("parent_id")
                span = Span(
                    self,
                    id_map[rec["span_id"]],
                    id_map.get(old_parent, parent_id) if old_parent is not None else parent_id,
                    rec["name"],
                    dict(rec.get("attrs", ())),
                    track if track is not None else rec.get("track", self.track),
                )
                span.start = rec["start"] + offset
                span.end = rec["end"] + offset
                adopted.append(span)
            self._finished.extend(adopted)
