"""Out-of-band observability: tracing spans + a process metrics registry.

The paper's §4.3 headline is an *overhead* claim (adaptive machinery
costs ~1-1.5% of compression), so the instrumentation that substantiates
it must itself be close to free.  This package keeps that bargain with
one module-level switch:

- **Disarmed (default)**: :func:`get_tracer` returns the shared
  :data:`~repro.telemetry.tracer.NULL_TRACER` whose spans allocate
  nothing and never read the clock; :func:`enabled` is a single global
  load.  Instrumented code stays permanently in place.
- **Armed** (:func:`arm`, or the CLI's ``--telemetry``): a real
  :class:`~repro.telemetry.tracer.Tracer` plus the process
  :class:`~repro.telemetry.registry.MetricsRegistry` record everything,
  exported at the end via :mod:`repro.telemetry.export`.

The hot-loop idiom — fetch once, guard batches, never per-element::

    from repro import telemetry

    def compress_batch(views):
        tracer = telemetry.get_tracer()     # null object when disarmed
        with tracer.span("sz.quantize", blocks=len(views)):
            ...
        if telemetry.enabled():             # rare-event metrics only
            telemetry.get_registry().counter("sz.batches").inc()

Telemetry is strictly *out-of-band*: nothing here is ever written into
the run ledger, so an armed streamed run produces byte-identical ledger
lines to a disarmed one and replay stays bitwise-faithful.  Clocks are
routed exclusively through :func:`repro.util.timer.monotonic`, keeping
lint rule RL005 authoritative; creating metrics or spans outside this
package's factories is flagged by RL012.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "arm",
    "armed",
    "disarm",
    "enabled",
    "get_registry",
    "get_tracer",
]

_tracer: Tracer | NullTracer = NULL_TRACER
_registry = MetricsRegistry()


def enabled() -> bool:
    """Fast path for hot loops: is telemetry currently armed?"""
    return _tracer.enabled


def get_tracer() -> Tracer | NullTracer:
    """The process tracer — null object unless :func:`arm` was called."""
    return _tracer


def get_registry() -> MetricsRegistry:
    """The process metrics registry (always real; callers guard hot
    paths with :func:`enabled` so a disarmed run records nothing)."""
    return _registry


def arm(track: str = "main") -> Tracer:
    """Install a fresh armed tracer (and return it).

    Metrics accumulate in the standing registry; spans start from a
    clean tracer so each armed window exports exactly its own trace.
    """
    global _tracer
    _tracer = Tracer(track=track)
    return _tracer


def disarm() -> None:
    """Restore the zero-overhead null tracer.  The last armed tracer's
    spans remain readable from the reference returned by :func:`arm`."""
    global _tracer
    _tracer = NULL_TRACER


@contextmanager
def armed(track: str = "main", reset_metrics: bool = True) -> Iterator[Tracer]:
    """Scoped arming for benches and tests: arm, yield the tracer,
    always disarm.  ``reset_metrics`` clears the registry on entry so
    the window's counters start from zero."""
    if reset_metrics:
        _registry.reset()
    tracer = arm(track=track)
    try:
        yield tracer
    finally:
        disarm()
