"""Zel'dovich-style particle sampling from a density field.

The paper's §2.1 describes FoF halo finding on particles; Nyx itself is
Eulerian, so its halo finder works on the density grid.  We provide both:
this module converts a density grid into a particle set (for
:mod:`repro.analysis.fof`), by sampling particle counts per cell
proportional to density and jittering positions inside each cell.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import default_rng
from repro.util.validation import check_3d

__all__ = ["sample_particles"]


def sample_particles(
    density: np.ndarray,
    n_particles: int,
    box_size: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``n_particles`` positions with probability proportional to density.

    Returns an ``(n, 3)`` float64 array of positions in ``[0, box_size)``.
    Dense cells receive proportionally more particles, so FoF halos trace
    the same over-densities the grid halo finder sees.
    """
    rho = check_3d(density, "density")
    if (rho < 0).any():
        raise ValueError("density must be non-negative")
    if n_particles <= 0:
        raise ValueError(f"n_particles must be positive, got {n_particles}")
    total = rho.sum()
    if total <= 0:
        raise ValueError("density sums to zero; cannot sample particles")
    rng = default_rng(seed)

    flat_p = (rho / total).ravel()
    counts = rng.multinomial(n_particles, flat_p)
    occupied = np.flatnonzero(counts)
    reps = counts[occupied]
    cells = np.repeat(occupied, reps)
    coords = np.stack(np.unravel_index(cells, rho.shape), axis=1).astype(np.float64)
    jitter = rng.random((len(cells), 3))
    cell_size = box_size / np.array(rho.shape, dtype=np.float64)
    return (coords + jitter) * cell_size[None, :]
