"""Snapshot persistence.

Nyx writes HDF5/AMReX plotfiles; the offline environment has no h5py, so
snapshots round-trip through a compressed ``.npz`` container with the
same logical layout (one array per field plus scalar metadata).  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import os
import zipfile

import numpy as np
from numpy.lib import format as _npy_format

from repro.sim.nyx import NyxSnapshot

__all__ = ["save_snapshot", "load_snapshot", "peek_snapshot_shape"]

_META_PREFIX = "__meta_"


def save_snapshot(snapshot: NyxSnapshot, path: str | os.PathLike) -> None:
    """Write ``snapshot`` to ``path`` (``.npz`` appended if missing)."""
    payload: dict[str, np.ndarray] = dict(snapshot.fields)
    payload["__redshift"] = np.array(snapshot.redshift)
    payload["__box_size"] = np.array(snapshot.box_size)
    for key, value in snapshot.meta.items():
        payload[_META_PREFIX + key] = np.array(value)
    np.savez_compressed(path, **payload)


def peek_snapshot_shape(path: str | os.PathLike) -> tuple[int, ...]:
    """Grid shape of a snapshot container, from the ``.npy`` headers only.

    Streaming consumers need the shape before the first dump is
    processed (to build the rank decomposition); this reads a few hundred
    bytes of zip + array-header metadata instead of decompressing a
    whole field.
    """
    with zipfile.ZipFile(path) as zf:
        for name in sorted(zf.namelist()):
            stem = name[: -len(".npy")] if name.endswith(".npy") else name
            if stem.startswith("__"):  # scalar metadata entries
                continue
            with zf.open(name) as fh:
                version = _npy_format.read_magic(fh)
                if version == (1, 0):
                    shape, _f, _d = _npy_format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, _f, _d = _npy_format.read_array_header_2_0(fh)
                else:  # pragma: no cover - future .npy format revisions
                    shape, _f, _d = _npy_format._read_array_header(fh, version)
                return tuple(int(s) for s in shape)
    raise ValueError(f"{path!r} is not a snapshot container (no field arrays)")


def load_snapshot(path: str | os.PathLike) -> NyxSnapshot:
    """Read a snapshot written by :func:`save_snapshot`."""
    with np.load(path) as data:
        fields = {}
        meta = {}
        redshift = None
        box_size = None
        for key in data.files:
            if key == "__redshift":
                redshift = float(data[key])
            elif key == "__box_size":
                box_size = float(data[key])
            elif key.startswith(_META_PREFIX):
                meta[key[len(_META_PREFIX) :]] = float(data[key])
            else:
                fields[key] = data[key]
    if redshift is None or box_size is None:
        raise ValueError(f"{path!r} is not a snapshot container (missing metadata)")
    return NyxSnapshot(fields=fields, redshift=redshift, box_size=box_size, meta=meta)
