"""Snapshot persistence.

Nyx writes HDF5/AMReX plotfiles; the offline environment has no h5py, so
snapshots round-trip through a compressed ``.npz`` container with the
same logical layout (one array per field plus scalar metadata).  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import os

import numpy as np

from repro.sim.nyx import NyxSnapshot

__all__ = ["save_snapshot", "load_snapshot"]

_META_PREFIX = "__meta_"


def save_snapshot(snapshot: NyxSnapshot, path: str | os.PathLike) -> None:
    """Write ``snapshot`` to ``path`` (``.npz`` appended if missing)."""
    payload: dict[str, np.ndarray] = dict(snapshot.fields)
    payload["__redshift"] = np.array(snapshot.redshift)
    payload["__box_size"] = np.array(snapshot.box_size)
    for key, value in snapshot.meta.items():
        payload[_META_PREFIX + key] = np.array(value)
    np.savez_compressed(path, **payload)


def load_snapshot(path: str | os.PathLike) -> NyxSnapshot:
    """Read a snapshot written by :func:`save_snapshot`."""
    with np.load(path) as data:
        fields = {}
        meta = {}
        redshift = None
        box_size = None
        for key in data.files:
            if key == "__redshift":
                redshift = float(data[key])
            elif key == "__box_size":
                box_size = float(data[key])
            elif key.startswith(_META_PREFIX):
                meta[key[len(_META_PREFIX) :]] = float(data[key])
            else:
                fields[key] = data[key]
    if redshift is None or box_size is None:
        raise ValueError(f"{path!r} is not a snapshot container (missing metadata)")
    return NyxSnapshot(fields=fields, redshift=redshift, box_size=box_size, meta=meta)
