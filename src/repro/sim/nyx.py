"""Nyx-like snapshot generator (the paper's Table 2 dataset, synthesized).

A snapshot holds the six fields the paper compresses:

==================  =========================  =======================
Field               Construction               Paper value range
==================  =========================  =======================
baryon_density      lognormal map of the GRF   (0, 1e5)
dark_matter_density lognormal, higher bias     (0, 1e4)
temperature         polytropic ``T0*rho^(g-1)``  (1e2, 1e7)
                    with shock-heating scatter
velocity_x/y/z      linear theory              (-1e8, 1e8)
                    ``v_k ~ i k delta_k/k^2``
==================  =========================  =======================

Construction choices that matter for the reproduction:

- **Fixed phases across redshift.**  The Gaussian field is generated
  once per seed; only its amplitude is scaled by the growth factor
  ``D(z)``.  Partitions therefore evolve coherently through snapshots,
  exactly the behaviour of Figure 1 and the premise of the
  static-vs-adaptive redshift experiment (Fig. 16/17).
- **Fixed global mean densities.**  Baryon and dark-matter densities are
  normalized to mean 1 (units of the cosmic mean), mirroring the paper's
  observation (§4.3) that their overall mean is fixed by the simulation
  and needs no ``MPI_Allreduce``.
- **Heterogeneous partitions.**  The lognormal transform concentrates
  mass in few dense clumps; per-partition means span orders of
  magnitude, which is the variance the adaptive optimizer exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.cosmology import Cosmology, growth_factor, matter_power_spectrum
from repro.sim.grf import gaussian_random_field, wavenumber_grid
from repro.util.rng import default_rng

__all__ = ["FIELD_NAMES", "NyxSnapshot", "NyxSimulator"]

FIELD_NAMES = (
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
)

#: Physical value ranges from the paper's Table 2, used by validity tests.
FIELD_RANGES: dict[str, tuple[float, float]] = {
    "baryon_density": (0.0, 1e5),
    "dark_matter_density": (0.0, 1e4),
    "temperature": (1e2, 1e7),
    "velocity_x": (-1e8, 1e8),
    "velocity_y": (-1e8, 1e8),
    "velocity_z": (-1e8, 1e8),
}


@dataclass
class NyxSnapshot:
    """One timestep of the synthetic simulation.

    Attributes
    ----------
    fields:
        Mapping of field name to 3-D float32 array (Nyx stores fp32).
    redshift:
        Snapshot redshift.
    box_size:
        Comoving box size in Mpc/h (sets k units in analyses).
    """

    fields: dict[str, np.ndarray]
    redshift: float
    box_size: float
    meta: dict[str, float] = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, int, int]:
        return next(iter(self.fields.values())).shape

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(f"unknown field {name!r}; available: {sorted(self.fields)}") from None


class NyxSimulator:
    """Generates Nyx-like snapshots with coherent evolution in redshift.

    Parameters
    ----------
    shape:
        Grid resolution (e.g. ``(128, 128, 128)``).
    box_size:
        Comoving box size in Mpc/h.
    seed:
        Root seed; fixes the white-noise phases for all snapshots.
    cosmo:
        Background cosmology.
    sigma_delta0:
        Standard deviation of the *Gaussian* overdensity at z=0 before
        the lognormal map.  Larger values give stronger partition-to-
        partition heterogeneity (more adaptive-compression headroom).
    temperature_t0:
        Temperature at mean density (K).
    gamma:
        Polytropic index of the temperature-density relation.
    velocity_scale:
        RMS velocity amplitude at z=0 in cm/s (Nyx units).

    Examples
    --------
    >>> sim = NyxSimulator(shape=(32, 32, 32), seed=7)
    >>> snap = sim.snapshot(z=0.5)
    >>> sorted(snap.fields) == sorted(FIELD_NAMES)
    True
    """

    def __init__(
        self,
        shape: tuple[int, int, int] = (128, 128, 128),
        box_size: float = 64.0,
        seed: int | np.random.Generator | None = 42,
        cosmo: Cosmology | None = None,
        sigma_delta0: float = 2.2,
        temperature_t0: float = 1.2e4,
        gamma: float = 1.6,
        velocity_scale: float = 2.0e7,
    ) -> None:
        if len(shape) != 3 or any(s < 4 for s in shape):
            raise ValueError(f"shape must be 3-D with dims >= 4, got {shape}")
        if sigma_delta0 <= 0:
            raise ValueError(f"sigma_delta0 must be positive, got {sigma_delta0}")
        if gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1 (polytropic), got {gamma}")
        self.shape = tuple(int(s) for s in shape)
        self.box_size = float(box_size)
        self.cosmo = cosmo or Cosmology()
        self.sigma_delta0 = float(sigma_delta0)
        self.temperature_t0 = float(temperature_t0)
        self.gamma = float(gamma)
        self.velocity_scale = float(velocity_scale)

        rng = default_rng(seed)
        # One base Gaussian field per density component, fixed phases.
        pk = lambda k: matter_power_spectrum(k, z=0.0, cosmo=self.cosmo)  # noqa: E731
        self._delta_b = gaussian_random_field(
            self.shape, pk, seed=rng, box_size=self.box_size, target_sigma=1.0
        )
        self._delta_dm = 0.9 * self._delta_b + 0.44 * gaussian_random_field(
            self.shape, pk, seed=rng, box_size=self.box_size, target_sigma=1.0
        )
        self._delta_dm /= self._delta_dm.std()
        # Small-scale thermal scatter (shock heating proxy), fixed phases.
        self._theta = gaussian_random_field(
            self.shape,
            lambda k: np.where(k > 0, 1.0 / np.maximum(k, 1e-30), 0.0),
            seed=rng,
            box_size=self.box_size,
            target_sigma=1.0,
        )
        self._delta_b_fft = np.fft.fftn(self._delta_b)
        # Wavenumber grids for the velocity solve, built once: a redshift
        # schedule asks for the same three components per snapshot, and
        # rebuilding three meshgrids per axis per snapshot dominated the
        # velocity cost.  Broadcastable 1-D axes carry the same values as
        # the full ``meshgrid`` arrays (velocities are bitwise identical).
        k_axes = [
            np.fft.fftfreq(n, d=self.box_size / n) * 2.0 * np.pi for n in self.shape
        ]
        self._vel_k_axes = (
            k_axes[0][:, None, None],
            k_axes[1][None, :, None],
            k_axes[2][None, None, :],
        )
        k2 = (
            self._vel_k_axes[0] ** 2
            + self._vel_k_axes[1] ** 2
            + self._vel_k_axes[2] ** 2
        )
        k2[0, 0, 0] = 1.0  # avoid division by zero; DC mode forced to zero below
        self._vel_k2 = k2

    # -- field constructors ------------------------------------------------

    def _lognormal_density(self, delta: np.ndarray, sigma: float) -> np.ndarray:
        """Mean-1 lognormal density from a unit-variance Gaussian field."""
        g = sigma * delta
        rho = np.exp(g - 0.5 * sigma**2)
        # Exact mean-1 normalization (the analytic factor is only exact for
        # infinite volumes).
        return rho / rho.mean()

    def _velocity(self, z: float, axis: int) -> np.ndarray:
        """Linear-theory peculiar velocity component: ``v_k = i f aH delta_k k/k^2``."""
        vk = 1j * self._vel_k_axes[axis] / self._vel_k2 * self._delta_b_fft
        vk[0, 0, 0] = 0.0
        v = np.fft.ifftn(vk).real
        d = growth_factor(z, self.cosmo)
        scale = self.velocity_scale * d / max(v.std(), 1e-30)
        return v * scale

    # -- public API ---------------------------------------------------------

    def snapshot(self, z: float = 0.0, dtype: type = np.float32) -> NyxSnapshot:
        """Generate the six-field snapshot at redshift ``z``.

        Lower redshift means larger growth factor, hence higher density
        contrast (sparser, clumpier formation — §4.2's explanation for
        improvement growing as redshift drops).
        """
        if z < 0:
            raise ValueError(f"redshift must be non-negative, got {z}")
        d = float(growth_factor(z, self.cosmo))
        sigma_b = self.sigma_delta0 * d
        sigma_dm = 1.1 * self.sigma_delta0 * d

        rho_b = self._lognormal_density(self._delta_b, sigma_b)
        rho_dm = self._lognormal_density(self._delta_dm, sigma_dm)

        temp = (
            self.temperature_t0
            * np.power(np.maximum(rho_b, 1e-6), self.gamma - 1.0)
            * np.exp(0.35 * self._theta)
        )
        np.clip(temp, *FIELD_RANGES["temperature"], out=temp)

        fields = {
            "baryon_density": rho_b,
            "dark_matter_density": rho_dm,
            "temperature": temp,
            "velocity_x": self._velocity(z, 0),
            "velocity_y": self._velocity(z, 1),
            "velocity_z": self._velocity(z, 2),
        }
        fields = {name: np.ascontiguousarray(arr, dtype=dtype) for name, arr in fields.items()}
        return NyxSnapshot(
            fields=fields,
            redshift=float(z),
            box_size=self.box_size,
            meta={"growth_factor": d, "sigma_b": sigma_b, "sigma_dm": sigma_dm},
        )

    def density_wavenumbers(self) -> np.ndarray:
        """k-grid matching the snapshot shape (utility for analyses)."""
        return wavenumber_grid(self.shape, self.box_size)
