"""Background cosmology: growth factor and linear matter power spectrum.

Only the pieces the synthetic snapshot generator needs:

- the linear growth factor ``D(z)`` via the Carroll-Press-Turner
  approximation, normalized to ``D(0) = 1`` — structure amplitude grows
  as redshift decreases, which drives the paper's Figure 16/17
  observation that optimized error-bound maps drift between snapshots;
- the BBKS transfer function and a power-law primordial spectrum, which
  give the synthetic fields a realistic distribution of power across
  scales (so the power-spectrum analysis in :mod:`repro.analysis` sees a
  cosmology-shaped ``P(k)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Cosmology", "growth_factor", "bbks_transfer", "matter_power_spectrum"]


@dataclass(frozen=True)
class Cosmology:
    """Flat LCDM parameters (defaults near Planck values)."""

    omega_m: float = 0.31
    omega_l: float = 0.69
    h: float = 0.68
    n_s: float = 0.96
    sigma8: float = 0.81

    def __post_init__(self) -> None:
        if not 0 < self.omega_m <= 1:
            raise ValueError(f"omega_m must be in (0, 1], got {self.omega_m}")
        if self.omega_l < 0:
            raise ValueError(f"omega_l must be non-negative, got {self.omega_l}")
        if self.h <= 0:
            raise ValueError(f"h must be positive, got {self.h}")


def _omega_m_z(cosmo: Cosmology, z: float) -> float:
    """Matter density parameter at redshift ``z`` (flat universe)."""
    a3 = (1.0 + z) ** 3
    return cosmo.omega_m * a3 / (cosmo.omega_m * a3 + cosmo.omega_l)


def _growth_unnormalized(cosmo: Cosmology, z: float) -> float:
    """Carroll, Press & Turner (1992) growth approximation, times a."""
    om = _omega_m_z(cosmo, z)
    ol = 1.0 - om
    g = 2.5 * om / (om ** (4.0 / 7.0) - ol + (1.0 + om / 2.0) * (1.0 + ol / 70.0))
    return g / (1.0 + z)


def growth_factor(z: float | np.ndarray, cosmo: Cosmology | None = None) -> float | np.ndarray:
    """Linear growth factor ``D(z)`` normalized so ``D(0) = 1``.

    Monotonically decreasing in ``z``: earlier snapshots (large z) have
    smoother, lower-contrast fields.
    """
    cosmo = cosmo or Cosmology()
    z_arr = np.asarray(z, dtype=np.float64)
    if (z_arr < 0).any():
        raise ValueError("redshift must be non-negative")
    d0 = _growth_unnormalized(cosmo, 0.0)
    out = np.vectorize(lambda zz: _growth_unnormalized(cosmo, zz) / d0)(z_arr)
    return float(out) if np.isscalar(z) or z_arr.ndim == 0 else out


def bbks_transfer(k: np.ndarray, cosmo: Cosmology | None = None) -> np.ndarray:
    """BBKS (Bardeen et al. 1986) cold-dark-matter transfer function.

    ``k`` in h/Mpc.  T(k) -> 1 for k -> 0 and falls as ~ln(k)/k^2 at
    small scales.
    """
    cosmo = cosmo or Cosmology()
    k = np.asarray(k, dtype=np.float64)
    if (k < 0).any():
        raise ValueError("wavenumbers must be non-negative")
    gamma = cosmo.omega_m * cosmo.h  # shape parameter
    q = np.where(k > 0, k / max(gamma, 1e-12), 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(
            q > 0,
            np.log1p(2.34 * q)
            / (2.34 * q)
            * (1 + 3.89 * q + (16.1 * q) ** 2 + (5.46 * q) ** 3 + (6.71 * q) ** 4)
            ** -0.25,
            1.0,
        )
    return t


def matter_power_spectrum(
    k: np.ndarray,
    z: float = 0.0,
    cosmo: Cosmology | None = None,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Linear matter power spectrum ``P(k, z)`` (arbitrary normalization).

    ``P(k) = amplitude * k**n_s * T(k)**2 * D(z)**2``; the snapshot
    generator renormalizes the field variance afterwards, so
    ``amplitude`` only sets relative units.
    """
    cosmo = cosmo or Cosmology()
    k = np.asarray(k, dtype=np.float64)
    d = growth_factor(z, cosmo)
    return amplitude * np.where(k > 0, k**cosmo.n_s, 0.0) * bbks_transfer(k, cosmo) ** 2 * d**2
