"""Gaussian random field synthesis via FFT filtering.

Standard approach: draw real white noise, transform to Fourier space,
multiply by ``sqrt(P(k))``, transform back.  Because the filter is real
and even, the result is exactly real.  Phases are a function of the seed
alone, so two fields generated with the same seed but different ``P(k)``
amplitudes (e.g. different redshifts) have identical structure at
different contrast — the property the multi-snapshot experiments need.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.util.rng import default_rng

__all__ = ["wavenumber_grid", "gaussian_random_field"]


def wavenumber_grid(shape: tuple[int, ...], box_size: float = 1.0) -> np.ndarray:
    """Magnitude of the comoving wavevector for every FFT mode.

    ``k`` is in units of ``2*pi/box_size`` times integer mode numbers,
    i.e. the fundamental mode has ``|k| = 2*pi/box_size``.
    """
    if box_size <= 0:
        raise ValueError(f"box_size must be positive, got {box_size}")
    axes = [np.fft.fftfreq(n, d=box_size / n) * 2.0 * np.pi for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k2 = sum(g**2 for g in grids)
    return np.sqrt(k2)


def gaussian_random_field(
    shape: tuple[int, int, int],
    power_spectrum: Callable[[np.ndarray], np.ndarray],
    seed: int | np.random.Generator | None = None,
    box_size: float = 1.0,
    target_sigma: float | None = None,
) -> np.ndarray:
    """Generate a real 3-D Gaussian random field with spectrum ``P(k)``.

    Parameters
    ----------
    shape:
        Grid dimensions.
    power_spectrum:
        Callable mapping ``|k|`` (array) to non-negative power.
    seed:
        Seed or generator; fixes the phases.
    box_size:
        Physical box size (sets the k units fed to ``power_spectrum``).
    target_sigma:
        If given, rescale the field to this exact standard deviation
        (mean is always removed).
    """
    rng = default_rng(seed)
    if len(shape) != 3:
        raise ValueError(f"shape must be 3-D, got {shape}")
    white = rng.standard_normal(shape)
    k = wavenumber_grid(shape, box_size)
    pk = np.asarray(power_spectrum(k), dtype=np.float64)
    if pk.shape != k.shape:
        raise ValueError("power_spectrum must return an array matching the k grid")
    if (pk < 0).any():
        raise ValueError("power spectrum must be non-negative")
    pk[(0,) * len(shape)] = 0.0  # remove the DC mode
    field = np.fft.ifftn(np.fft.fftn(white) * np.sqrt(pk)).real
    field -= field.mean()
    if target_sigma is not None:
        if target_sigma <= 0:
            raise ValueError(f"target_sigma must be positive, got {target_sigma}")
        current = field.std()
        if current == 0:
            raise ValueError("degenerate field (zero variance); check power spectrum")
        field *= target_sigma / current
    return field
