"""Synthetic Nyx-like cosmology simulation substrate.

The paper's experiments run on Nyx snapshots (Table 2: six 3-D fields —
baryon density, dark matter density, temperature, velocity x/y/z).  We
cannot ship those datasets, so this package synthesizes statistically
comparable fields:

- :mod:`repro.sim.cosmology` — linear growth factor and a BBKS-type
  matter power spectrum, so structure grows realistically with redshift,
- :mod:`repro.sim.grf` — Gaussian random field synthesis via FFT
  filtering of white noise,
- :mod:`repro.sim.nyx` — the :class:`NyxSimulator` that assembles the
  six fields (lognormal densities, polytropic temperature, linear-theory
  velocities) with fixed phases across redshifts, matching the paper's
  Figure 1 behaviour of partitions evolving through snapshots,
- :mod:`repro.sim.particles` — a Zel'dovich-displaced particle sampler
  feeding the friends-of-friends halo finder,
- :mod:`repro.sim.io` — a simple snapshot container (``.npz`` standing
  in for Nyx's HDF5 plotfiles).
"""

from repro.sim.cosmology import Cosmology, bbks_transfer, growth_factor, matter_power_spectrum
from repro.sim.grf import gaussian_random_field, wavenumber_grid
from repro.sim.nyx import FIELD_NAMES, NyxSimulator, NyxSnapshot
from repro.sim.io import load_snapshot, save_snapshot
from repro.sim.particles import sample_particles

__all__ = [
    "Cosmology",
    "growth_factor",
    "bbks_transfer",
    "matter_power_spectrum",
    "gaussian_random_field",
    "wavenumber_grid",
    "NyxSimulator",
    "NyxSnapshot",
    "FIELD_NAMES",
    "save_snapshot",
    "load_snapshot",
    "sample_particles",
]
