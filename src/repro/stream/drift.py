"""Drift detection: when do the calibrated models stop describing the data?

The paper calibrates the rate model once, offline; the follow-up
ratio-quality modeling work (Jin et al., arXiv:2111.09815) observes the
models are cheap enough to *re-fit online* when their predictions drift.
This module decides when: each field compares the model-predicted
bitrate against the achieved bitrate of every snapshot and standardizes
the log-residual

    r_t = ln(achieved_t / predicted_t)

against a reference scatter ``rate_sigma`` (the estimator's calibrated
accuracy band, ~8-10% relative).  Over a sliding window of the last
``window`` residuals the detector forms the z-statistic of the window
mean,

    z = mean(r) * sqrt(n) / rate_sigma,

and emits a :class:`DriftSignal` when ``|z|`` exceeds ``z_threshold`` —
a persistent bias several sigma beyond the estimator's own noise, not a
one-snapshot fluctuation (unless the window is configured that tight).

An optional *quality* channel compares the achieved spectrum deviation
of decompressed snapshots against the field's tolerance and fires when
the margin is exhausted (``achieved > quality_margin * tolerance``);
rate drift says "the storage model is stale", quality drift says "the
error-bound budget itself is stale".

Detectors are deliberately pure, deterministic state machines: the
recalibration schedule they induce is recorded in the run ledger and
never needs to be re-derived at replay time.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["DriftConfig", "DriftSignal", "DriftDetector"]


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds of the per-field drift detector.

    Attributes
    ----------
    z_threshold:
        Standardized-residual magnitude that triggers recalibration.
    window:
        Sliding-window length (residuals beyond it are forgotten).
    min_points:
        Minimum residual count before the detector may fire (a fresh or
        just-reset detector stays silent while it re-accumulates).
    rate_sigma:
        Reference scatter of the log bitrate residual — the estimator's
        own accuracy band; residuals are standardized against it.
    quality_margin:
        Fraction of the field's spectrum tolerance the achieved
        deviation may consume before the quality channel fires.
        ``None`` disables the channel.
    """

    z_threshold: float = 4.0
    window: int = 4
    min_points: int = 2
    rate_sigma: float = 0.08
    quality_margin: float | None = None

    def __post_init__(self) -> None:
        if self.z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_points <= self.window:
            raise ValueError("min_points must be in [1, window]")
        if self.rate_sigma <= 0:
            raise ValueError("rate_sigma must be positive")
        if self.quality_margin is not None and self.quality_margin <= 0:
            raise ValueError("quality_margin must be positive")


@dataclass(frozen=True)
class DriftSignal:
    """One detector firing: which channel tripped, and how hard."""

    field: str
    channel: str  # "rate" or "quality"
    z: float  # standardized window statistic (rate) or margin ratio (quality)
    n_points: int
    residual: float  # the most recent raw residual / deviation

    def __str__(self) -> str:
        return (
            f"drift[{self.field}/{self.channel}]: z={self.z:.2f} "
            f"over {self.n_points} snapshot(s)"
        )


class DriftDetector:
    """Sliding-window standardized-residual monitor for one field."""

    def __init__(self, field: str, config: DriftConfig | None = None) -> None:
        self.field = field
        self.config = config or DriftConfig()
        self._residuals: deque[float] = deque(maxlen=self.config.window)

    @property
    def n_points(self) -> int:
        return len(self._residuals)

    def reset(self) -> None:
        """Forget accumulated residuals (call after a recalibration)."""
        self._residuals.clear()

    def zscore(self) -> float:
        """Current standardized window-mean statistic (0 when empty)."""
        n = len(self._residuals)
        if n == 0:
            return 0.0
        mean = math.fsum(self._residuals) / n
        return mean * math.sqrt(n) / self.config.rate_sigma

    def update_rate(self, predicted_bitrate: float, achieved_bitrate: float) -> DriftSignal | None:
        """Feed one snapshot's predicted-vs-achieved bitrate pair."""
        if predicted_bitrate <= 0 or achieved_bitrate <= 0:
            raise ValueError("bitrates must be positive")
        residual = math.log(achieved_bitrate / predicted_bitrate)
        self._residuals.append(residual)
        if len(self._residuals) < self.config.min_points:
            return None
        z = self.zscore()
        if abs(z) > self.config.z_threshold:
            return DriftSignal(
                field=self.field,
                channel="rate",
                z=z,
                n_points=len(self._residuals),
                residual=residual,
            )
        return None

    def update_quality(self, achieved_deviation: float, tolerance: float) -> DriftSignal | None:
        """Feed one snapshot's achieved spectrum deviation (optional channel)."""
        if self.config.quality_margin is None:
            return None
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        ratio = achieved_deviation / tolerance
        if ratio > self.config.quality_margin:
            return DriftSignal(
                field=self.field,
                channel="quality",
                z=ratio,
                n_points=1,
                residual=achieved_deviation,
            )
        return None

    def __repr__(self) -> str:
        return (
            f"DriftDetector({self.field!r}, n={self.n_points}, "
            f"z={self.zscore():.2f})"
        )
