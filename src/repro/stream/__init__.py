"""repro.stream — online in situ streaming of snapshot sequences.

The per-snapshot machinery (:mod:`repro.core`) decides error bounds for
one dump at a time; a production run dumps ~200 of them while the data
evolves with redshift.  This package is the long-running service around
that machinery:

- :mod:`repro.stream.source` — where snapshots come from
  (:class:`SnapshotStream` protocol: a live simulator schedule, an
  on-disk ``.npz`` sequence, or an in-memory list),
- :mod:`repro.stream.ledger` — an append-only JSONL event ledger with
  monotonic sequence ids recording every calibration, decision and
  outcome, the subsystem's persistent state,
- :mod:`repro.stream.drift` — standardized-residual drift detection
  between model-predicted and achieved bitrate/quality,
- :mod:`repro.stream.controller` — the :class:`InSituController` that
  warm-starts configurations snapshot to snapshot, re-calibrates only on
  drift, governs a run-level storage budget, and whose decisions can be
  deterministically replayed from the ledger alone.
"""

from repro.stream.controller import (
    BudgetGovernor,
    InSituController,
    ReplayedDecision,
    StreamOutcome,
    StreamReport,
    replay_ledger,
)
from repro.stream.drift import DriftConfig, DriftDetector, DriftSignal
from repro.stream.ledger import (
    EVENT_KINDS,
    LedgerError,
    LedgerEvent,
    RunLedger,
)
from repro.stream.source import (
    DirectoryStream,
    SimulatorStream,
    SnapshotSequence,
    SnapshotStream,
    as_stream,
)

__all__ = [
    "SnapshotStream",
    "SimulatorStream",
    "DirectoryStream",
    "SnapshotSequence",
    "as_stream",
    "RunLedger",
    "LedgerEvent",
    "LedgerError",
    "EVENT_KINDS",
    "DriftConfig",
    "DriftDetector",
    "DriftSignal",
    "InSituController",
    "BudgetGovernor",
    "StreamReport",
    "StreamOutcome",
    "ReplayedDecision",
    "replay_ledger",
]
