"""The online in situ streaming controller.

:class:`InSituController` is the long-running service the per-snapshot
machinery was missing: it consumes a :class:`~repro.stream.source.
SnapshotStream`, decides per-field error bounds for every dump, and
closes the loop the batch campaign leaves open —

- **warm starts**: each snapshot's per-field configuration starts from
  the previous decision (the calibrated rate model *and* the
  model-inverted base bound), so the steady-state per-snapshot cost is
  feature extraction + the closed-form optimization + compression, with
  no model refits and no original-field re-analysis;
- **drift-gated recalibration**: a per-field
  :class:`~repro.stream.drift.DriftDetector` compares the model's
  predicted bitrate (PR 2's histogram estimator feeds the same
  prediction path) against the achieved bitrate; only when the
  standardized residuals drift does the controller re-fit the rate
  model and re-invert the quality budget, reusing one
  :class:`~repro.foresight.evaluator.FieldReference` for the budget
  inversion, the halo-spec derivation and the optional quality check;
- **a run-level budget governor**: :class:`BudgetGovernor` tracks
  cumulative compressed bytes against a total-run byte budget and
  scales every field's error bound through the rate model's own power
  law to land on it;
- **an append-only ledger**: every calibration, decision, outcome and
  budget step is recorded (:mod:`repro.stream.ledger`), and
  :func:`replay_ledger` re-executes the decision logic from the ledger
  alone — byte-identical bounds, no field data touched.

Per-field compression fans out over the PR 1
:class:`~repro.parallel.backends.ExecutionBackend` registry exactly as
the batch path does; the batch :class:`~repro.core.campaign.
CompressionCampaign` is now a thin client of this controller.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Mapping
from dataclasses import dataclass, field as dataclass_field
from types import MappingProxyType
from typing import Any

import numpy as np

from repro.compression.api import (
    Compressor,
    CompressorSpec,
    resolve_compressor,
    spec_of,
)
from repro.core.config import FieldSpec, HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures
from repro.core.optimizer import optimize_combined, optimize_for_spectrum
from repro.core.pipeline import AdaptiveCompressionPipeline, SnapshotResult
from repro.core.selection import (
    SelectionResult,
    derive_eb_budget,
    derive_halo_params,
    select_compressor,
)
from repro.foresight.evaluator import FieldReference, QualityEvaluator
from repro.foresight.quality import QualityCriteria
from repro.models.calibration import (
    CalibrationResult,
    RateModelBank,
    calibrate_rate_model,
)
from repro.models.rate_model import RateModel
from repro.parallel.backends import ExecutionBackend, SerialBackend, get_backend
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSnapshot
from repro.stream.drift import DriftConfig, DriftDetector, DriftSignal
from repro.stream.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    LedgerEvent,
    RunLedger,
)
from repro.stream.source import SnapshotStream, as_stream
from repro.util.tables import format_table

__all__ = [
    "derive_eb_budget",
    "derive_halo_params",
    "BudgetGovernor",
    "StreamOutcome",
    "StreamReport",
    "InSituController",
    "ReplayedDecision",
    "replay_ledger",
]


# -- run-level storage budget governor ---------------------------------------


class BudgetGovernor:
    """Steers cumulative compressed bytes onto a total-run byte budget.

    After every snapshot the governor re-derives the per-snapshot
    allowance from the *remaining* budget and remaining dump count, and
    converts the byte mismatch into an error-bound scale through the
    calibrated power law: bytes scale as ``eb**c`` (Eq. 15), so landing
    on an allowance ``a`` from achieved bytes ``b`` requires scaling
    every bound by ``(a/b) ** (gain/c)``.  Overspending therefore
    *raises* bounds (coarser, cheaper snapshots); underspending relaxes
    them back.  The scale is clamped to ``[1/max_scale, max_scale]`` so
    one misbehaved snapshot cannot swing the quality configuration
    arbitrarily.

    The governor is a pure, deterministic function of the observed byte
    counts and calibrated exponents — both of which the run ledger
    records — so replay reproduces its trajectory exactly.
    """

    def __init__(
        self,
        total_bytes: int,
        n_snapshots: int,
        gain: float = 1.0,
        max_scale: float = 4.0,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        if n_snapshots <= 0:
            raise ValueError(f"n_snapshots must be positive, got {n_snapshots}")
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        if max_scale < 1:
            raise ValueError(f"max_scale must be >= 1, got {max_scale}")
        self.total_bytes = int(total_bytes)
        self.n_snapshots = int(n_snapshots)
        self.gain = float(gain)
        self.max_scale = float(max_scale)
        self.scale = 1.0
        self.spent = 0
        self.snapshots_done = 0

    @property
    def remaining_bytes(self) -> int:
        return self.total_bytes - self.spent

    @property
    def utilization(self) -> float:
        """Fraction of the total budget consumed so far."""
        return self.spent / self.total_bytes

    def observe(self, snapshot_bytes: int, exponent: float) -> float:
        """Account one snapshot's bytes; returns the next snapshot's scale."""
        if snapshot_bytes <= 0:
            raise ValueError("snapshot_bytes must be positive")
        if exponent >= 0:
            raise ValueError("rate exponent must be negative")
        self.spent += int(snapshot_bytes)
        self.snapshots_done += 1
        if self.snapshots_done >= self.n_snapshots:
            return self.scale
        allowance = self.remaining_bytes / (self.n_snapshots - self.snapshots_done)
        if allowance <= 0:
            # Budget exhausted: tighten storage as hard as permitted.
            self.scale = self.max_scale
            return self.scale
        factor = allowance / snapshot_bytes
        proposal = self.scale * factor ** (self.gain / exponent)
        self.scale = float(min(max(proposal, 1.0 / self.max_scale), self.max_scale))
        return self.scale

    def __repr__(self) -> str:
        return (
            f"BudgetGovernor(spent={self.spent}/{self.total_bytes}, "
            f"scale={self.scale:.3f}, done={self.snapshots_done}/{self.n_snapshots})"
        )


# -- outcomes and the stream report ------------------------------------------


@dataclass
class StreamOutcome:
    """One field of one stream snapshot, decided and compressed."""

    field: str
    redshift: float
    snapshot_index: int
    eb_base: float
    scale: float
    eb_avg: float
    #: The full compression result (payloads included); ``None`` when the
    #: controller runs with ``retain_results=False`` to keep long streams
    #: at O(1) memory — the scalar accounting fields below remain.
    result: SnapshotResult | None
    predicted_bit_rate: float
    achieved_bit_rate: float
    raw_bytes: int
    compressed_bytes: int
    residual: float | None
    quality_deviation: float | None = None
    drift_signal: DriftSignal | None = None
    #: The compressor configuration behind this outcome (``None`` when a
    #: caller-owned instance without a spec was used).
    compressor_spec: CompressorSpec | None = None

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.compressed_bytes


@dataclass
class StreamReport:
    """Cumulative accounting of a streaming run."""

    outcomes: list[StreamOutcome] = dataclass_field(default_factory=list)
    n_snapshots: int = 0
    n_recalibrations: int = 0
    recalibrations: list[tuple[int, str, str]] = dataclass_field(default_factory=list)
    byte_budget: int | None = None

    @property
    def raw_bytes(self) -> int:
        return sum(o.raw_bytes for o in self.outcomes)

    @property
    def compressed_bytes(self) -> int:
        return sum(o.compressed_bytes for o in self.outcomes)

    @property
    def overall_ratio(self) -> float:
        if self.compressed_bytes == 0:
            raise ValueError("stream report is empty")
        return self.raw_bytes / self.compressed_bytes

    @property
    def budget_utilization(self) -> float | None:
        if self.byte_budget is None:
            return None
        return self.compressed_bytes / self.byte_budget

    def snapshot_bytes(self, index: int) -> int:
        rows = [o.compressed_bytes for o in self.outcomes if o.snapshot_index == index]
        if not rows:
            raise KeyError(f"no outcomes recorded for snapshot {index}")
        return sum(rows)

    def as_rows(self) -> list[list[object]]:
        return [
            [
                o.snapshot_index,
                o.redshift,
                o.field,
                o.eb_avg,
                o.scale,
                o.ratio,
                o.compressed_bytes,
                o.drift_signal is not None,
            ]
            for o in self.outcomes
        ]

    def to_table(self, title: str | None = None) -> str:
        return format_table(
            ["snap", "z", "field", "eb_avg", "scale", "ratio", "bytes", "drift"],
            self.as_rows(),
            title=title or "stream report",
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "n_snapshots": self.n_snapshots,
                "n_recalibrations": self.n_recalibrations,
                "recalibrations": [list(r) for r in self.recalibrations],
                "raw_bytes": self.raw_bytes,
                "compressed_bytes": self.compressed_bytes,
                "overall_ratio": self.overall_ratio if self.outcomes else None,
                "byte_budget": self.byte_budget,
                "budget_utilization": self.budget_utilization,
                "outcomes": [
                    {
                        "snapshot": o.snapshot_index,
                        "redshift": o.redshift,
                        "field": o.field,
                        "eb_avg": o.eb_avg,
                        "scale": o.scale,
                        "ratio": o.ratio,
                        "compressed_bytes": o.compressed_bytes,
                        "predicted_bit_rate": o.predicted_bit_rate,
                        "achieved_bit_rate": o.achieved_bit_rate,
                        "drift": o.drift_signal is not None,
                        "compressor": (
                            None
                            if o.compressor_spec is None
                            else o.compressor_spec.to_dict()
                        ),
                    }
                    for o in self.outcomes
                ],
            },
            indent=2,
            sort_keys=True,
        )


@dataclass
class _FieldState:
    """Everything the controller warm-starts from snapshot to snapshot."""

    spec: FieldSpec
    calibration: CalibrationResult
    pipeline: AdaptiveCompressionPipeline
    eb_base: float
    halo_params: tuple[float, float] | None
    detector: DriftDetector
    #: Serializable identity of the field's compressor (``None`` for
    #: caller-owned instances that carry no spec); recorded with every
    #: ledger decision so replays and audits know what compressed what.
    compressor_spec: CompressorSpec | None = None


# -- the controller ----------------------------------------------------------


class InSituController:
    """Online adaptive-compression service over a snapshot stream.

    Parameters
    ----------
    decomposition:
        Rank layout shared by every field and snapshot.
    field_specs:
        Field name -> :class:`~repro.core.config.FieldSpec`; fields
        without an entry use the default spec.
    compressor / settings / backend:
        As in :class:`~repro.core.campaign.CompressionCampaign`; the
        compressor is registry-resolvable (instance,
        :class:`~repro.compression.api.CompressorSpec` or spec string,
        ``None`` for the SZ default) and the backend (registry name or
        instance) executes every per-field compression, default serial.
    candidates:
        Compressor candidate slate (specs or spec strings).  When given,
        every field's compressor is *selected* at (re)calibration time
        by :func:`~repro.core.selection.select_compressor` — candidates
        that cannot honour the field's bound are rejected with the
        violation quantified, the verdicts land in a ``selection``
        ledger event, and drift therefore triggers *re-selection*, not
        just recalibration.
    ledger:
        A :class:`~repro.stream.ledger.RunLedger`, a JSONL path, or
        ``None`` for an in-memory ledger.
    byte_budget:
        Total-run compressed-byte budget enabling the
        :class:`BudgetGovernor`; requires ``n_snapshots`` (given here or
        inferred from ``len(stream)`` in :meth:`run`).
    drift:
        :class:`~repro.stream.drift.DriftConfig` thresholds.
    recalibrate:
        ``"drift"`` (default) refits a field's models only when its
        detector fires; ``"always"`` refits every field every snapshot
        (the naive online baseline); ``"never"`` freezes models after
        :meth:`prime` (batch-campaign semantics).
    warm_start:
        Reuse the previous snapshot's base bound between recalibrations
        (default).  ``False`` re-inverts the quality budget from the
        data every snapshot (batch-campaign semantics) while still
        keeping the rate model warm.
    probe_mode:
        Rate-model calibration probes: ``"exact"`` or the codec-free
        ``"estimate"`` (PR 2's histogram estimator).
    check_quality:
        Decompress and measure each field's achieved spectrum deviation
        (feeds the drift detector's quality channel; implied by a
        :class:`DriftConfig` with ``quality_margin`` set).
    retain_results:
        Keep every field's full :class:`SnapshotResult` (compressed
        payloads included) on the report outcomes — convenient for
        analysis, but memory then grows with the stream.  ``False``
        drops the payloads after accounting (the CLI's choice), keeping
        a 200-dump run at one-snapshot memory.

    Examples
    --------
    >>> from repro.sim.nyx import NyxSimulator
    >>> from repro.stream.source import SimulatorStream
    >>> from repro.parallel.decomposition import BlockDecomposition
    >>> sim = NyxSimulator(shape=(16, 16, 16), seed=0)
    >>> ctl = InSituController(BlockDecomposition((16, 16, 16), blocks=2))
    >>> report = ctl.run(SimulatorStream(sim, [2.0, 1.0]))
    >>> report.n_snapshots
    2
    """

    def __init__(
        self,
        decomposition: BlockDecomposition,
        field_specs: dict[str, FieldSpec] | None = None,
        compressor: "Compressor | CompressorSpec | str | None" = None,
        settings: OptimizerSettings | None = None,
        backend: str | ExecutionBackend | None = None,
        *,
        candidates: "list[CompressorSpec | str] | None" = None,
        ledger: RunLedger | str | os.PathLike | None = None,
        byte_budget: int | None = None,
        n_snapshots: int | None = None,
        drift: DriftConfig | None = None,
        recalibrate: str = "drift",
        warm_start: bool = True,
        default_spec: FieldSpec | None = None,
        probe_mode: str = "exact",
        max_partitions: int = 24,
        seed: int = 0,
        check_quality: bool = False,
        governor_gain: float = 1.0,
        governor_max_scale: float = 4.0,
        retain_results: bool = True,
    ) -> None:
        if recalibrate not in ("drift", "always", "never"):
            raise ValueError(
                f"recalibrate must be 'drift', 'always' or 'never', got {recalibrate!r}"
            )
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError(f"byte_budget must be positive, got {byte_budget}")
        self.decomposition = decomposition
        self.field_specs = dict(field_specs or {})
        self.default_spec = default_spec or FieldSpec()
        self.compressor = resolve_compressor(compressor)
        self.candidates = (
            None
            if not candidates
            else [
                CompressorSpec.parse(c) if isinstance(c, str) else c
                for c in candidates
            ]
        )
        self.settings = settings or OptimizerSettings()
        self.backend = SerialBackend() if backend is None else get_backend(backend)
        self.ledger = ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
        self.byte_budget = None if byte_budget is None else int(byte_budget)
        self.drift = drift or DriftConfig()
        self.recalibrate = recalibrate
        self.warm_start = bool(warm_start)
        self.probe_mode = probe_mode
        self.max_partitions = int(max_partitions)
        self.seed = int(seed)
        self.check_quality = bool(check_quality) or self.drift.quality_margin is not None
        self.governor_gain = float(governor_gain)
        self.governor_max_scale = float(governor_max_scale)
        self.retain_results = bool(retain_results)

        self.report = StreamReport(byte_budget=self.byte_budget)
        self._governor: BudgetGovernor | None = None
        if self.byte_budget is not None and n_snapshots is not None:
            self._make_governor(n_snapshots)
        self._states: dict[str, _FieldState] = {}
        self._selections: dict[str, SelectionResult] = {}
        self._field_order: list[str] = []
        self._pending: set[str] = set()
        self._snapshot_index = 0
        self._started = False
        self._ended = False

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the backend pool and the ledger file handle."""
        self.backend.close()
        self.ledger.close()

    def __enter__(self) -> "InSituController":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def spec_for(self, name: str) -> FieldSpec:
        return self.field_specs.get(name, self.default_spec)

    @property
    def calibrations(self) -> Mapping[str, CalibrationResult]:
        """Current per-field rate-model fits (latest recalibration wins).

        A read-only view: calibration state is owned by the controller
        (mutating the mapping raises rather than silently no-opping).
        """
        return MappingProxyType(
            {name: state.calibration for name, state in self._states.items()}
        )

    @property
    def selections(self) -> Mapping[str, SelectionResult]:
        """Latest per-field compressor-selection outcomes (``candidates`` mode)."""
        return MappingProxyType(dict(self._selections))

    @property
    def governor(self) -> BudgetGovernor | None:
        return self._governor

    def _make_governor(self, n_snapshots: int) -> None:
        self._governor = BudgetGovernor(
            self.byte_budget,
            n_snapshots,
            gain=self.governor_gain,
            max_scale=self.governor_max_scale,
        )
        if self._started:
            self._append_governor_event()

    def _append_governor_event(self) -> None:
        gov = self._governor
        assert gov is not None
        self.ledger.append(
            "governor",
            total_bytes=gov.total_bytes,
            n_snapshots=gov.n_snapshots,
            gain=gov.gain,
            max_scale=gov.max_scale,
        )

    def _ensure_started(self) -> None:
        if self._started:
            return
        default_spec = spec_of(self.compressor)
        self.ledger.append(
            "run_start",
            schema=LEDGER_SCHEMA_VERSION,
            shape=list(self.decomposition.shape),
            n_partitions=self.decomposition.n_partitions,
            byte_budget=self.byte_budget,
            compressor=None if default_spec is None else default_spec.to_dict(),
            candidates=(
                None
                if self.candidates is None
                else [c.to_dict() for c in self.candidates]
            ),
            settings={
                "clamp_factor": self.settings.clamp_factor,
                "normalization": self.settings.normalization,
                "constraint_mode": self.settings.constraint_mode,
            },
            recalibrate=self.recalibrate,
            warm_start=self.warm_start,
            probe_mode=self.probe_mode,
            drift={
                "z_threshold": self.drift.z_threshold,
                "window": self.drift.window,
                "min_points": self.drift.min_points,
                "rate_sigma": self.drift.rate_sigma,
                "quality_margin": self.drift.quality_margin,
            },
            backend=self.backend.name,
        )
        self._started = True
        if self._governor is not None:
            self._append_governor_event()

    # -- calibration -----------------------------------------------------

    def prime(
        self,
        snapshot: NyxSnapshot,
        max_partitions: int | None = None,
        seed: int | None = None,
    ) -> None:
        """Calibrate every field of ``snapshot`` (the offline §3.5 step).

        Optional with ``recalibrate="drift"``/``"always"`` (the first
        snapshot self-calibrates); required before streaming with
        ``recalibrate="never"``.
        """
        if max_partitions is not None:
            self.max_partitions = int(max_partitions)
        if seed is not None:
            self.seed = int(seed)
        self._ensure_started()
        for name, data in snapshot.fields.items():
            ref = FieldReference(data)
            self._calibrate_field(name, data, ref, reason="initial")

    def _field_compressor(
        self,
        name: str,
        data: np.ndarray,
        ref: FieldReference,
        spec: FieldSpec,
        eb_base: float,
        reason: str,
    ) -> tuple[Any, SelectionResult | None]:
        """Resolve which compressor this field uses for this calibration.

        Priority: candidate-slate selection (re-run on every
        recalibration, so drift triggers *re-selection*) > the field
        spec's pinned ``compressor`` > the controller default.
        """
        if self.candidates is not None:
            selection = select_compressor(
                data,
                self.decomposition,
                candidates=self.candidates,
                field_spec=spec,
                field=name,
                eb_avg=eb_base,
                reference=ref,
                bank=RateModelBank(
                    probe_mode=self.probe_mode,
                    max_partitions=self.max_partitions,
                    seed=self.seed,
                ),
                require_error_bounded=True,
            )
            self._selections[name] = selection
            self.ledger.append(
                "selection",
                snapshot=self._snapshot_index,
                field=name,
                reason=reason,
                eb_avg=selection.eb_avg,
                chosen=selection.chosen.to_dict(),
                verdicts=[v.to_dict() for v in selection.verdicts],
            )
            return selection.compressor, selection
        if spec.compressor is not None:
            return resolve_compressor(spec.compressor), None
        return self.compressor, None

    def _calibrate_field(
        self, name: str, data: np.ndarray, ref: FieldReference, reason: str
    ) -> _FieldState:
        spec = self.spec_for(name)
        eb_base = derive_eb_budget(spec, ref)
        compressor, selection = self._field_compressor(
            name, data, ref, spec, eb_base, reason
        )
        if selection is not None and selection.calibration is not None:
            # The winning candidate was already calibrated at eb_base
            # with the controller's probe settings during selection —
            # reuse the fit instead of probing the field again.
            calibration = selection.calibration
        else:
            calibration = calibrate_rate_model(
                self.decomposition.partition_views(data),
                compressor=compressor,
                eb_scale=eb_base,
                max_partitions=self.max_partitions,
                seed=self.seed,
                probe_mode=self.probe_mode,
            )
        halo_params = derive_halo_params(spec, ref) if spec.halo_aware else None
        previous = self._states.get(name)
        if previous is not None:
            detector = previous.detector
            detector.reset()
        else:
            detector = DriftDetector(name, self.drift)
        state = _FieldState(
            spec=spec,
            calibration=calibration,
            pipeline=AdaptiveCompressionPipeline(
                calibration.rate_model,
                compressor=compressor,
                settings=self.settings,
                backend=self.backend,
            ),
            eb_base=eb_base,
            halo_params=halo_params,
            detector=detector,
            compressor_spec=spec_of(compressor),
        )
        self._states[name] = state
        if name not in self._field_order:
            self._field_order.append(name)
        kind = "calibration" if reason == "initial" else "recalibration"
        if kind == "recalibration":
            self.report.n_recalibrations += 1
            self.report.recalibrations.append((self._snapshot_index, name, reason))
        model = calibration.rate_model
        self.ledger.append(
            kind,
            snapshot=self._snapshot_index,
            field=name,
            reason=reason,
            spec=(
                None
                if state.compressor_spec is None
                else state.compressor_spec.to_dict()
            ),
            exponent=model.exponent,
            coef_alpha=model.coef_alpha,
            coef_beta=model.coef_beta,
            feature_floor=model.feature_floor,
            coef_r2=calibration.coef_r2,
            eb_base=eb_base,
            halo_params=(
                None
                if halo_params is None
                else {"t_boundary": halo_params[0], "mass_budget": halo_params[1]}
            ),
        )
        return state

    def _exponent_mean(self) -> float:
        exps = [self._states[f].calibration.rate_model.exponent for f in self._field_order]
        # This left-fold is FROZEN: ledgers record governor decisions
        # derived from it, and replay (which repeats the identical
        # expression below) must reproduce them bitwise.  Switching to
        # math.fsum would orphan every ledger written before the change.
        return sum(exps) / len(exps)  # repro-lint: disable=RL006

    # -- streaming -------------------------------------------------------

    def run(self, stream: "SnapshotStream | list[NyxSnapshot]") -> StreamReport:
        """Consume every snapshot of ``stream``; returns the final report.

        Accepts any :class:`SnapshotStream` or a plain snapshot list
        (coerced via :func:`~repro.stream.source.as_stream`).
        """
        stream = as_stream(stream)
        if self.byte_budget is not None and self._governor is None:
            self._make_governor(len(stream))
        for snapshot in stream:
            self.process_snapshot(snapshot)
        self.finish()
        return self.report

    def finish(self) -> StreamReport:
        """Seal the run with a ``run_end`` ledger event (idempotent)."""
        if self._started and not self._ended:
            self.ledger.append(
                "run_end",
                n_snapshots=self.report.n_snapshots,
                compressed_bytes=self.report.compressed_bytes,
                raw_bytes=self.report.raw_bytes,
                n_recalibrations=self.report.n_recalibrations,
                budget_utilization=self.report.budget_utilization,
            )
            self._ended = True
        return self.report

    def process_snapshot(self, snapshot: NyxSnapshot) -> list[StreamOutcome]:
        """Decide, compress and account every field of one snapshot."""
        if self.byte_budget is not None and self._governor is None:
            raise RuntimeError(
                "a byte budget requires n_snapshots (pass it to the "
                "constructor, or use run() on a sized stream)"
            )
        self._ensure_started()
        index = self._snapshot_index
        outcomes = [
            self._process_field(index, snapshot.redshift, name, data)
            for name, data in snapshot.fields.items()
        ]
        if self._governor is not None:
            snapshot_bytes = sum(o.compressed_bytes for o in outcomes)
            exponent_mean = self._exponent_mean()
            scale_next = self._governor.observe(snapshot_bytes, exponent_mean)
            self.ledger.append(
                "budget",
                snapshot=index,
                snapshot_bytes=snapshot_bytes,
                spent=self._governor.spent,
                exponent_mean=exponent_mean,
                scale_next=scale_next,
                utilization=self._governor.utilization,
            )
        self._snapshot_index += 1
        self.report.n_snapshots += 1
        return outcomes

    def _process_field(
        self, index: int, redshift: float, name: str, data: np.ndarray
    ) -> StreamOutcome:
        spec = self.spec_for(name)
        state = self._states.get(name)
        ref: FieldReference | None = None
        if state is None:
            if self.recalibrate == "never":
                raise KeyError(f"field {name!r} was not calibrated")
            ref = FieldReference(data)
            state = self._calibrate_field(name, data, ref, reason="initial")
        elif self.recalibrate == "always" or name in self._pending:
            reason = "forced" if self.recalibrate == "always" else "drift"
            self._pending.discard(name)
            ref = FieldReference(data)
            state = self._calibrate_field(name, data, ref, reason=reason)
        elif not self.warm_start:
            # Batch-campaign semantics: the rate model stays frozen but
            # the budget inversion re-derives from this snapshot's data.
            ref = FieldReference(data)
            state.eb_base = derive_eb_budget(spec, ref)
            state.halo_params = derive_halo_params(spec, ref) if spec.halo_aware else None

        scale = self._governor.scale if self._governor is not None else 1.0
        eb_avg = state.eb_base * scale
        halo = None
        if state.halo_params is not None:
            t_boundary, mass_budget = state.halo_params
            halo = HaloQualitySpec(
                t_boundary=t_boundary,
                mass_budget=mass_budget,
                reference_eb=min(1.0, eb_avg),
            )
        result = state.pipeline.run_insitu_spmd(
            data, self.decomposition, eb_avg=eb_avg, halo=halo
        )

        feats = result.features
        self.ledger.append(
            "decision",
            snapshot=index,
            redshift=redshift,
            field=name,
            spec=(
                None
                if state.compressor_spec is None
                else state.compressor_spec.to_dict()
            ),
            eb_base=state.eb_base,
            scale=scale,
            eb_avg=eb_avg,
            mean_abs=[f.mean_abs for f in feats],
            n_cells=[f.n_cells for f in feats],
            cell_rates=(
                [f.effective_cell_rate for f in feats] if halo is not None else None
            ),
            halo=(
                None
                if halo is None
                else {
                    "t_boundary": halo.t_boundary,
                    "mass_budget": halo.mass_budget,
                    "reference_eb": halo.reference_eb,
                }
            ),
            ebs=result.ebs,
            constraint=(
                result.optimization.constraint if result.optimization else "spectrum"
            ),
        )

        stats = result.stats
        raw_bytes = stats.source_itemsize * stats.total_elements
        compressed_bytes = stats.total_nbytes
        achieved = float(stats.overall_bit_rate)
        predicted = (
            float(result.optimization.predicted_mean_bitrate)
            if result.optimization is not None
            else float("nan")
        )
        residual = (
            math.log(achieved / predicted)
            if achieved > 0 and predicted > 0
            else None
        )

        quality_dev: float | None = None
        if self.check_quality:
            if ref is None:
                ref = FieldReference(data)
            evaluator = QualityEvaluator(
                reference=ref,
                criteria=QualityCriteria(
                    spectrum_tolerance=spec.spectrum_tolerance,
                    spectrum_k_max=spec.spectrum_k_max,
                ),
            )
            quality_dev = float(
                evaluator.evaluate(
                    result.reconstruct(self.decomposition)
                ).spectrum_worst_deviation
            )

        signal: DriftSignal | None = None
        if self.recalibrate == "drift":
            if residual is not None:
                signal = state.detector.update_rate(predicted, achieved)
            if signal is None and quality_dev is not None:
                signal = state.detector.update_quality(
                    quality_dev, spec.spectrum_tolerance
                )
            if signal is not None:
                self._pending.add(name)

        self.ledger.append(
            "outcome",
            snapshot=index,
            field=name,
            raw_bytes=raw_bytes,
            compressed_bytes=compressed_bytes,
            achieved_bit_rate=achieved,
            predicted_bit_rate=predicted,
            residual=residual,
            drift_z=state.detector.zscore(),
            quality_deviation=quality_dev,
            recalibrate_next=name in self._pending,
        )
        outcome = StreamOutcome(
            field=name,
            redshift=redshift,
            snapshot_index=index,
            eb_base=state.eb_base,
            scale=scale,
            eb_avg=eb_avg,
            compressor_spec=state.compressor_spec,
            result=result if self.retain_results else None,
            predicted_bit_rate=predicted,
            achieved_bit_rate=achieved,
            raw_bytes=raw_bytes,
            compressed_bytes=compressed_bytes,
            residual=residual,
            quality_deviation=quality_dev,
            drift_signal=signal,
        )
        self.report.outcomes.append(outcome)
        return outcome


# -- deterministic ledger replay ---------------------------------------------


@dataclass(frozen=True)
class ReplayedDecision:
    """One re-derived per-(snapshot, field) decision.

    ``compressor`` is the recorded spec behind the decision — ``None``
    for schema-v1 (PR 4-era) ledgers, which predate spec recording.
    """

    snapshot_index: int
    redshift: float
    field: str
    eb_avg: float
    ebs: tuple[float, ...]
    compressor: CompressorSpec | None = None


def _replay_features(data: dict[str, Any]) -> list[PartitionFeatures]:
    rates = data["cell_rates"] or [None] * len(data["mean_abs"])
    return [
        PartitionFeatures(
            rank=i, n_cells=int(n), mean_abs=float(m), effective_cell_rate=r
        )
        for i, (n, m, r) in enumerate(zip(data["n_cells"], data["mean_abs"], rates))
    ]


def replay_ledger(
    source: "RunLedger | str | os.PathLike | list[LedgerEvent]",
    verify: bool = True,
) -> list[ReplayedDecision]:
    """Re-execute a run's decision logic from its ledger alone.

    Walks the events in sequence order, reconstructing the rate models
    from calibration events, the governor trajectory from outcome byte
    counts, and every per-partition bound vector by re-running the
    actual optimizer on the recorded features — no field data is read,
    no compressor is invoked.  JSON round-trips floats exactly, so the
    replayed bounds are bitwise identical to the live run's.

    With ``verify=True`` (default) every recomputed quantity — governor
    scale, average bound, per-partition bounds — is checked against the
    recorded decision and a :class:`~repro.stream.ledger.LedgerError`
    is raised on the first divergence (a tampered or corrupted ledger,
    or a non-deterministic controller, which would be a bug).

    Schema compatibility: v2 ledgers additionally carry compressor specs
    (surfaced on :attr:`ReplayedDecision.compressor`) and ``selection``
    events (informational, skipped); v1 (PR 4-era) ledgers carry
    neither and replay byte-for-byte unchanged.
    """
    if isinstance(source, RunLedger):
        events = source.events
    elif isinstance(source, list):
        events = source
    else:
        events = RunLedger.load(source).events

    settings: OptimizerSettings | None = None
    governor: BudgetGovernor | None = None
    models: dict[str, RateModel] = {}
    field_order: list[str] = []
    pending_bytes = 0
    decisions: list[ReplayedDecision] = []

    def _mismatch(event: LedgerEvent, what: str, got: object, recorded: object) -> LedgerError:
        return LedgerError(
            f"replay diverged at seq {event.seq} ({event.kind}): "
            f"{what} {got!r} != recorded {recorded!r}"
        )

    for event in events:
        d = event.data
        if event.kind == "run_start":
            # A ledger file may hold several runs back to back (re-opened
            # files continue the sequence); every run replays from a
            # clean slate.
            settings = OptimizerSettings(**d["settings"])
            governor = None
            models = {}
            field_order = []
            pending_bytes = 0
        elif event.kind == "governor":
            governor = BudgetGovernor(
                d["total_bytes"],
                d["n_snapshots"],
                gain=d["gain"],
                max_scale=d["max_scale"],
            )
        elif event.kind in ("calibration", "recalibration"):
            name = d["field"]
            models[name] = RateModel(
                exponent=d["exponent"],
                coef_alpha=d["coef_alpha"],
                coef_beta=d["coef_beta"],
                feature_floor=d["feature_floor"],
            )
            if name not in field_order:
                field_order.append(name)
        elif event.kind == "decision":
            if settings is None:
                raise LedgerError("decision event before run_start")
            name = d["field"]
            if name not in models:
                raise LedgerError(
                    f"decision for {name!r} at seq {event.seq} has no calibration"
                )
            scale = governor.scale if governor is not None else 1.0
            if verify and scale != d["scale"]:
                raise _mismatch(event, "governor scale", scale, d["scale"])
            # The base bound is a recorded *input*: with warm starts it
            # matches the latest calibration event; without them it is
            # re-derived from the data each snapshot, so the decision
            # event is its only record.
            base = float(d["eb_base"])
            eb_avg = base * scale
            features = _replay_features(d)
            if d.get("halo") is not None:
                opt = optimize_combined(
                    features, models[name], eb_avg, HaloQualitySpec(**d["halo"]), settings
                )
            else:
                opt = optimize_for_spectrum(features, models[name], eb_avg, settings)
            ebs = tuple(float(e) for e in opt.ebs)
            if verify:
                recorded = tuple(float(e) for e in d["ebs"])
                if float(eb_avg) != float(d["eb_avg"]):
                    raise _mismatch(event, "eb_avg", float(eb_avg), d["eb_avg"])
                if ebs != recorded:
                    raise _mismatch(event, "per-partition bounds", ebs, recorded)
            decisions.append(
                ReplayedDecision(
                    snapshot_index=int(d["snapshot"]),
                    redshift=float(d["redshift"]),
                    field=name,
                    eb_avg=float(eb_avg),
                    ebs=ebs,
                    # Schema v1 ledgers record no spec; v2 records one
                    # (possibly null for spec-less instances).  Either
                    # way it is informational — the bound arithmetic
                    # above never touches it.
                    compressor=(
                        CompressorSpec.from_dict(d["spec"])
                        if d.get("spec") is not None
                        else None
                    ),
                )
            )
        elif event.kind == "outcome":
            pending_bytes += int(d["compressed_bytes"])
        elif event.kind == "budget":
            if governor is None:
                raise LedgerError("budget event without a governed run_start")
            exps = [models[f].exponent for f in field_order]
            # Must repeat _exponent_mean's exact (frozen) arithmetic.
            exponent_mean = sum(exps) / len(exps)  # repro-lint: disable=RL006
            if verify and pending_bytes != int(d["snapshot_bytes"]):
                raise _mismatch(
                    event, "snapshot bytes", pending_bytes, d["snapshot_bytes"]
                )
            scale_next = governor.observe(pending_bytes, exponent_mean)
            if verify and scale_next != d["scale_next"]:
                raise _mismatch(event, "next scale", scale_next, d["scale_next"])
            pending_bytes = 0
    return decisions
