"""The online in situ streaming controller.

:class:`InSituController` is the long-running service the per-snapshot
machinery was missing: it consumes a :class:`~repro.stream.source.
SnapshotStream`, decides per-field error bounds for every dump, and
closes the loop the batch campaign leaves open —

- **warm starts**: each snapshot's per-field configuration starts from
  the previous decision (the calibrated rate model *and* the
  model-inverted base bound), so the steady-state per-snapshot cost is
  feature extraction + the closed-form optimization + compression, with
  no model refits and no original-field re-analysis;
- **drift-gated recalibration**: a per-field
  :class:`~repro.stream.drift.DriftDetector` compares the model's
  predicted bitrate (PR 2's histogram estimator feeds the same
  prediction path) against the achieved bitrate; only when the
  standardized residuals drift does the controller re-fit the rate
  model and re-invert the quality budget, reusing one
  :class:`~repro.foresight.evaluator.FieldReference` for the budget
  inversion, the halo-spec derivation and the optional quality check;
- **a run-level budget governor**: :class:`BudgetGovernor` tracks
  cumulative compressed bytes against a total-run byte budget and
  scales every field's error bound through the rate model's own power
  law to land on it;
- **an append-only ledger**: every calibration, decision, outcome and
  budget step is recorded (:mod:`repro.stream.ledger`), and
  :func:`replay_ledger` re-executes the decision logic from the ledger
  alone — byte-identical bounds, no field data touched.

Per-field compression fans out over the PR 1
:class:`~repro.parallel.backends.ExecutionBackend` registry exactly as
the batch path does; the batch :class:`~repro.core.campaign.
CompressionCampaign` is now a thin client of this controller.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Mapping
from dataclasses import dataclass, field as dataclass_field
from types import MappingProxyType
from typing import Any

import numpy as np

from repro import telemetry
from repro.compression.api import (
    Compressor,
    CompressorSpec,
    resolve_compressor,
    spec_of,
)
from repro.core.config import FieldSpec, HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures
from repro.core.optimizer import optimize_combined, optimize_for_spectrum
from repro.core.pipeline import AdaptiveCompressionPipeline, SnapshotResult
from repro.core.selection import (
    CandidateVerdict,
    SelectionResult,
    derive_eb_budget,
    derive_halo_params,
    select_compressor,
)
from repro.foresight.evaluator import FieldReference, QualityEvaluator
from repro.foresight.quality import QualityCriteria
from repro.models.calibration import (
    CalibrationResult,
    RateModelBank,
    calibrate_rate_model,
)
from repro.models.rate_model import RateModel
from repro.parallel.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    get_backend,
)
from repro.parallel.decomposition import BlockDecomposition
from repro.resilience.retry import RetryExhaustedError, RetryPolicy
from repro.sim.nyx import NyxSnapshot
from repro.stream.drift import DriftConfig, DriftDetector, DriftSignal
from repro.stream.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    LedgerEvent,
    RunLedger,
)
from repro.stream.source import SnapshotStream, as_stream
from repro.util.tables import format_table
from repro.util.timer import TimingBreakdown

__all__ = [
    "derive_eb_budget",
    "derive_halo_params",
    "BudgetGovernor",
    "StreamOutcome",
    "StreamReport",
    "InSituController",
    "ReplayedDecision",
    "replay_ledger",
]


# -- run-level storage budget governor ---------------------------------------


class BudgetGovernor:
    """Steers cumulative compressed bytes onto a total-run byte budget.

    After every snapshot the governor re-derives the per-snapshot
    allowance from the *remaining* budget and remaining dump count, and
    converts the byte mismatch into an error-bound scale through the
    calibrated power law: bytes scale as ``eb**c`` (Eq. 15), so landing
    on an allowance ``a`` from achieved bytes ``b`` requires scaling
    every bound by ``(a/b) ** (gain/c)``.  Overspending therefore
    *raises* bounds (coarser, cheaper snapshots); underspending relaxes
    them back.  The scale is clamped to ``[1/max_scale, max_scale]`` so
    one misbehaved snapshot cannot swing the quality configuration
    arbitrarily.

    The governor is a pure, deterministic function of the observed byte
    counts and calibrated exponents — both of which the run ledger
    records — so replay reproduces its trajectory exactly.
    """

    def __init__(
        self,
        total_bytes: int,
        n_snapshots: int,
        gain: float = 1.0,
        max_scale: float = 4.0,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        if n_snapshots <= 0:
            raise ValueError(f"n_snapshots must be positive, got {n_snapshots}")
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        if max_scale < 1:
            raise ValueError(f"max_scale must be >= 1, got {max_scale}")
        self.total_bytes = int(total_bytes)
        self.n_snapshots = int(n_snapshots)
        self.gain = float(gain)
        self.max_scale = float(max_scale)
        self.scale = 1.0
        self.spent = 0
        self.snapshots_done = 0

    @property
    def remaining_bytes(self) -> int:
        return self.total_bytes - self.spent

    @property
    def utilization(self) -> float:
        """Fraction of the total budget consumed so far."""
        return self.spent / self.total_bytes

    def observe(self, snapshot_bytes: int, exponent: float) -> float:
        """Account one snapshot's bytes; returns the next snapshot's scale."""
        if snapshot_bytes <= 0:
            raise ValueError("snapshot_bytes must be positive")
        if exponent >= 0:
            raise ValueError("rate exponent must be negative")
        self.spent += int(snapshot_bytes)
        self.snapshots_done += 1
        if self.snapshots_done >= self.n_snapshots:
            return self.scale
        allowance = self.remaining_bytes / (self.n_snapshots - self.snapshots_done)
        if allowance <= 0:
            # Budget exhausted: tighten storage as hard as permitted.
            self.scale = self.max_scale
            return self.scale
        factor = allowance / snapshot_bytes
        proposal = self.scale * factor ** (self.gain / exponent)
        self.scale = float(min(max(proposal, 1.0 / self.max_scale), self.max_scale))
        return self.scale

    def __repr__(self) -> str:
        return (
            f"BudgetGovernor(spent={self.spent}/{self.total_bytes}, "
            f"scale={self.scale:.3f}, done={self.snapshots_done}/{self.n_snapshots})"
        )


# -- outcomes and the stream report ------------------------------------------


@dataclass
class StreamOutcome:
    """One field of one stream snapshot, decided and compressed."""

    field: str
    redshift: float
    snapshot_index: int
    eb_base: float
    scale: float
    eb_avg: float
    #: The full compression result (payloads included); ``None`` when the
    #: controller runs with ``retain_results=False`` to keep long streams
    #: at O(1) memory — the scalar accounting fields below remain.
    result: SnapshotResult | None
    predicted_bit_rate: float
    achieved_bit_rate: float
    raw_bytes: int
    compressed_bytes: int
    residual: float | None
    quality_deviation: float | None = None
    drift_signal: DriftSignal | None = None
    #: The compressor configuration behind this outcome (``None`` when a
    #: caller-owned instance without a spec was used).
    compressor_spec: CompressorSpec | None = None

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.compressed_bytes


@dataclass
class StreamReport:
    """Cumulative accounting of a streaming run."""

    outcomes: list[StreamOutcome] = dataclass_field(default_factory=list)
    n_snapshots: int = 0
    n_recalibrations: int = 0
    recalibrations: list[tuple[int, str, str]] = dataclass_field(default_factory=list)
    byte_budget: int | None = None
    #: Resilience accounting: transient failures retried (across the
    #: controller, the ledger append path and a retry-aware backend),
    #: torn ledger tails truncated on (re)open, and fields that fell
    #: back to the conservative compressor after exhausting retries.
    n_retries: int = 0
    n_recoveries: int = 0
    n_degradations: int = 0
    degraded_fields: list[str] = dataclass_field(default_factory=list)
    #: Per-phase wall time merged across every field result the run
    #: produced (features/optimize/compress/..., rank-summed like the
    #: backends' own accounting).
    timings: TimingBreakdown = dataclass_field(default_factory=TimingBreakdown)

    @property
    def raw_bytes(self) -> int:
        return sum(o.raw_bytes for o in self.outcomes)

    @property
    def compressed_bytes(self) -> int:
        return sum(o.compressed_bytes for o in self.outcomes)

    @property
    def overall_ratio(self) -> float:
        if self.compressed_bytes == 0:
            raise ValueError("stream report is empty")
        return self.raw_bytes / self.compressed_bytes

    @property
    def budget_utilization(self) -> float | None:
        if self.byte_budget is None:
            return None
        return self.compressed_bytes / self.byte_budget

    def snapshot_bytes(self, index: int) -> int:
        rows = [o.compressed_bytes for o in self.outcomes if o.snapshot_index == index]
        if not rows:
            raise KeyError(f"no outcomes recorded for snapshot {index}")
        return sum(rows)

    def as_rows(self) -> list[list[object]]:
        return [
            [
                o.snapshot_index,
                o.redshift,
                o.field,
                o.eb_avg,
                o.scale,
                o.ratio,
                o.compressed_bytes,
                o.drift_signal is not None,
            ]
            for o in self.outcomes
        ]

    def to_table(self, title: str | None = None) -> str:
        return format_table(
            ["snap", "z", "field", "eb_avg", "scale", "ratio", "bytes", "drift"],
            self.as_rows(),
            title=title or "stream report",
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "n_snapshots": self.n_snapshots,
                "n_recalibrations": self.n_recalibrations,
                "recalibrations": [list(r) for r in self.recalibrations],
                "n_retries": self.n_retries,
                "n_recoveries": self.n_recoveries,
                "n_degradations": self.n_degradations,
                "degraded_fields": list(self.degraded_fields),
                # Additive since PR 9: per-phase seconds *and* counts
                # (as_dict() would drop the counts).
                "timings": self.timings.phase_stats(),
                "raw_bytes": self.raw_bytes,
                "compressed_bytes": self.compressed_bytes,
                "overall_ratio": self.overall_ratio if self.outcomes else None,
                "byte_budget": self.byte_budget,
                "budget_utilization": self.budget_utilization,
                "outcomes": [
                    {
                        "snapshot": o.snapshot_index,
                        "redshift": o.redshift,
                        "field": o.field,
                        "eb_avg": o.eb_avg,
                        "scale": o.scale,
                        "ratio": o.ratio,
                        "compressed_bytes": o.compressed_bytes,
                        "predicted_bit_rate": o.predicted_bit_rate,
                        "achieved_bit_rate": o.achieved_bit_rate,
                        "drift": o.drift_signal is not None,
                        "compressor": (
                            None
                            if o.compressor_spec is None
                            else o.compressor_spec.to_dict()
                        ),
                    }
                    for o in self.outcomes
                ],
            },
            indent=2,
            sort_keys=True,
        )


@dataclass
class _FieldState:
    """Everything the controller warm-starts from snapshot to snapshot."""

    spec: FieldSpec
    calibration: CalibrationResult
    pipeline: AdaptiveCompressionPipeline
    eb_base: float
    halo_params: tuple[float, float] | None
    detector: DriftDetector
    #: Serializable identity of the field's compressor (``None`` for
    #: caller-owned instances that carry no spec); recorded with every
    #: ledger decision so replays and audits know what compressed what.
    compressor_spec: CompressorSpec | None = None


# -- the controller ----------------------------------------------------------


class InSituController:
    """Online adaptive-compression service over a snapshot stream.

    Parameters
    ----------
    decomposition:
        Rank layout shared by every field and snapshot.
    field_specs:
        Field name -> :class:`~repro.core.config.FieldSpec`; fields
        without an entry use the default spec.
    compressor / settings / backend:
        As in :class:`~repro.core.campaign.CompressionCampaign`; the
        compressor is registry-resolvable (instance,
        :class:`~repro.compression.api.CompressorSpec` or spec string,
        ``None`` for the SZ default) and the backend (registry name or
        instance) executes every per-field compression, default serial.
    candidates:
        Compressor candidate slate (specs or spec strings).  When given,
        every field's compressor is *selected* at (re)calibration time
        by :func:`~repro.core.selection.select_compressor` — candidates
        that cannot honour the field's bound are rejected with the
        violation quantified, the verdicts land in a ``selection``
        ledger event, and drift therefore triggers *re-selection*, not
        just recalibration.
    ledger:
        A :class:`~repro.stream.ledger.RunLedger`, a JSONL path, or
        ``None`` for an in-memory ledger.
    byte_budget:
        Total-run compressed-byte budget enabling the
        :class:`BudgetGovernor`; requires ``n_snapshots`` (given here or
        inferred from ``len(stream)`` in :meth:`run`).
    drift:
        :class:`~repro.stream.drift.DriftConfig` thresholds.
    recalibrate:
        ``"drift"`` (default) refits a field's models only when its
        detector fires; ``"always"`` refits every field every snapshot
        (the naive online baseline); ``"never"`` freezes models after
        :meth:`prime` (batch-campaign semantics).
    warm_start:
        Reuse the previous snapshot's base bound between recalibrations
        (default).  ``False`` re-inverts the quality budget from the
        data every snapshot (batch-campaign semantics) while still
        keeping the rate model warm.
    probe_mode:
        Rate-model calibration probes: ``"exact"``, the codec-free
        ``"estimate"`` (PR 2's histogram estimator), or ``"model"`` —
        the closed-form ratio-quality engine
        (:mod:`repro.models.rq_model`), which additionally gates
        drift-triggered re-selection on *predicted* quality-at-bound
        instead of trial compressions.
    check_quality:
        Decompress and measure each field's achieved spectrum deviation
        (feeds the drift detector's quality channel; implied by a
        :class:`DriftConfig` with ``quality_margin`` set).
    retain_results:
        Keep every field's full :class:`SnapshotResult` (compressed
        payloads included) on the report outcomes — convenient for
        analysis, but memory then grows with the stream.  ``False``
        drops the payloads after accounting (the CLI's choice), keeping
        a 200-dump run at one-snapshot memory.
    retry:
        A :class:`~repro.resilience.retry.RetryPolicy` (or a plain int,
        shorthand for ``RetryPolicy(max_attempts=n)``) applied to
        per-field execution and ledger appends; a
        :class:`~repro.parallel.backends.ProcessBackend` without its own
        policy additionally inherits it for batch-level re-execution.
        ``None`` (default) keeps fail-fast semantics.
    fallback_compressor:
        Conservative :class:`~repro.compression.api.CompressorSpec` (or
        spec string) a field degrades to when its retries are
        exhausted: the field is quarantined onto the fallback, a
        ``degradation`` ledger event is recorded, and the stream
        continues.  ``None`` (default) re-raises instead.
    fsync_ledger:
        ``os.fsync`` every ledger append (crash-safety against power
        loss, not just process death); only meaningful for path-backed
        ledgers constructed by the controller.

    Examples
    --------
    >>> from repro.sim.nyx import NyxSimulator
    >>> from repro.stream.source import SimulatorStream
    >>> from repro.parallel.decomposition import BlockDecomposition
    >>> sim = NyxSimulator(shape=(16, 16, 16), seed=0)
    >>> ctl = InSituController(BlockDecomposition((16, 16, 16), blocks=2))
    >>> report = ctl.run(SimulatorStream(sim, [2.0, 1.0]))
    >>> report.n_snapshots
    2
    """

    def __init__(
        self,
        decomposition: BlockDecomposition,
        field_specs: dict[str, FieldSpec] | None = None,
        compressor: "Compressor | CompressorSpec | str | None" = None,
        settings: OptimizerSettings | None = None,
        backend: str | ExecutionBackend | None = None,
        *,
        candidates: "list[CompressorSpec | str] | None" = None,
        ledger: RunLedger | str | os.PathLike | None = None,
        byte_budget: int | None = None,
        n_snapshots: int | None = None,
        drift: DriftConfig | None = None,
        recalibrate: str = "drift",
        warm_start: bool = True,
        default_spec: FieldSpec | None = None,
        probe_mode: str = "exact",
        max_partitions: int = 24,
        seed: int = 0,
        check_quality: bool = False,
        governor_gain: float = 1.0,
        governor_max_scale: float = 4.0,
        retain_results: bool = True,
        retry: "RetryPolicy | int | None" = None,
        fallback_compressor: "CompressorSpec | str | None" = None,
        fsync_ledger: bool = False,
    ) -> None:
        if recalibrate not in ("drift", "always", "never"):
            raise ValueError(
                f"recalibrate must be 'drift', 'always' or 'never', got {recalibrate!r}"
            )
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError(f"byte_budget must be positive, got {byte_budget}")
        self.decomposition = decomposition
        self.field_specs = dict(field_specs or {})
        self.default_spec = default_spec or FieldSpec()
        self.compressor = resolve_compressor(compressor)
        self.candidates = (
            None
            if not candidates
            else [
                CompressorSpec.parse(c) if isinstance(c, str) else c
                for c in candidates
            ]
        )
        self.settings = settings or OptimizerSettings()
        self.backend = SerialBackend() if backend is None else get_backend(backend)
        self.retry = (
            RetryPolicy(max_attempts=int(retry)) if isinstance(retry, int) else retry
        )
        self.fallback_compressor = (
            CompressorSpec.parse(fallback_compressor)
            if isinstance(fallback_compressor, str)
            else fallback_compressor
        )
        if (
            self.retry is not None
            and isinstance(self.backend, ProcessBackend)
            and self.backend.retry_policy is None
        ):
            # A backend without its own policy inherits the stream's, so
            # a BrokenProcessPool rebuilds the pool and re-runs only the
            # failed batches instead of failing the whole field.
            self.backend.retry_policy = self.retry
            self.backend.on_retry = self._note_retry
        self.ledger = (
            ledger
            if isinstance(ledger, RunLedger)
            else RunLedger(ledger, fsync=fsync_ledger)
        )
        self.byte_budget = None if byte_budget is None else int(byte_budget)
        self.drift = drift or DriftConfig()
        self.recalibrate = recalibrate
        self.warm_start = bool(warm_start)
        if probe_mode not in ("exact", "estimate", "model"):
            raise ValueError(
                f"probe_mode must be 'exact', 'estimate' or 'model', "
                f"got {probe_mode!r}"
            )
        self.probe_mode = probe_mode
        self.max_partitions = int(max_partitions)
        self.seed = int(seed)
        self.check_quality = bool(check_quality) or self.drift.quality_margin is not None
        self.governor_gain = float(governor_gain)
        self.governor_max_scale = float(governor_max_scale)
        self.retain_results = bool(retain_results)

        self.report = StreamReport(byte_budget=self.byte_budget)
        if getattr(self.ledger, "recovered_tail", None) is not None:
            self.report.n_recoveries += 1
        self._states: dict[str, _FieldState] = {}
        self._selections: dict[str, SelectionResult] = {}
        self._field_order: list[str] = []
        self._pending: set[str] = set()
        self._quarantined: set[str] = set()
        self._snapshot_index = 0
        self._started = False
        self._ended = False
        self._governor: BudgetGovernor | None = None
        if self.byte_budget is not None and n_snapshots is not None:
            self._make_governor(n_snapshots)

    # -- resilience plumbing ---------------------------------------------

    def _note_retry(
        self, site: str, attempt: int, exc: BaseException, delay: float
    ) -> None:
        """Retry-accounting hook shared with the backend's batch retries."""
        self.report.n_retries += 1

    def _append(self, kind: str, **data: Any) -> LedgerEvent:
        """Ledger append under the retry policy.

        The ledger commits an event to memory only after it is safely on
        disk, so a transient append failure retried here reuses the same
        sequence id.  A :class:`~repro.resilience.faults.TornWrite` is
        *not* retryable — retrying would duplicate the event — and
        propagates for crash-recovery tests.
        """
        if self.retry is None:
            return self.ledger.append(kind, **data)
        return self.retry.execute(
            lambda: self.ledger.append(kind, **data),
            site="ledger.append",
            on_retry=self._note_retry,
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the backend pool and the ledger file handle."""
        self.backend.close()
        self.ledger.close()

    def __enter__(self) -> "InSituController":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def spec_for(self, name: str) -> FieldSpec:
        return self.field_specs.get(name, self.default_spec)

    @property
    def calibrations(self) -> Mapping[str, CalibrationResult]:
        """Current per-field rate-model fits (latest recalibration wins).

        A read-only view: calibration state is owned by the controller
        (mutating the mapping raises rather than silently no-opping).
        """
        return MappingProxyType(
            {name: state.calibration for name, state in self._states.items()}
        )

    @property
    def selections(self) -> Mapping[str, SelectionResult]:
        """Latest per-field compressor-selection outcomes (``candidates`` mode)."""
        return MappingProxyType(dict(self._selections))

    @property
    def governor(self) -> BudgetGovernor | None:
        return self._governor

    def _make_governor(self, n_snapshots: int) -> None:
        self._governor = BudgetGovernor(
            self.byte_budget,
            n_snapshots,
            gain=self.governor_gain,
            max_scale=self.governor_max_scale,
        )
        if self._started:
            self._append_governor_event()

    def _append_governor_event(self) -> None:
        gov = self._governor
        assert gov is not None
        self._append(
            "governor",
            total_bytes=gov.total_bytes,
            n_snapshots=gov.n_snapshots,
            gain=gov.gain,
            max_scale=gov.max_scale,
        )

    def _ensure_started(self) -> None:
        if self._started:
            return
        default_spec = spec_of(self.compressor)
        self._append(
            "run_start",
            schema=LEDGER_SCHEMA_VERSION,
            shape=list(self.decomposition.shape),
            # Schema v3: the block layout, so resume() can rebuild the
            # decomposition without re-specifying it.
            blocks=list(self.decomposition.blocks),
            n_partitions=self.decomposition.n_partitions,
            byte_budget=self.byte_budget,
            compressor=None if default_spec is None else default_spec.to_dict(),
            candidates=(
                None
                if self.candidates is None
                else [c.to_dict() for c in self.candidates]
            ),
            settings={
                "clamp_factor": self.settings.clamp_factor,
                "normalization": self.settings.normalization,
                "constraint_mode": self.settings.constraint_mode,
            },
            recalibrate=self.recalibrate,
            warm_start=self.warm_start,
            probe_mode=self.probe_mode,
            drift={
                "z_threshold": self.drift.z_threshold,
                "window": self.drift.window,
                "min_points": self.drift.min_points,
                "rate_sigma": self.drift.rate_sigma,
                "quality_margin": self.drift.quality_margin,
            },
            backend=self.backend.name,
        )
        self._started = True
        if self._governor is not None:
            self._append_governor_event()

    # -- calibration -----------------------------------------------------

    def prime(
        self,
        snapshot: NyxSnapshot,
        max_partitions: int | None = None,
        seed: int | None = None,
    ) -> None:
        """Calibrate every field of ``snapshot`` (the offline §3.5 step).

        Optional with ``recalibrate="drift"``/``"always"`` (the first
        snapshot self-calibrates); required before streaming with
        ``recalibrate="never"``.
        """
        if max_partitions is not None:
            self.max_partitions = int(max_partitions)
        if seed is not None:
            self.seed = int(seed)
        self._ensure_started()
        for name, data in snapshot.fields.items():
            ref = FieldReference(data)
            self._calibrate_field(name, data, ref, reason="initial")

    def _field_compressor(
        self,
        name: str,
        data: np.ndarray,
        ref: FieldReference,
        spec: FieldSpec,
        eb_base: float,
        reason: str,
    ) -> tuple[Any, SelectionResult | None]:
        """Resolve which compressor this field uses for this calibration.

        Priority: quarantine (a degraded field stays pinned to the
        conservative fallback — re-selection could hand it back the very
        compressor that failed) > candidate-slate selection (re-run on
        every recalibration, so drift triggers *re-selection*) > the
        field spec's pinned ``compressor`` > the controller default.
        """
        if name in self._quarantined and self.fallback_compressor is not None:
            return resolve_compressor(self.fallback_compressor), None
        if self.candidates is not None:
            selection = select_compressor(
                data,
                self.decomposition,
                candidates=self.candidates,
                field_spec=spec,
                field=name,
                eb_avg=eb_base,
                reference=ref,
                bank=RateModelBank(
                    probe_mode=self.probe_mode,
                    max_partitions=self.max_partitions,
                    seed=self.seed,
                ),
                probe_mode=self.probe_mode,
                require_error_bounded=True,
            )
            self._selections[name] = selection
            self._append(
                "selection",
                snapshot=self._snapshot_index,
                field=name,
                reason=reason,
                eb_avg=selection.eb_avg,
                chosen=selection.chosen.to_dict(),
                verdicts=[v.to_dict() for v in selection.verdicts],
            )
            return selection.compressor, selection
        if spec.compressor is not None:
            return resolve_compressor(spec.compressor), None
        return self.compressor, None

    def _calibrate_field(
        self, name: str, data: np.ndarray, ref: FieldReference, reason: str
    ) -> _FieldState:
        spec = self.spec_for(name)
        eb_base = derive_eb_budget(spec, ref)
        compressor, selection = self._field_compressor(
            name, data, ref, spec, eb_base, reason
        )
        if selection is not None and selection.calibration is not None:
            # The winning candidate was already calibrated at eb_base
            # with the controller's probe settings during selection —
            # reuse the fit instead of probing the field again.
            calibration = selection.calibration
        else:
            calibration = calibrate_rate_model(
                self.decomposition.partition_views(data),
                compressor=compressor,
                eb_scale=eb_base,
                max_partitions=self.max_partitions,
                seed=self.seed,
                probe_mode=self.probe_mode,
            )
        halo_params = derive_halo_params(spec, ref) if spec.halo_aware else None
        previous = self._states.get(name)
        if previous is not None:
            detector = previous.detector
            detector.reset()
        else:
            detector = DriftDetector(name, self.drift)
        state = _FieldState(
            spec=spec,
            calibration=calibration,
            pipeline=AdaptiveCompressionPipeline(
                calibration.rate_model,
                compressor=compressor,
                settings=self.settings,
                backend=self.backend,
            ),
            eb_base=eb_base,
            halo_params=halo_params,
            detector=detector,
            compressor_spec=spec_of(compressor),
        )
        self._states[name] = state
        if name not in self._field_order:
            self._field_order.append(name)
        kind = "calibration" if reason == "initial" else "recalibration"
        if kind == "recalibration":
            self.report.n_recalibrations += 1
            self.report.recalibrations.append((self._snapshot_index, name, reason))
        model = calibration.rate_model
        self._append(
            kind,
            snapshot=self._snapshot_index,
            field=name,
            reason=reason,
            spec=(
                None
                if state.compressor_spec is None
                else state.compressor_spec.to_dict()
            ),
            exponent=model.exponent,
            coef_alpha=model.coef_alpha,
            coef_beta=model.coef_beta,
            feature_floor=model.feature_floor,
            coef_r2=calibration.coef_r2,
            eb_base=eb_base,
            halo_params=(
                None
                if halo_params is None
                else {"t_boundary": halo_params[0], "mass_budget": halo_params[1]}
            ),
        )
        return state

    def _exponent_mean(self) -> float:
        exps = [self._states[f].calibration.rate_model.exponent for f in self._field_order]
        # This left-fold is FROZEN: ledgers record governor decisions
        # derived from it, and replay (which repeats the identical
        # expression below) must reproduce them bitwise.  Switching to
        # math.fsum would orphan every ledger written before the change.
        return sum(exps) / len(exps)  # repro-lint: disable=RL006

    # -- streaming -------------------------------------------------------

    def run(self, stream: "SnapshotStream | list[NyxSnapshot]") -> StreamReport:
        """Consume every snapshot of ``stream``; returns the final report.

        Accepts any :class:`SnapshotStream` or a plain snapshot list
        (coerced via :func:`~repro.stream.source.as_stream`).

        On a resumed controller (:meth:`resume`) the first
        ``self._snapshot_index`` dumps are already accounted in the
        ledger and are skipped — without loading or generating them when
        the stream supports ``iter_from``.
        """
        stream = as_stream(stream)
        if self.byte_budget is not None and self._governor is None:
            self._make_governor(len(stream))
        start = self._snapshot_index
        if start == 0:
            iterator = iter(stream)
        elif hasattr(stream, "iter_from"):
            iterator = stream.iter_from(start)
        else:
            iterator = (s for i, s in enumerate(stream) if i >= start)
        for snapshot in iterator:
            self.process_snapshot(snapshot)
        self.finish()
        return self.report

    def finish(self) -> StreamReport:
        """Seal the run with a ``run_end`` ledger event (idempotent)."""
        if self._started and not self._ended:
            self._append(
                "run_end",
                n_snapshots=self.report.n_snapshots,
                compressed_bytes=self.report.compressed_bytes,
                raw_bytes=self.report.raw_bytes,
                n_recalibrations=self.report.n_recalibrations,
                budget_utilization=self.report.budget_utilization,
            )
            self._ended = True
        return self.report

    # -- crash recovery --------------------------------------------------

    #: Event kinds whose effects are superseded when a later ``resume``
    #: event re-records the same snapshot (a crash mid-snapshot leaves a
    #: partial set of events; the authoritative copies follow the
    #: resume).
    _PER_SNAPSHOT_KINDS = (
        "selection",
        "calibration",
        "recalibration",
        "decision",
        "outcome",
        "degradation",
    )

    @staticmethod
    def _effective_events(run_events: list[LedgerEvent]) -> list[LedgerEvent]:
        """The run's events with resume-superseded partial segments dropped.

        Each ``resume`` event at snapshot ``s`` declares that everything
        recorded for snapshots ``>= s`` before it belongs to an
        interrupted attempt that is about to be re-executed; the copies
        appended after the resume are the ones a restored controller
        (and replay) must trust.
        """
        effective: list[LedgerEvent] = []
        for event in run_events:
            if event.kind == "resume":
                cut = int(event.data["snapshot"])
                effective = [
                    e
                    for e in effective
                    if not (
                        e.kind in InSituController._PER_SNAPSHOT_KINDS
                        and int(e.data.get("snapshot", -1)) >= cut
                    )
                ]
                continue
            effective.append(event)
        return effective

    @classmethod
    def resume(
        cls,
        ledger: "RunLedger | str | os.PathLike",
        *,
        decomposition: BlockDecomposition | None = None,
        backend: "str | ExecutionBackend | None" = None,
        field_specs: dict[str, FieldSpec] | None = None,
        default_spec: FieldSpec | None = None,
        retry: "RetryPolicy | int | None" = None,
        fallback_compressor: "CompressorSpec | str | None" = None,
        fsync_ledger: bool = False,
        max_partitions: int = 24,
        seed: int = 0,
        check_quality: bool = False,
        retain_results: bool = True,
    ) -> "InSituController":
        """Rebuild a controller from an interrupted run's ledger.

        Opens ``ledger`` with ``recover=True`` (a torn final line — the
        footprint of a crash mid-append — is truncated and recorded as a
        ``recovery`` event), restores every per-field rate model,
        compressor selection, drift-detector trajectory, quarantine set
        and the :class:`BudgetGovernor`'s byte accounting from the
        events, and positions the controller at the first snapshot
        without a complete record.  Calling :meth:`run` with the
        original stream then skips the completed dumps and produces
        decisions bitwise identical to a run that was never
        interrupted.

        Settings recorded in the ``run_start`` event (optimizer
        settings, drift thresholds, compressor, candidates, byte
        budget, recalibration policy, ...) are restored from the ledger;
        process-local choices the ledger does not record — the execution
        backend, field specs, retry policy, calibration
        ``max_partitions``/``seed`` — are taken from the keyword
        arguments and must match the original run for recalibrations
        after the resume point to reproduce exactly.

        Ledgers older than schema v3 do not record the block layout, so
        ``decomposition`` is required for them.
        """
        run_ledger = (
            ledger
            if isinstance(ledger, RunLedger)
            else RunLedger(ledger, recover=True, fsync=fsync_ledger)
        )
        starts = [i for i, e in enumerate(run_ledger.events) if e.kind == "run_start"]
        if not starts:
            raise LedgerError("cannot resume: ledger has no run_start event")
        run_events = run_ledger.events[starts[-1] :]
        rs = run_events[0].data

        if decomposition is None:
            if rs.get("blocks") is None:
                raise LedgerError(
                    "cannot resume: ledger predates schema v3 and records no "
                    "block layout; pass decomposition= explicitly"
                )
            decomposition = BlockDecomposition(
                tuple(rs["shape"]), blocks=tuple(rs["blocks"])
            )

        effective = cls._effective_events(run_events)
        governor_events = [e for e in effective if e.kind == "governor"]
        gov = governor_events[-1].data if governor_events else None

        ctl = cls(
            decomposition,
            field_specs=field_specs,
            compressor=(
                CompressorSpec.from_dict(rs["compressor"])
                if rs.get("compressor") is not None
                else None
            ),
            settings=OptimizerSettings(**rs["settings"]),
            backend=backend,
            candidates=(
                [CompressorSpec.from_dict(c) for c in rs["candidates"]]
                if rs.get("candidates")
                else None
            ),
            ledger=run_ledger,
            byte_budget=rs.get("byte_budget"),
            drift=DriftConfig(**rs["drift"]),
            recalibrate=rs["recalibrate"],
            warm_start=rs["warm_start"],
            default_spec=default_spec,
            probe_mode=rs["probe_mode"],
            max_partitions=max_partitions,
            seed=seed,
            check_quality=check_quality,
            governor_gain=gov["gain"] if gov else 1.0,
            governor_max_scale=gov["max_scale"] if gov else 4.0,
            retain_results=retain_results,
            retry=retry,
            fallback_compressor=fallback_compressor,
        )

        run_end = next((e for e in effective if e.kind == "run_end"), None)
        budget_events = [e for e in effective if e.kind == "budget"]
        if run_end is not None:
            # A sealed run: everything is complete; run() on the same
            # stream would skip every snapshot and finish() is a no-op.
            resume_index = int(run_end.data["n_snapshots"])
        elif budget_events:
            # Governed run: each budget event seals exactly one
            # completed snapshot, so their count is the resume point.
            resume_index = len(budget_events)
        else:
            # Ungoverned run: nothing in the ledger distinguishes "last
            # snapshot complete" from "crashed between its last outcome
            # and the next snapshot", so the last referenced snapshot is
            # conservatively re-executed.  Re-recorded events are
            # superseded via the resume event, so replay and reports
            # stay identical either way.
            refs = [
                int(e.data["snapshot"])
                for e in effective
                if e.kind in ("decision", "outcome")
            ]
            resume_index = max(refs) if refs else 0

        ctl._restore(effective, resume_index)
        ctl._snapshot_index = resume_index
        ctl.report.n_snapshots = resume_index
        ctl.report.n_recoveries = sum(1 for e in run_events if e.kind == "recovery")
        ctl._started = True
        ctl._ended = run_end is not None
        if not ctl._ended:
            tail = getattr(run_ledger, "recovered_tail", None)
            ctl._append(
                "resume",
                snapshot=resume_index,
                restored_fields=sorted(ctl._states),
                truncated_bytes=0 if tail is None else tail["truncated_bytes"],
            )
        return ctl

    def _restore(self, effective: list[LedgerEvent], resume_index: int) -> None:
        """Apply the recorded events up to ``resume_index`` to this
        (freshly constructed, empty) controller.

        Only completed snapshots' per-field events are applied; the
        partial snapshot ``resume_index`` (if any) will be re-executed
        and re-recorded by :meth:`run`.
        """
        decisions: dict[tuple[int, str], dict[str, Any]] = {}
        for event in effective:
            d = event.data
            snap = int(d.get("snapshot", -1))
            if event.kind == "governor":
                self._make_governor(int(d["n_snapshots"]))
            elif event.kind == "budget":
                assert self._governor is not None
                # Replaying the recorded inputs reproduces the scale and
                # spent trajectory exactly (observe is deterministic).
                self._governor.observe(
                    int(d["snapshot_bytes"]), float(d["exponent_mean"])
                )
            elif snap >= resume_index:
                continue
            elif event.kind in ("calibration", "recalibration"):
                self._restore_calibration(d, event.kind)
            elif event.kind == "selection":
                self._restore_selection(d)
            elif event.kind == "decision":
                decisions[(snap, d["field"])] = d
            elif event.kind == "outcome":
                self._restore_outcome(d, decisions.get((snap, d["field"])))
            elif event.kind == "degradation":
                name = d["field"]
                self._quarantined.add(name)
                self.report.n_degradations += 1
                if name not in self.report.degraded_fields:
                    self.report.degraded_fields.append(name)

    def _restore_calibration(self, d: dict[str, Any], kind: str) -> None:
        name = d["field"]
        model = RateModel(
            exponent=d["exponent"],
            coef_alpha=d["coef_alpha"],
            coef_beta=d["coef_beta"],
            feature_floor=d["feature_floor"],
        )
        spec_dict = d.get("spec")
        if spec_dict is not None:
            compressor_spec = CompressorSpec.from_dict(spec_dict)
            compressor = resolve_compressor(compressor_spec)
        else:
            compressor = self.compressor
            compressor_spec = spec_of(compressor)
        empty = np.array([])
        previous = self._states.get(name)
        if previous is not None:
            detector = previous.detector
            detector.reset()
        else:
            detector = DriftDetector(name, self.drift)
        halo = d.get("halo_params")
        self._states[name] = _FieldState(
            spec=self.spec_for(name),
            # Probe diagnostics are not recorded (they do not feed any
            # decision); the restored fit carries the model and coef_r2.
            calibration=CalibrationResult(
                model, empty, empty, empty, empty, float(d["coef_r2"])
            ),
            pipeline=AdaptiveCompressionPipeline(
                model,
                compressor=compressor,
                settings=self.settings,
                backend=self.backend,
            ),
            eb_base=float(d["eb_base"]),
            halo_params=(
                None if halo is None else (halo["t_boundary"], halo["mass_budget"])
            ),
            detector=detector,
            compressor_spec=compressor_spec,
        )
        if name not in self._field_order:
            self._field_order.append(name)
        if kind == "recalibration":
            self.report.n_recalibrations += 1
            self.report.recalibrations.append(
                (int(d["snapshot"]), name, d["reason"])
            )
            self._pending.discard(name)

    def _restore_selection(self, d: dict[str, Any]) -> None:
        chosen = CompressorSpec.from_dict(d["chosen"])
        self._selections[d["field"]] = SelectionResult(
            field=d["field"],
            eb_avg=float(d["eb_avg"]),
            chosen=chosen,
            compressor=resolve_compressor(chosen),
            verdicts=[
                CandidateVerdict(
                    spec=CompressorSpec.from_dict(v["spec"]),
                    eligible=v["eligible"],
                    reason=v["reason"],
                    predicted_bit_rate=v["predicted_bit_rate"],
                    measured_bit_rate=v["measured_bit_rate"],
                    max_abs_error=v["max_abs_error"],
                    eb_violation=v["eb_violation"],
                )
                for v in d["verdicts"]
            ],
        )

    def _restore_outcome(
        self, d: dict[str, Any], decision: dict[str, Any] | None
    ) -> None:
        """Re-feed one recorded outcome into detector/pending/report state.

        Mirrors the live :meth:`_process_field` accounting: the detector
        consumes the same (predicted, achieved, deviation) numbers it
        saw live, so its residual window — and therefore every future
        drift verdict — continues exactly where the interrupted run left
        it.
        """
        name = d["field"]
        state = self._states.get(name)
        if state is not None and self.recalibrate == "drift":
            signal = None
            if d.get("residual") is not None:
                signal = state.detector.update_rate(
                    float(d["predicted_bit_rate"]), float(d["achieved_bit_rate"])
                )
            if signal is None and d.get("quality_deviation") is not None:
                state.detector.update_quality(
                    float(d["quality_deviation"]), state.spec.spectrum_tolerance
                )
        # The recorded flag is authoritative for what the next snapshot
        # must recalibrate (it folds in both drift channels).
        if d.get("recalibrate_next"):
            self._pending.add(name)
        else:
            self._pending.discard(name)
        dd = decision or {}
        spec_dict = dd.get("spec")
        self.report.outcomes.append(
            StreamOutcome(
                field=name,
                redshift=float(dd.get("redshift", float("nan"))),
                snapshot_index=int(d["snapshot"]),
                eb_base=float(dd.get("eb_base", float("nan"))),
                scale=float(dd.get("scale", 1.0)),
                eb_avg=float(dd.get("eb_avg", float("nan"))),
                compressor_spec=(
                    None if spec_dict is None else CompressorSpec.from_dict(spec_dict)
                ),
                # Payloads are gone with the crashed process; the scalar
                # accounting (and the on-disk artifacts) remain.
                result=None,
                predicted_bit_rate=float(d["predicted_bit_rate"]),
                achieved_bit_rate=float(d["achieved_bit_rate"]),
                raw_bytes=int(d["raw_bytes"]),
                compressed_bytes=int(d["compressed_bytes"]),
                residual=d.get("residual"),
                quality_deviation=d.get("quality_deviation"),
                drift_signal=None,
            )
        )

    def process_snapshot(self, snapshot: NyxSnapshot) -> list[StreamOutcome]:
        """Decide, compress and account every field of one snapshot."""
        if self.byte_budget is not None and self._governor is None:
            raise RuntimeError(
                "a byte budget requires n_snapshots (pass it to the "
                "constructor, or use run() on a sized stream)"
            )
        self._ensure_started()
        index = self._snapshot_index
        # The span carries the ledger seq window this snapshot appended
        # (attributes only — telemetry never writes INTO the ledger, so
        # armed runs replay byte-identically to disarmed ones).
        with telemetry.get_tracer().span(
            "stream.snapshot",
            snapshot=index,
            redshift=float(snapshot.redshift),
            seq_first=self.ledger.next_seq,
        ) as span:
            outcomes = [
                self._process_field(index, snapshot.redshift, name, data)
                for name, data in snapshot.fields.items()
            ]
            if self._governor is not None:
                snapshot_bytes = sum(o.compressed_bytes for o in outcomes)
                exponent_mean = self._exponent_mean()
                scale_next = self._governor.observe(snapshot_bytes, exponent_mean)
                self._append(
                    "budget",
                    snapshot=index,
                    snapshot_bytes=snapshot_bytes,
                    spent=self._governor.spent,
                    exponent_mean=exponent_mean,
                    scale_next=scale_next,
                    utilization=self._governor.utilization,
                )
            span.set_attr("seq_last", self.ledger.next_seq - 1)
        self._snapshot_index += 1
        self.report.n_snapshots += 1
        return outcomes

    def _halo_for(
        self, state: _FieldState, eb_avg: float
    ) -> HaloQualitySpec | None:
        if state.halo_params is None:
            return None
        t_boundary, mass_budget = state.halo_params
        return HaloQualitySpec(
            t_boundary=t_boundary,
            mass_budget=mass_budget,
            reference_eb=min(1.0, eb_avg),
        )

    def _run_field(
        self,
        name: str,
        state: _FieldState,
        data: np.ndarray,
        eb_avg: float,
        halo: HaloQualitySpec | None,
    ) -> SnapshotResult:
        """Execute one field's compression under the retry policy.

        A transient failure (injected crash, timeout, OSError, ...) is
        retried with the same inputs — the pipeline is a pure function
        of them, so a successful retry is bitwise identical to a run
        that never failed.  A retry-aware :class:`~repro.parallel.
        backends.ProcessBackend` retries at batch granularity first;
        only what escapes it (e.g. its own
        :class:`~repro.resilience.retry.RetryExhaustedError`, which is
        not retryable) reaches this per-field site.
        """

        def attempt() -> SnapshotResult:
            return state.pipeline.run_insitu_spmd(
                data, self.decomposition, eb_avg=eb_avg, halo=halo
            )

        if self.retry is None:
            return attempt()
        return self.retry.execute(
            attempt, site=f"stream.field:{name}", on_retry=self._note_retry
        )

    def _degrade_field(
        self, index: int, name: str, data: np.ndarray, exc: RetryExhaustedError
    ) -> _FieldState:
        """Quarantine ``name`` onto the fallback compressor after retries.

        Records a ``degradation`` ledger event, then recalibrates the
        field on the fallback (reason ``"degradation"``) so its rate
        model matches what will actually compress it from here on.
        """
        assert self.fallback_compressor is not None
        self._quarantined.add(name)
        self.report.n_degradations += 1
        if telemetry.enabled():
            telemetry.get_registry().counter("resilience.degradations").inc()
        if name not in self.report.degraded_fields:
            self.report.degraded_fields.append(name)
        self._append(
            "degradation",
            snapshot=index,
            field=name,
            site=exc.site,
            attempts=exc.attempts,
            error=f"{type(exc.last).__name__}: {exc.last}",
            fallback=self.fallback_compressor.to_dict(),
        )
        self._pending.discard(name)
        return self._calibrate_field(
            name, data, FieldReference(data), reason="degradation"
        )

    def _process_field(
        self, index: int, redshift: float, name: str, data: np.ndarray
    ) -> StreamOutcome:
        with telemetry.get_tracer().span("stream.field", field=name, snapshot=index):
            return self._process_field_inner(index, redshift, name, data)

    def _process_field_inner(
        self, index: int, redshift: float, name: str, data: np.ndarray
    ) -> StreamOutcome:
        spec = self.spec_for(name)
        state = self._states.get(name)
        ref: FieldReference | None = None
        if state is None:
            if self.recalibrate == "never":
                raise KeyError(f"field {name!r} was not calibrated")
            ref = FieldReference(data)
            state = self._calibrate_field(name, data, ref, reason="initial")
        elif self.recalibrate == "always" or name in self._pending:
            reason = "forced" if self.recalibrate == "always" else "drift"
            self._pending.discard(name)
            ref = FieldReference(data)
            state = self._calibrate_field(name, data, ref, reason=reason)
        elif not self.warm_start:
            # Batch-campaign semantics: the rate model stays frozen but
            # the budget inversion re-derives from this snapshot's data.
            ref = FieldReference(data)
            state.eb_base = derive_eb_budget(spec, ref)
            state.halo_params = derive_halo_params(spec, ref) if spec.halo_aware else None

        scale = self._governor.scale if self._governor is not None else 1.0
        eb_avg = state.eb_base * scale
        halo = self._halo_for(state, eb_avg)
        try:
            result = self._run_field(name, state, data, eb_avg, halo)
        except RetryExhaustedError as exc:
            if self.fallback_compressor is None:
                raise
            # Graceful degradation: quarantine the field onto the
            # conservative fallback compressor, recalibrate it there
            # (the recalibration ledger event carries the new model, so
            # replay stays bitwise), and compress this snapshot with it.
            # No decision/outcome events were appended for the failed
            # attempts — the ledger sees only what actually happened.
            state = self._degrade_field(index, name, data, exc)
            spec = state.spec
            eb_avg = state.eb_base * scale
            halo = self._halo_for(state, eb_avg)
            result = self._run_field(name, state, data, eb_avg, halo)

        feats = result.features
        self._append(
            "decision",
            snapshot=index,
            redshift=redshift,
            field=name,
            spec=(
                None
                if state.compressor_spec is None
                else state.compressor_spec.to_dict()
            ),
            eb_base=state.eb_base,
            scale=scale,
            eb_avg=eb_avg,
            mean_abs=[f.mean_abs for f in feats],
            n_cells=[f.n_cells for f in feats],
            cell_rates=(
                [f.effective_cell_rate for f in feats] if halo is not None else None
            ),
            halo=(
                None
                if halo is None
                else {
                    "t_boundary": halo.t_boundary,
                    "mass_budget": halo.mass_budget,
                    "reference_eb": halo.reference_eb,
                }
            ),
            ebs=result.ebs,
            constraint=(
                result.optimization.constraint if result.optimization else "spectrum"
            ),
        )

        stats = result.stats
        raw_bytes = stats.source_itemsize * stats.total_elements
        compressed_bytes = stats.total_nbytes
        achieved = float(stats.overall_bit_rate)
        predicted = (
            float(result.optimization.predicted_mean_bitrate)
            if result.optimization is not None
            else float("nan")
        )
        residual = (
            math.log(achieved / predicted)
            if achieved > 0 and predicted > 0
            else None
        )

        quality_dev: float | None = None
        if self.check_quality:
            if ref is None:
                ref = FieldReference(data)
            evaluator = QualityEvaluator(
                reference=ref,
                criteria=QualityCriteria(
                    spectrum_tolerance=spec.spectrum_tolerance,
                    spectrum_k_max=spec.spectrum_k_max,
                ),
            )
            quality_dev = float(
                evaluator.evaluate(
                    result.reconstruct(self.decomposition)
                ).spectrum_worst_deviation
            )

        signal: DriftSignal | None = None
        if self.recalibrate == "drift":
            if residual is not None:
                signal = state.detector.update_rate(predicted, achieved)
            if signal is None and quality_dev is not None:
                signal = state.detector.update_quality(
                    quality_dev, spec.spectrum_tolerance
                )
            if signal is not None:
                self._pending.add(name)

        self._append(
            "outcome",
            snapshot=index,
            field=name,
            raw_bytes=raw_bytes,
            compressed_bytes=compressed_bytes,
            achieved_bit_rate=achieved,
            predicted_bit_rate=predicted,
            residual=residual,
            drift_z=state.detector.zscore(),
            quality_deviation=quality_dev,
            recalibrate_next=name in self._pending,
        )
        outcome = StreamOutcome(
            field=name,
            redshift=redshift,
            snapshot_index=index,
            eb_base=state.eb_base,
            scale=scale,
            eb_avg=eb_avg,
            compressor_spec=state.compressor_spec,
            result=result if self.retain_results else None,
            predicted_bit_rate=predicted,
            achieved_bit_rate=achieved,
            raw_bytes=raw_bytes,
            compressed_bytes=compressed_bytes,
            residual=residual,
            quality_deviation=quality_dev,
            drift_signal=signal,
        )
        self.report.outcomes.append(outcome)
        self.report.timings.merge(result.timings)
        return outcome


# -- deterministic ledger replay ---------------------------------------------


@dataclass(frozen=True)
class ReplayedDecision:
    """One re-derived per-(snapshot, field) decision.

    ``compressor`` is the recorded spec behind the decision — ``None``
    for schema-v1 (PR 4-era) ledgers, which predate spec recording.
    """

    snapshot_index: int
    redshift: float
    field: str
    eb_avg: float
    ebs: tuple[float, ...]
    compressor: CompressorSpec | None = None


def _replay_features(data: dict[str, Any]) -> list[PartitionFeatures]:
    rates = data["cell_rates"] or [None] * len(data["mean_abs"])
    return [
        PartitionFeatures(
            rank=i, n_cells=int(n), mean_abs=float(m), effective_cell_rate=r
        )
        for i, (n, m, r) in enumerate(zip(data["n_cells"], data["mean_abs"], rates))
    ]


def replay_ledger(
    source: "RunLedger | str | os.PathLike | list[LedgerEvent]",
    verify: bool = True,
) -> list[ReplayedDecision]:
    """Re-execute a run's decision logic from its ledger alone.

    Walks the events in sequence order, reconstructing the rate models
    from calibration events, the governor trajectory from outcome byte
    counts, and every per-partition bound vector by re-running the
    actual optimizer on the recorded features — no field data is read,
    no compressor is invoked.  JSON round-trips floats exactly, so the
    replayed bounds are bitwise identical to the live run's.

    With ``verify=True`` (default) every recomputed quantity — governor
    scale, average bound, per-partition bounds — is checked against the
    recorded decision and a :class:`~repro.stream.ledger.LedgerError`
    is raised on the first divergence (a tampered or corrupted ledger,
    or a non-deterministic controller, which would be a bug).

    Schema compatibility: v2 ledgers additionally carry compressor specs
    (surfaced on :attr:`ReplayedDecision.compressor`) and ``selection``
    events (informational, skipped); v1 (PR 4-era) ledgers carry
    neither and replay byte-for-byte unchanged.  v3 ledgers add the
    resilience events: ``recovery`` and ``degradation`` are
    informational, while ``resume`` supersedes the partial snapshot
    recorded before an interruption (its authoritative copies follow),
    so a crashed-and-resumed run replays to the same decision list as
    an uninterrupted one.
    """
    if isinstance(source, RunLedger):
        events = source.events
    elif isinstance(source, list):
        events = source
    else:
        events = RunLedger.load(source).events

    settings: OptimizerSettings | None = None
    governor: BudgetGovernor | None = None
    models: dict[str, RateModel] = {}
    field_order: list[str] = []
    pending_bytes = 0
    decisions: list[ReplayedDecision] = []
    run_first_decision = 0

    def _mismatch(event: LedgerEvent, what: str, got: object, recorded: object) -> LedgerError:
        return LedgerError(
            f"replay diverged at seq {event.seq} ({event.kind}): "
            f"{what} {got!r} != recorded {recorded!r}"
        )

    for event in events:
        d = event.data
        if event.kind == "run_start":
            # A ledger file may hold several runs back to back (re-opened
            # files continue the sequence); every run replays from a
            # clean slate.
            settings = OptimizerSettings(**d["settings"])
            governor = None
            models = {}
            field_order = []
            pending_bytes = 0
            run_first_decision = len(decisions)
        elif event.kind == "governor":
            governor = BudgetGovernor(
                d["total_bytes"],
                d["n_snapshots"],
                gain=d["gain"],
                max_scale=d["max_scale"],
            )
        elif event.kind in ("calibration", "recalibration"):
            name = d["field"]
            models[name] = RateModel(
                exponent=d["exponent"],
                coef_alpha=d["coef_alpha"],
                coef_beta=d["coef_beta"],
                feature_floor=d["feature_floor"],
            )
            if name not in field_order:
                field_order.append(name)
        elif event.kind == "decision":
            if settings is None:
                raise LedgerError("decision event before run_start")
            name = d["field"]
            if name not in models:
                raise LedgerError(
                    f"decision for {name!r} at seq {event.seq} has no calibration"
                )
            scale = governor.scale if governor is not None else 1.0
            if verify and scale != d["scale"]:
                raise _mismatch(event, "governor scale", scale, d["scale"])
            # The base bound is a recorded *input*: with warm starts it
            # matches the latest calibration event; without them it is
            # re-derived from the data each snapshot, so the decision
            # event is its only record.
            base = float(d["eb_base"])
            eb_avg = base * scale
            features = _replay_features(d)
            if d.get("halo") is not None:
                opt = optimize_combined(
                    features, models[name], eb_avg, HaloQualitySpec(**d["halo"]), settings
                )
            else:
                opt = optimize_for_spectrum(features, models[name], eb_avg, settings)
            ebs = tuple(float(e) for e in opt.ebs)
            if verify:
                recorded = tuple(float(e) for e in d["ebs"])
                if float(eb_avg) != float(d["eb_avg"]):
                    raise _mismatch(event, "eb_avg", float(eb_avg), d["eb_avg"])
                if ebs != recorded:
                    raise _mismatch(event, "per-partition bounds", ebs, recorded)
            decisions.append(
                ReplayedDecision(
                    snapshot_index=int(d["snapshot"]),
                    redshift=float(d["redshift"]),
                    field=name,
                    eb_avg=float(eb_avg),
                    ebs=ebs,
                    # Schema v1 ledgers record no spec; v2 records one
                    # (possibly null for spec-less instances).  Either
                    # way it is informational — the bound arithmetic
                    # above never touches it.
                    compressor=(
                        CompressorSpec.from_dict(d["spec"])
                        if d.get("spec") is not None
                        else None
                    ),
                )
            )
        elif event.kind == "outcome":
            pending_bytes += int(d["compressed_bytes"])
        elif event.kind == "resume":
            # Schema v3: a restarted run re-executes the snapshot it was
            # interrupted in.  Decisions recorded for it before the
            # interruption are superseded by the copies that follow (the
            # re-run is deterministic, so where both exist they agree),
            # and the partial snapshot's byte accounting starts over.
            cut = int(d["snapshot"])
            decisions = decisions[:run_first_decision] + [
                dec
                for dec in decisions[run_first_decision:]
                if dec.snapshot_index < cut
            ]
            pending_bytes = 0
        elif event.kind == "budget":
            if governor is None:
                raise LedgerError("budget event without a governed run_start")
            exps = [models[f].exponent for f in field_order]
            # Must repeat _exponent_mean's exact (frozen) arithmetic.
            exponent_mean = sum(exps) / len(exps)  # repro-lint: disable=RL006
            if verify and pending_bytes != int(d["snapshot_bytes"]):
                raise _mismatch(
                    event, "snapshot bytes", pending_bytes, d["snapshot_bytes"]
                )
            scale_next = governor.observe(pending_bytes, exponent_mean)
            if verify and scale_next != d["scale_next"]:
                raise _mismatch(event, "next scale", scale_next, d["scale_next"])
            pending_bytes = 0
    return decisions
