"""Snapshot sources: where an in situ stream's dumps come from.

The controller consumes any :class:`SnapshotStream` — an iterable of
:class:`~repro.sim.nyx.NyxSnapshot` with a known length — so it is
decoupled from the producer:

- :class:`SimulatorStream` drives a :class:`~repro.sim.nyx.NyxSimulator`
  through a redshift schedule (the "simulation is running next door"
  deployment),
- :class:`DirectoryStream` replays an on-disk ``.npz`` sequence written
  by :func:`repro.sim.io.save_snapshot` (e.g. by
  ``python -m repro.cli generate --redshifts ...``),
- :class:`SnapshotSequence` wraps an in-memory list (tests, notebooks,
  synthetic distribution-shift experiments).

All sources accept a ``fields`` subset so a stream can be restricted to
the fields under study without touching the snapshots on disk.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.sim.io import load_snapshot, peek_snapshot_shape
from repro.sim.nyx import NyxSimulator, NyxSnapshot

__all__ = [
    "SnapshotStream",
    "SimulatorStream",
    "DirectoryStream",
    "SnapshotSequence",
    "as_stream",
]


@runtime_checkable
class SnapshotStream(Protocol):
    """A finite, ordered sequence of snapshots (one pass, in dump order)."""

    def __iter__(self) -> Iterator[NyxSnapshot]: ...

    def __len__(self) -> int: ...


def _restrict(snapshot: NyxSnapshot, fields: tuple[str, ...] | None) -> NyxSnapshot:
    if fields is None:
        return snapshot
    missing = [f for f in fields if f not in snapshot.fields]
    if missing:
        raise KeyError(
            f"snapshot at z={snapshot.redshift} lacks fields {missing}; "
            f"available: {sorted(snapshot.fields)}"
        )
    return NyxSnapshot(
        fields={f: snapshot.fields[f] for f in fields},
        redshift=snapshot.redshift,
        box_size=snapshot.box_size,
        meta=dict(snapshot.meta),
    )


def _field_tuple(fields: Sequence[str] | None) -> tuple[str, ...] | None:
    if fields is None:
        return None
    out = tuple(fields)
    if not out:
        raise ValueError("fields subset must not be empty")
    return out


class SimulatorStream:
    """Snapshots generated on demand from a redshift schedule.

    Parameters
    ----------
    simulator:
        The snapshot generator (fixed phases across the schedule).
    redshifts:
        Dump schedule in stream order (typically decreasing, as a
        simulation runs forward in time).
    fields:
        Optional subset of field names to expose.
    """

    def __init__(
        self,
        simulator: NyxSimulator,
        redshifts: Sequence[float],
        fields: Sequence[str] | None = None,
    ) -> None:
        self.simulator = simulator
        self.redshifts = [float(z) for z in redshifts]
        if not self.redshifts:
            raise ValueError("redshift schedule must not be empty")
        if any(z < 0 for z in self.redshifts):
            raise ValueError("redshifts must be non-negative")
        self.fields = _field_tuple(fields)

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.simulator.shape

    def __len__(self) -> int:
        return len(self.redshifts)

    def __iter__(self) -> Iterator[NyxSnapshot]:
        yield from self.iter_from(0)

    def iter_from(self, start: int) -> Iterator[NyxSnapshot]:
        """Iterate from dump index ``start`` without generating the
        skipped snapshots (each dump is a pure function of the seed and
        its redshift, so a resumed stream sees identical data)."""
        for z in self.redshifts[start:]:
            yield _restrict(self.simulator.snapshot(z=z), self.fields)

    def __repr__(self) -> str:
        return (
            f"SimulatorStream(shape={self.simulator.shape}, "
            f"redshifts={self.redshifts})"
        )


class DirectoryStream:
    """An on-disk snapshot sequence, replayed in sorted filename order.

    Files are discovered eagerly (so ``len`` is cheap and the order is
    fixed at construction) but *loaded* lazily, one snapshot per
    iteration step — a 200-dump campaign never holds two snapshots in
    memory at once.

    Loads pass through the ``source.load`` fault point and, when a
    ``retry`` policy is given, are retried under it — a snapshot file
    observed mid-copy (``OSError``) resolves on a later attempt instead
    of killing the stream.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        pattern: str = "*.npz",
        fields: Sequence[str] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"snapshot directory {self.directory} not found")
        self.paths = sorted(self.directory.glob(pattern))
        if not self.paths:
            raise FileNotFoundError(
                f"no snapshots matching {pattern!r} in {self.directory}"
            )
        self.fields = _field_tuple(fields)
        self.retry = retry
        self._shape: tuple[int, int, int] | None = None

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid shape of the sequence, read from the first container's
        array headers (a few hundred bytes — no field is decompressed)."""
        if self._shape is None:
            self._shape = tuple(peek_snapshot_shape(self.paths[0]))
        return self._shape

    def __len__(self) -> int:
        return len(self.paths)

    def _load(self, path: Path) -> NyxSnapshot:
        def attempt() -> NyxSnapshot:
            fault_point("source.load")
            return load_snapshot(path)

        if self.retry is None:
            return attempt()
        return self.retry.execute(attempt, site="source.load")

    def __iter__(self) -> Iterator[NyxSnapshot]:
        yield from self.iter_from(0)

    def iter_from(self, start: int) -> Iterator[NyxSnapshot]:
        """Iterate from dump index ``start`` without reading the skipped
        files — how a resumed run fast-forwards a long directory."""
        for path in self.paths[start:]:
            yield _restrict(self._load(path), self.fields)

    def __repr__(self) -> str:
        return f"DirectoryStream({str(self.directory)!r}, n={len(self.paths)})"


class SnapshotSequence:
    """An in-memory snapshot list as a stream (tests and experiments)."""

    def __init__(
        self,
        snapshots: Sequence[NyxSnapshot],
        fields: Sequence[str] | None = None,
    ) -> None:
        self.snapshots = list(snapshots)
        if not self.snapshots:
            raise ValueError("snapshot sequence must not be empty")
        self.fields = _field_tuple(fields)

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.snapshots[0].shape

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[NyxSnapshot]:
        yield from self.iter_from(0)

    def iter_from(self, start: int) -> Iterator[NyxSnapshot]:
        for snap in self.snapshots[start:]:
            yield _restrict(snap, self.fields)

    def __repr__(self) -> str:
        return f"SnapshotSequence(n={len(self.snapshots)})"


def as_stream(source: "SnapshotStream | Sequence[NyxSnapshot]") -> SnapshotStream:
    """Coerce a plain snapshot list into a stream; pass streams through."""
    if isinstance(source, (SimulatorStream, DirectoryStream, SnapshotSequence)):
        return source
    if isinstance(source, NyxSnapshot):
        return SnapshotSequence([source])
    if isinstance(source, Sequence):
        return SnapshotSequence(source)
    if isinstance(source, SnapshotStream):
        return source
    raise TypeError(f"cannot interpret {type(source).__name__} as a snapshot stream")
